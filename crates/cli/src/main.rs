//! `sentinet` — command-line front end.
//!
//! Two subcommands close the loop for a downstream user:
//!
//! - `sentinet simulate out.csv --fault 6:stuck=15,1` generates a
//!   GDI-like trace CSV with optional fault/attack injections;
//! - `sentinet analyze out.csv` runs the full detection pipeline over
//!   any trace CSV (simulated or real) and prints the diagnosis report
//!   plus the recommended recovery plan;
//! - `sentinet serve --wal-dir w` runs the durable live-ingest daemon:
//!   frames arrive over a socket, are WAL-appended before being acked,
//!   and a killed process resumes to a bit-identical report;
//! - `sentinet replay-wal --wal-dir w` rebuilds that report offline
//!   from the log alone (optionally cross-checking the sharded
//!   engine).

mod args;

use args::{AnalyzeArgs, Command, FederateArgs, ReplayWalArgs, ServeArgs, SimulateArgs, USAGE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_controller::{
    run_campaign, Federation, FederationConfig, NemesisConfig, PartitionMap, ProcessBackend,
    ProcessConfig, WireProtocol,
};
use sentinet_core::{Pipeline, PipelineConfig, PipelineReport, RecoveryPlan};
use sentinet_engine::{ChaosPlan, Engine, SupervisorConfig};
use sentinet_gateway::{
    Collector, GatewayConfig, GatewayReport, Server, ServerConfig, UplinkConfig,
};
use sentinet_inject::{inject_attacks, inject_faults, AttackInjection, FaultInjection};
use sentinet_sim::{gdi, read_trace_sanitized, simulate, write_trace, SensorId, DAY_S};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(argv.iter().map(String::as_str)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match parsed {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Simulate(a) => run_simulate(a),
        Command::Analyze(a) => run_analyze(a),
        Command::Serve(a) => run_serve(a),
        Command::ReplayWal(a) => run_replay_wal(a),
        Command::Federate(a) => run_federate(a),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_simulate(a: SimulateArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = gdi::month_config();
    cfg.duration = a.days * DAY_S;
    cfg.num_sensors = a.sensors;
    let mut rng = StdRng::seed_from_u64(a.seed);
    let mut trace = simulate(&cfg, &mut rng);
    if let Some((sensor, model)) = a.fault {
        if sensor.0 >= a.sensors {
            return Err(
                format!("fault sensor {} out of range (0..{})", sensor.0, a.sensors).into(),
            );
        }
        trace = inject_faults(
            &trace,
            // Fault onset after one clean day (or immediately for
            // single-day traces) so the bootstrap sees healthy data.
            &[FaultInjection::from_onset(
                sensor,
                model,
                if a.days > 1 { DAY_S } else { 0 },
            )],
            &cfg.ranges,
            &mut rng,
        );
    }
    if let Some((count, model)) = a.attack {
        if count > a.sensors {
            return Err(format!("cannot compromise {count} of {} sensors", a.sensors).into());
        }
        trace = inject_attacks(
            &trace,
            &[AttackInjection::from_onset(
                (0..count).map(SensorId).collect(),
                model,
                a.days / 2 * DAY_S,
            )],
            &cfg.ranges,
        );
    }
    // sentinet-allow(io-outside-vfs): the simulate subcommand's CSV output
    // is a terminal-program deliverable, not gateway-durable state.
    let file = File::create(&a.output)?;
    write_trace(&trace, 2, BufWriter::new(file))?;
    println!(
        "wrote {} records ({} days, {} sensors, {:.1}% lost/malformed) to {}",
        trace.len(),
        a.days,
        a.sensors,
        100.0 * trace.loss_rate(),
        a.output
    );
    Ok(())
}

fn run_analyze(a: AnalyzeArgs) -> Result<(), Box<dyn std::error::Error>> {
    let file = File::open(&a.input)?;
    // Sanitized ingest: NaN/∞ payloads, duplicate and out-of-order
    // timestamps are dropped and accounted for instead of aborting
    // (or, worse, panicking inside the estimators).
    let (trace, ingest) = read_trace_sanitized(BufReader::new(file))?;
    if !ingest.is_clean() {
        eprintln!(
            "warning: ingest rejected {} of {} delivered record(s):",
            ingest.rejected.len(),
            ingest.accepted + ingest.rejected.len()
        );
        for e in &ingest.rejected {
            eprintln!("  {e}");
        }
    }
    if trace.is_empty() {
        return Err("trace contains no records".into());
    }
    let config = PipelineConfig {
        window_samples: a.window,
        observable_trim: a.trim,
        ..Default::default()
    };
    // Both paths produce identical reports (the engine is bit-for-bit
    // equivalent to the pipeline); --shards > 1 fans the per-sensor
    // stages out to supervised worker threads, and --chaos-seed forces
    // the supervised engine so the fault plan has workers to kill.
    let (report, plan) = if a.shards > 1 || a.chaos_seed.is_some() {
        let mut engine =
            Engine::new(config, a.period, a.shards).with_supervisor(SupervisorConfig {
                max_shard_restarts: a.max_shard_restarts,
                ..SupervisorConfig::default()
            });
        if let Some(seed) = a.chaos_seed {
            let windows = trace
                .records()
                .last()
                .map(|r| r.time / (u64::from(a.window) * a.period))
                .unwrap_or(1)
                .max(1);
            let chaos = ChaosPlan::seeded(seed, a.shards, windows, 4);
            eprintln!(
                "chaos: injecting {} fault(s) from seed {seed}",
                chaos.faults.len()
            );
            engine = engine.with_chaos(chaos);
        }
        let run = engine.process_trace(&trace)?;
        if let Some(degraded) = run.degraded() {
            eprintln!("warning: {degraded}");
        } else if !run.shard_restarts().is_empty() {
            eprintln!(
                "chaos: all crashes recovered exactly (restarts: {:?})",
                run.shard_restarts()
            );
        }
        (run.report(), run.recovery_plan())
    } else {
        let mut pipeline = Pipeline::new(config, a.period);
        pipeline.process_trace(&trace);
        (pipeline.report(), RecoveryPlan::from_pipeline(&pipeline))
    };
    print_pipeline_report(&report, &plan, a.quiet);
    Ok(())
}

/// Builds the gateway configuration shared by `serve` and
/// `replay-wal`; both must agree on every knob that shapes the report,
/// or a replayed log would not reproduce the live run.
fn gateway_config(
    wal_dir: &str,
    period: u64,
    window: u32,
    trim: f64,
    watermark: u64,
) -> GatewayConfig {
    let mut config = GatewayConfig::new(wal_dir);
    config.pipeline = PipelineConfig {
        window_samples: window,
        observable_trim: trim,
        ..Default::default()
    };
    config.sample_period = period;
    config.reorder.watermark_delay = watermark;
    config
}

/// Prints a finished gateway run (diagnosis stdout, accounting stderr)
/// and applies the same exit-3-when-flagged scripting contract as
/// `analyze`. Keeping accounting off stdout keeps reports comparable
/// byte for byte across live, crashed-and-resumed, and replayed runs.
fn finish_gateway_report(report: &GatewayReport, quiet: bool) {
    let ingest = &report.ingest;
    if !ingest.rejected.is_empty() {
        eprintln!(
            "warning: sanitizer rejected {} record(s):",
            ingest.rejected.len()
        );
        for e in &ingest.rejected {
            eprintln!("  {e}");
        }
    }
    eprintln!(
        "ingest: {} accepted, {} duplicate(s), {} late, {} shed",
        ingest.accepted, ingest.duplicates, ingest.late, ingest.shed
    );
    let storage = &report.storage;
    if !storage.is_clean() {
        eprintln!(
            "storage: {} budget-shed, {} rejected-while-poisoned, \
             {} checkpoint failure(s), {} reclaim failure(s)",
            storage.budget_shed,
            storage.storage_rejects,
            storage.checkpoint_failures,
            storage.reclaim_failures
        );
        if let Some(err) = &storage.error {
            eprintln!("warning: wal poisoned by storage failure: {err}");
        }
    }
    if let Some(epoch) = storage.fenced_by {
        eprintln!(
            "warning: fenced by newer owner epoch {epoch}: {} append(s) NACKed",
            storage.fence_rejects
        );
    }
    if storage.reclaimed_segments > 0 {
        eprintln!(
            "retention: reclaimed {} checkpointed segment(s)",
            storage.reclaimed_segments
        );
    }
    if report.liveness.episodes > 0 || !report.liveness.is_live() {
        eprintln!("warning: {}", report.liveness);
    }
    print_pipeline_report(&report.pipeline, &report.plan, quiet);
}

fn print_pipeline_report(report: &PipelineReport, plan: &RecoveryPlan, quiet: bool) {
    if quiet {
        for s in &report.sensors {
            println!("{}\t{}", s.sensor, s.diagnosis);
        }
    } else {
        print!("{report}");
        println!("\nrecovery plan:");
        for (id, action) in &plan.actions {
            println!("  {id}: {action:?}");
        }
    }
    if report.flagged().count() > 0 || report.network_attack.is_some() {
        std::process::exit(3);
    }
}

fn run_serve(a: ServeArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = gateway_config(&a.wal_dir, a.period, a.window, a.trim, a.watermark);
    config.wal.fsync = a.fsync;
    config.wal.crash_after = a.crash_after;
    config.silence_deadline = a.silence_deadline;
    config.checkpoint_every = a.checkpoint_every;
    config.wal.retain_bytes = a.wal_retain_bytes;
    if let Some(bytes) = a.wal_segment_bytes {
        config.wal.segment_max_bytes = bytes;
    }
    config.epoch = a.epoch;
    let (mut collector, info) = Collector::open(config)?;
    if info.replayed > 0 || info.restored_from.is_some() {
        eprintln!(
            "recovered {} record(s) from the wal{}",
            info.replayed,
            match (info.restored_from, info.verified_cursor) {
                (Some(cursor), _) => format!(" (restored from checkpoint at cursor {cursor})"),
                (None, Some(cursor)) => format!(" (checkpoint verified at cursor {cursor})"),
                (None, None) => String::new(),
            }
        );
    }
    let server = Server::start(ServerConfig {
        bind: a.bind.clone(),
        credit_window: a.credit_window,
        v1_only: a.v1_only,
        ..ServerConfig::default()
    })?;
    // Scripts (and the crash-recovery tests) parse this line to learn
    // the resolved ephemeral port; stdout is line-buffered, so it is
    // visible before the first client connects.
    println!("listening on {}", server.addr());
    let stats = server.run(&mut collector)?;
    eprintln!(
        "served {} connection(s), {} dropped on bad frames",
        stats.connections, stats.bad_frames
    );
    for e in &stats.frame_errors {
        eprintln!("  dropped connection: {e}");
    }
    let report = collector.finish()?;
    finish_gateway_report(&report, a.quiet);
    Ok(())
}

fn run_federate(a: FederateArgs) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(seed) = a.nemesis_seed {
        // Nemesis mode ignores the trace: every episode generates its
        // own deterministic stream and fault plan from the seed.
        let mut config = NemesisConfig::new(seed, a.episodes, &a.wal_root);
        if a.nemesis_migration {
            config = config.with_migration();
        }
        match run_campaign(&config) {
            Ok(summary) => {
                eprintln!("nemesis: {summary}");
                return Ok(());
            }
            Err(failure) => {
                eprintln!("nemesis: {failure}");
                std::process::exit(3);
            }
        }
    }
    let file = File::open(&a.input)?;
    let (trace, ingest) = read_trace_sanitized(BufReader::new(file))?;
    if !ingest.is_clean() {
        eprintln!(
            "warning: ingest rejected {} of {} delivered record(s)",
            ingest.rejected.len(),
            ingest.accepted + ingest.rejected.len()
        );
    }
    if trace.is_empty() {
        return Err("trace contains no records".into());
    }
    let num_sensors = trace
        .delivered()
        .map(|(_, sensor, _)| sensor.0 + 1)
        .max()
        .ok_or("trace delivered no records")?;
    if (a.partitions as u64) > u64::from(num_sensors) {
        return Err(format!(
            "cannot split {num_sensors} sensor(s) over {} partitions",
            a.partitions
        )
        .into());
    }

    let mut uplink = UplinkConfig::new("");
    uplink.ack_timeout = std::time::Duration::from_millis(a.ack_timeout_ms);
    uplink.max_attempts = a.max_attempts;
    uplink.backoff_base = std::time::Duration::from_millis(a.backoff_base_ms);
    uplink.backoff_cap = std::time::Duration::from_millis(a.backoff_cap_ms);
    uplink.jitter_pct = a.jitter_pct;
    let backend = ProcessBackend::new(ProcessConfig {
        binary: std::env::current_exe()?,
        wal_root: a.wal_root.clone().into(),
        standbys: a.standbys,
        protocol: if a.v2 {
            WireProtocol::V2
        } else {
            WireProtocol::V1
        },
        serve_flags: vec![
            "--period".into(),
            a.period.to_string(),
            "--window".into(),
            a.window.to_string(),
            "--trim".into(),
            a.trim.to_string(),
            "--fsync".into(),
            a.fsync.clone(),
            "--watermark".into(),
            a.watermark.to_string(),
            "--checkpoint-every".into(),
            a.checkpoint_every.to_string(),
        ],
        uplink,
        batch_size: a.batch_size,
        kills: a.kill.into_iter().collect(),
        replay: gateway_config(&a.wal_root, a.period, a.window, a.trim, a.watermark),
    });

    let map = PartitionMap::split_even(num_sensors, a.partitions)?;
    let mut config = FederationConfig {
        silence_deadline: a.silence_deadline,
        ..FederationConfig::default()
    };
    config.handoff.max_attempts = a.handoff_attempts;
    let mut fed = Federation::new(map, config, backend)?;
    if let Some((p, sensor, after)) = a.split {
        fed.schedule_split(p, SensorId(sensor), after)?;
    }
    if let Some((p, after)) = a.rebalance {
        fed.schedule_rebalance(p, after);
    }
    for (time, sensor, reading) in trace.delivered() {
        fed.route(sensor, time, reading.values())?;
    }
    let fleet = fed.finish()?;

    // The run facts go to stderr; stdout stays byte-comparable across
    // drilled and uninterrupted runs, mirroring serve/replay-wal.
    for event in &fleet.events {
        eprintln!("federation: {event}");
    }
    eprint!("{}", fleet.render_accounting());
    if a.quiet {
        for p in &fleet.partitions {
            for s in &p.report.pipeline.sensors {
                println!("{}\t{}", s.sensor, s.diagnosis);
            }
        }
    } else {
        print!("{}", fleet.render_diagnosis());
    }
    if fleet.flagged() {
        std::process::exit(3);
    }
    Ok(())
}

fn run_replay_wal(a: ReplayWalArgs) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = gateway_config(&a.wal_dir, a.period, a.window, a.trim, a.watermark);
    // Offline replay must not rewrite the log's checkpoints.
    config.checkpoint_every = 0;
    config.record_released = a.shards > 1;
    let (collector, info) = Collector::open(config)?;
    if let Some(cursor) = info.restored_from {
        if a.shards > 1 {
            // Retention deleted the checkpointed prefix, so the
            // released stream starts mid-run and the engine would
            // (correctly) diverge from the restored collector.
            return Err(format!(
                "wal was reclaimed under a retention budget (checkpoint at cursor \
                 {cursor}); the released stream is incomplete, so the --shards \
                 cross-check cannot run — re-run with --shards 1"
            )
            .into());
        }
        eprintln!("restored from checkpoint at cursor {cursor}");
    }
    eprintln!("replayed {} record(s) from the wal", info.replayed);
    let report = collector.finish()?;
    if let Some(trace) = &report.released {
        // Cross-check: the sharded engine over the released stream
        // must reproduce the collector's report bit for bit.
        let engine = Engine::new(
            PipelineConfig {
                window_samples: a.window,
                observable_trim: a.trim,
                ..Default::default()
            },
            a.period,
            a.shards,
        )
        .with_supervisor(SupervisorConfig::default());
        let run = engine.process_trace(trace)?;
        if format!("{}", run.report()) != format!("{}", report.pipeline) {
            return Err(format!(
                "engine replay with {} shards diverged from the collector's report",
                a.shards
            )
            .into());
        }
        eprintln!(
            "engine replay with {} shard(s): bit-identical report",
            a.shards
        );
    }
    finish_gateway_report(&report, a.quiet);
    Ok(())
}
