//! Hand-rolled argument parsing (no external CLI crate on the approved
//! dependency list; the grammar is small enough that a table-driven
//! parser stays clearer than a framework).

use sentinet_gateway::FsyncPolicy;
use sentinet_inject::{AttackModel, FaultModel};
use sentinet_sim::SensorId;
use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic trace CSV.
    Simulate(SimulateArgs),
    /// Run the detection pipeline over a trace CSV.
    Analyze(AnalyzeArgs),
    /// Run the durable live-ingest daemon over a socket.
    Serve(ServeArgs),
    /// Replay a write-ahead log offline into a report.
    ReplayWal(ReplayWalArgs),
    /// Print usage.
    Help,
}

/// Arguments of `sentinet simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateArgs {
    /// Output CSV path.
    pub output: String,
    /// Simulated days.
    pub days: u64,
    /// RNG seed.
    pub seed: u64,
    /// Number of sensors.
    pub sensors: u16,
    /// Optional fault injection: `(sensor, model)`.
    pub fault: Option<(SensorId, FaultModel)>,
    /// Optional attack injection: `(compromised count, model)`.
    pub attack: Option<(u16, AttackModel)>,
}

/// Arguments of `sentinet analyze`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeArgs {
    /// Input CSV path.
    pub input: String,
    /// Sensor sampling period in seconds.
    pub period: u64,
    /// Observation window size in samples.
    pub window: u32,
    /// Observable-mean trim fraction.
    pub trim: f64,
    /// Worker shards for the sharded engine (1 = serial pipeline).
    pub shards: usize,
    /// Chaos-testing seed: inject a seeded fault plan (worker panics,
    /// dropped/delayed replies) into the supervised engine. `None`
    /// disables chaos.
    pub chaos_seed: Option<u64>,
    /// Restart budget per shard per window before quarantine.
    pub max_shard_restarts: u32,
    /// Emit the report as one summary line per sensor only.
    pub quiet: bool,
}

/// Arguments of `sentinet serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Write-ahead log directory (created if missing).
    pub wal_dir: String,
    /// Endpoint to bind: `HOST:PORT` or `unix:/path`.
    pub bind: String,
    /// Sensor sampling period in seconds.
    pub period: u64,
    /// Observation window size in samples.
    pub window: u32,
    /// Observable-mean trim fraction.
    pub trim: f64,
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
    /// Reorder watermark delay in stream seconds.
    pub watermark: u64,
    /// Silence deadline in stream seconds (`None` disables liveness).
    pub silence_deadline: Option<u64>,
    /// Checkpoint every N WAL records (0 disables).
    pub checkpoint_every: u64,
    /// WAL disk budget in bytes: checkpointed segments are reclaimed
    /// to stay under it, and ingest sheds (NACKs) when nothing is
    /// reclaimable (`None` retains everything).
    pub wal_retain_bytes: Option<u64>,
    /// WAL segment roll size in bytes (`None` keeps the default).
    /// Retention reclaims whole sealed segments, so the budget's
    /// granularity is one segment.
    pub wal_segment_bytes: Option<u64>,
    /// Chaos hook: abort the process after appending N WAL records.
    pub crash_after: Option<u64>,
    /// Batches a pipelined (protocol v2) client may keep in flight.
    pub credit_window: u32,
    /// Pin the server to protocol v1: v2 `Hello`s get a typed
    /// `HelloReject { supported: 1 }` instead of a credit grant.
    pub v1_only: bool,
    /// Emit the report as one summary line per sensor only.
    pub quiet: bool,
}

/// Arguments of `sentinet replay-wal`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayWalArgs {
    /// Write-ahead log directory to replay.
    pub wal_dir: String,
    /// Sensor sampling period in seconds.
    pub period: u64,
    /// Observation window size in samples.
    pub window: u32,
    /// Observable-mean trim fraction.
    pub trim: f64,
    /// Reorder watermark delay in stream seconds.
    pub watermark: u64,
    /// Re-run the released stream through the sharded engine with this
    /// many shards and verify bit-identical reports (1 skips).
    pub shards: usize,
    /// Emit the report as one summary line per sensor only.
    pub quiet: bool,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
sentinet — detect and distinguish errors vs attacks in sensor traces

USAGE:
  sentinet simulate <out.csv> [--days N] [--seed S] [--sensors K]
                    [--fault SENSOR:MODEL] [--attack COUNT:MODEL]
  sentinet analyze <trace.csv> [--period SECS] [--window SAMPLES]
                    [--trim FRACTION] [--shards N] [--quiet]
                    [--chaos-seed S] [--max-shard-restarts N]
  sentinet serve --wal-dir DIR [--bind HOST:PORT|unix:/path]
                    [--period SECS] [--window SAMPLES] [--trim FRACTION]
                    [--fsync never|batch:N|always] [--watermark SECS]
                    [--silence-deadline SECS] [--checkpoint-every N]
                    [--wal-retain-bytes N] [--wal-segment-bytes N]
                    [--crash-after N] [--credit-window N] [--v1-only]
                    [--quiet]
  sentinet replay-wal --wal-dir DIR [--period SECS] [--window SAMPLES]
                    [--trim FRACTION] [--watermark SECS] [--shards N]
                    [--quiet]
  sentinet help

LIVE INGEST (serve / replay-wal):
  serve binds a socket, prints `listening on ADDR` on stdout, and runs
  the durable collector until a client sends Fin: every accepted frame
  is WAL-appended before it is acked, so `kill -9` at any point (try
  --crash-after N) resumes to a bit-identical report on restart.
  replay-wal rebuilds the report offline from a WAL directory;
  --shards N > 1 additionally re-runs the released stream through the
  supervised engine and verifies the reports match bit for bit.
  --silence-deadline 0 disables liveness tracking.
  --wal-retain-bytes N bounds the WAL on disk: segments wholly covered
  by a durable checkpoint are deleted after the checkpoint commits, and
  when nothing is reclaimable new records are shed with counted NACKs
  instead of breaching the budget.

CHAOS TESTING (analyze):
  --chaos-seed S           inject a seeded, replayable fault plan
                           (worker panics, dropped/delayed replies)
                           into the supervised sharded engine
  --max-shard-restarts N   per-window crash budget before a shard is
                           quarantined (default 3)

FAULT MODELS (simulate --fault):
  6:stuck=15,1        sensor 6 stuck at (15, 1)
  7:calib=1.15,1.15   sensor 7 gains ×(1.15, 1.15)
  3:add=-9,-4.5       sensor 3 offset (−9, −4.5)
  5:noise=10,10       sensor 5 extra noise σ (10, 10)
  2:outage=0.5        sensor 2 drops 50% of its packets

ATTACK MODELS (simulate --attack):
  3:delete=12,94      3 sensors pin the observed state at (12, 94)
  3:create=25,69      3 sensors forge state (25, 69)
  3:change=-15,0      3 sensors shift the observed state by (−15, 0)
";

fn parse_pair(s: &str, what: &str) -> Result<Vec<f64>, ParseError> {
    let vals: Result<Vec<f64>, _> = s.split(',').map(str::parse).collect();
    vals.map_err(|e| ParseError(format!("bad {what} values {s:?}: {e}")))
}

/// Parses `SENSOR:MODEL=ARGS` into a fault injection spec.
pub fn parse_fault(spec: &str) -> Result<(SensorId, FaultModel), ParseError> {
    let (sensor, rest) = spec
        .split_once(':')
        .ok_or_else(|| ParseError(format!("fault spec {spec:?} needs SENSOR:MODEL")))?;
    let sensor: u16 = sensor
        .parse()
        .map_err(|e| ParseError(format!("bad sensor id {sensor:?}: {e}")))?;
    let (model, args) = rest.split_once('=').unwrap_or((rest, ""));
    let model = match model {
        "stuck" => FaultModel::StuckAt {
            value: parse_pair(args, "stuck")?,
        },
        "calib" => FaultModel::Calibration {
            gain: parse_pair(args, "calibration")?,
        },
        "add" => FaultModel::Additive {
            offset: parse_pair(args, "additive")?,
        },
        "noise" => FaultModel::RandomNoise {
            std: parse_pair(args, "noise")?,
        },
        "outage" => FaultModel::Outage {
            drop_prob: args
                .parse()
                .map_err(|e| ParseError(format!("bad outage probability {args:?}: {e}")))?,
        },
        other => {
            return Err(ParseError(format!(
                "unknown fault model {other:?} (stuck|calib|add|noise|outage)"
            )))
        }
    };
    Ok((SensorId(sensor), model))
}

/// Parses `COUNT:MODEL=ARGS` into an attack injection spec.
pub fn parse_attack(spec: &str) -> Result<(u16, AttackModel), ParseError> {
    let (count, rest) = spec
        .split_once(':')
        .ok_or_else(|| ParseError(format!("attack spec {spec:?} needs COUNT:MODEL")))?;
    let count: u16 = count
        .parse()
        .map_err(|e| ParseError(format!("bad sensor count {count:?}: {e}")))?;
    if count == 0 {
        return Err(ParseError("attack needs at least one sensor".into()));
    }
    let (model, args) = rest.split_once('=').unwrap_or((rest, ""));
    let model = match model {
        "delete" => AttackModel::DynamicDeletion {
            freeze_at: parse_pair(args, "deletion")?,
        },
        "create" => AttackModel::DynamicCreation {
            target: parse_pair(args, "creation")?,
        },
        "change" => AttackModel::DynamicChange {
            offset: parse_pair(args, "change")?,
        },
        other => {
            return Err(ParseError(format!(
                "unknown attack model {other:?} (delete|create|change)"
            )))
        }
    };
    Ok((count, model))
}

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    it: &mut I,
) -> Result<&'a str, ParseError> {
    it.next()
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

/// Parses a full argument list (excluding the program name).
pub fn parse<'a, I: IntoIterator<Item = &'a str>>(args: I) -> Result<Command, ParseError> {
    let mut it = args.into_iter();
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("simulate") => {
            let output = take_value("simulate", &mut it)
                .map_err(|_| ParseError("simulate needs an output path".into()))?
                .to_string();
            let mut parsed = SimulateArgs {
                output,
                days: 7,
                seed: 1,
                sensors: 10,
                fault: None,
                attack: None,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--days" => {
                        parsed.days = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --days: {e}")))?
                    }
                    "--seed" => {
                        parsed.seed = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --seed: {e}")))?
                    }
                    "--sensors" => {
                        parsed.sensors = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --sensors: {e}")))?
                    }
                    "--fault" => parsed.fault = Some(parse_fault(take_value(flag, &mut it)?)?),
                    "--attack" => parsed.attack = Some(parse_attack(take_value(flag, &mut it)?)?),
                    other => return Err(ParseError(format!("unknown flag {other:?}"))),
                }
            }
            if parsed.days == 0 || parsed.sensors == 0 {
                return Err(ParseError("--days and --sensors must be positive".into()));
            }
            Ok(Command::Simulate(parsed))
        }
        Some("analyze") => {
            let input = take_value("analyze", &mut it)
                .map_err(|_| ParseError("analyze needs an input path".into()))?
                .to_string();
            let mut parsed = AnalyzeArgs {
                input,
                period: 300,
                window: 12,
                trim: 0.15,
                shards: 1,
                chaos_seed: None,
                max_shard_restarts: 3,
                quiet: false,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--period" => {
                        parsed.period = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --period: {e}")))?
                    }
                    "--window" => {
                        parsed.window = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --window: {e}")))?
                    }
                    "--trim" => {
                        parsed.trim = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --trim: {e}")))?
                    }
                    "--shards" => {
                        parsed.shards = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --shards: {e}")))?
                    }
                    "--chaos-seed" => {
                        parsed.chaos_seed = Some(
                            take_value(flag, &mut it)?
                                .parse()
                                .map_err(|e| ParseError(format!("bad --chaos-seed: {e}")))?,
                        )
                    }
                    "--max-shard-restarts" => {
                        parsed.max_shard_restarts = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --max-shard-restarts: {e}")))?
                    }
                    "--quiet" => parsed.quiet = true,
                    other => return Err(ParseError(format!("unknown flag {other:?}"))),
                }
            }
            if parsed.period == 0 || parsed.window == 0 || !(0.0..0.5).contains(&parsed.trim) {
                return Err(ParseError(
                    "--period/--window must be positive, --trim in [0, 0.5)".into(),
                ));
            }
            if parsed.shards == 0 {
                return Err(ParseError("--shards must be at least 1".into()));
            }
            Ok(Command::Analyze(parsed))
        }
        Some("serve") => {
            let mut wal_dir = None;
            let mut parsed = ServeArgs {
                wal_dir: String::new(),
                bind: "127.0.0.1:0".into(),
                period: 300,
                window: 12,
                trim: 0.15,
                fsync: FsyncPolicy::Batch(64),
                watermark: 1800,
                silence_deadline: Some(3600),
                checkpoint_every: 256,
                wal_retain_bytes: None,
                wal_segment_bytes: None,
                crash_after: None,
                credit_window: 32,
                v1_only: false,
                quiet: false,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--wal-dir" => wal_dir = Some(take_value(flag, &mut it)?.to_string()),
                    "--bind" => parsed.bind = take_value(flag, &mut it)?.to_string(),
                    "--period" => {
                        parsed.period = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --period: {e}")))?
                    }
                    "--window" => {
                        parsed.window = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --window: {e}")))?
                    }
                    "--trim" => {
                        parsed.trim = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --trim: {e}")))?
                    }
                    "--fsync" => {
                        parsed.fsync = FsyncPolicy::parse(take_value(flag, &mut it)?)
                            .map_err(|e| ParseError(format!("bad --fsync: {e}")))?
                    }
                    "--watermark" => {
                        parsed.watermark = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --watermark: {e}")))?
                    }
                    "--silence-deadline" => {
                        let secs: u64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --silence-deadline: {e}")))?;
                        parsed.silence_deadline = (secs > 0).then_some(secs);
                    }
                    "--checkpoint-every" => {
                        parsed.checkpoint_every = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --checkpoint-every: {e}")))?
                    }
                    "--wal-retain-bytes" => {
                        let bytes: u64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --wal-retain-bytes: {e}")))?;
                        if bytes == 0 {
                            return Err(ParseError("--wal-retain-bytes must be positive".into()));
                        }
                        parsed.wal_retain_bytes = Some(bytes);
                    }
                    "--wal-segment-bytes" => {
                        let bytes: u64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --wal-segment-bytes: {e}")))?;
                        if bytes == 0 {
                            return Err(ParseError("--wal-segment-bytes must be positive".into()));
                        }
                        parsed.wal_segment_bytes = Some(bytes);
                    }
                    "--crash-after" => {
                        parsed.crash_after = Some(
                            take_value(flag, &mut it)?
                                .parse()
                                .map_err(|e| ParseError(format!("bad --crash-after: {e}")))?,
                        )
                    }
                    "--credit-window" => {
                        let credits: u32 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --credit-window: {e}")))?;
                        if credits == 0 {
                            return Err(ParseError("--credit-window must be positive".into()));
                        }
                        parsed.credit_window = credits;
                    }
                    "--v1-only" => parsed.v1_only = true,
                    "--quiet" => parsed.quiet = true,
                    other => return Err(ParseError(format!("unknown flag {other:?}"))),
                }
            }
            parsed.wal_dir = wal_dir.ok_or_else(|| ParseError("serve needs --wal-dir".into()))?;
            if parsed.period == 0 || parsed.window == 0 || !(0.0..0.5).contains(&parsed.trim) {
                return Err(ParseError(
                    "--period/--window must be positive, --trim in [0, 0.5)".into(),
                ));
            }
            Ok(Command::Serve(parsed))
        }
        Some("replay-wal") => {
            let mut wal_dir = None;
            let mut parsed = ReplayWalArgs {
                wal_dir: String::new(),
                period: 300,
                window: 12,
                trim: 0.15,
                watermark: 1800,
                shards: 1,
                quiet: false,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--wal-dir" => wal_dir = Some(take_value(flag, &mut it)?.to_string()),
                    "--period" => {
                        parsed.period = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --period: {e}")))?
                    }
                    "--window" => {
                        parsed.window = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --window: {e}")))?
                    }
                    "--trim" => {
                        parsed.trim = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --trim: {e}")))?
                    }
                    "--watermark" => {
                        parsed.watermark = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --watermark: {e}")))?
                    }
                    "--shards" => {
                        parsed.shards = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --shards: {e}")))?
                    }
                    "--quiet" => parsed.quiet = true,
                    other => return Err(ParseError(format!("unknown flag {other:?}"))),
                }
            }
            parsed.wal_dir =
                wal_dir.ok_or_else(|| ParseError("replay-wal needs --wal-dir".into()))?;
            if parsed.period == 0 || parsed.window == 0 || !(0.0..0.5).contains(&parsed.trim) {
                return Err(ParseError(
                    "--period/--window must be positive, --trim in [0, 0.5)".into(),
                ));
            }
            if parsed.shards == 0 {
                return Err(ParseError("--shards must be at least 1".into()));
            }
            Ok(Command::ReplayWal(parsed))
        }
        Some(other) => Err(ParseError(format!(
            "unknown command {other:?} (simulate|analyze|serve|replay-wal|help)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_variants() {
        assert_eq!(parse([]).unwrap(), Command::Help);
        assert_eq!(parse(["help"]).unwrap(), Command::Help);
        assert_eq!(parse(["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn simulate_defaults() {
        match parse(["simulate", "out.csv"]).unwrap() {
            Command::Simulate(a) => {
                assert_eq!(a.output, "out.csv");
                assert_eq!(a.days, 7);
                assert_eq!(a.sensors, 10);
                assert!(a.fault.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simulate_full_flags() {
        match parse([
            "simulate",
            "t.csv",
            "--days",
            "3",
            "--seed",
            "9",
            "--sensors",
            "6",
            "--fault",
            "6:stuck=15,1",
            "--attack",
            "2:delete=12,94",
        ])
        .unwrap()
        {
            Command::Simulate(a) => {
                assert_eq!(a.days, 3);
                assert_eq!(a.seed, 9);
                assert_eq!(a.sensors, 6);
                let (s, f) = a.fault.unwrap();
                assert_eq!(s, SensorId(6));
                assert_eq!(
                    f,
                    FaultModel::StuckAt {
                        value: vec![15.0, 1.0]
                    }
                );
                let (n, m) = a.attack.unwrap();
                assert_eq!(n, 2);
                assert_eq!(
                    m,
                    AttackModel::DynamicDeletion {
                        freeze_at: vec![12.0, 94.0]
                    }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn analyze_flags() {
        match parse([
            "analyze", "t.csv", "--period", "60", "--window", "15", "--trim", "0.1", "--shards",
            "4", "--quiet",
        ])
        .unwrap()
        {
            Command::Analyze(a) => {
                assert_eq!(a.period, 60);
                assert_eq!(a.window, 15);
                assert!((a.trim - 0.1).abs() < 1e-12);
                assert_eq!(a.shards, 4);
                assert!(a.quiet);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn analyze_chaos_flags() {
        match parse(["analyze", "t.csv"]).unwrap() {
            Command::Analyze(a) => {
                assert_eq!(a.chaos_seed, None);
                assert_eq!(a.max_shard_restarts, 3);
            }
            other => panic!("{other:?}"),
        }
        match parse([
            "analyze",
            "t.csv",
            "--chaos-seed",
            "99",
            "--max-shard-restarts",
            "5",
        ])
        .unwrap()
        {
            Command::Analyze(a) => {
                assert_eq!(a.chaos_seed, Some(99));
                assert_eq!(a.max_shard_restarts, 5);
            }
            other => panic!("{other:?}"),
        }
        let e = parse(["analyze", "t.csv", "--chaos-seed", "x"]).unwrap_err();
        assert!(e.to_string().contains("chaos-seed"));
    }

    #[test]
    fn analyze_shards_default_and_validation() {
        match parse(["analyze", "t.csv"]).unwrap() {
            Command::Analyze(a) => assert_eq!(a.shards, 1),
            other => panic!("{other:?}"),
        }
        let e = parse(["analyze", "t.csv", "--shards", "0"]).unwrap_err();
        assert!(e.to_string().contains("shards"));
    }

    #[test]
    fn serve_defaults_and_flags() {
        match parse(["serve", "--wal-dir", "/tmp/wal"]).unwrap() {
            Command::Serve(a) => {
                assert_eq!(a.wal_dir, "/tmp/wal");
                assert_eq!(a.bind, "127.0.0.1:0");
                assert_eq!(a.fsync, FsyncPolicy::Batch(64));
                assert_eq!(a.watermark, 1800);
                assert_eq!(a.silence_deadline, Some(3600));
                assert_eq!(a.wal_retain_bytes, None);
                assert_eq!(a.wal_segment_bytes, None);
                assert_eq!(a.crash_after, None);
                assert_eq!(a.credit_window, 32);
                assert!(!a.v1_only);
            }
            other => panic!("{other:?}"),
        }
        match parse([
            "serve",
            "--wal-dir",
            "w",
            "--bind",
            "unix:/tmp/s.sock",
            "--fsync",
            "never",
            "--watermark",
            "600",
            "--silence-deadline",
            "0",
            "--wal-retain-bytes",
            "65536",
            "--wal-segment-bytes",
            "4096",
            "--crash-after",
            "40",
            "--credit-window",
            "8",
            "--v1-only",
            "--quiet",
        ])
        .unwrap()
        {
            Command::Serve(a) => {
                assert_eq!(a.bind, "unix:/tmp/s.sock");
                assert_eq!(a.fsync, FsyncPolicy::Never);
                assert_eq!(a.watermark, 600);
                assert_eq!(a.silence_deadline, None);
                assert_eq!(a.wal_retain_bytes, Some(65536));
                assert_eq!(a.wal_segment_bytes, Some(4096));
                assert_eq!(a.crash_after, Some(40));
                assert_eq!(a.credit_window, 8);
                assert!(a.v1_only);
                assert!(a.quiet);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(["serve", "--wal-dir", "w", "--credit-window", "0"])
            .unwrap_err()
            .to_string()
            .contains("credit-window"));
        assert!(parse(["serve"])
            .unwrap_err()
            .to_string()
            .contains("wal-dir"));
        assert!(parse(["serve", "--wal-dir", "w", "--fsync", "sometimes"])
            .unwrap_err()
            .to_string()
            .contains("fsync"));
        assert!(
            parse(["serve", "--wal-dir", "w", "--wal-retain-bytes", "0"])
                .unwrap_err()
                .to_string()
                .contains("wal-retain-bytes")
        );
    }

    #[test]
    fn replay_wal_flags() {
        match parse(["replay-wal", "--wal-dir", "w", "--shards", "4"]).unwrap() {
            Command::ReplayWal(a) => {
                assert_eq!(a.wal_dir, "w");
                assert_eq!(a.shards, 4);
                assert_eq!(a.watermark, 1800);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(["replay-wal"])
            .unwrap_err()
            .to_string()
            .contains("wal-dir"));
        assert!(parse(["replay-wal", "--wal-dir", "w", "--shards", "0"])
            .unwrap_err()
            .to_string()
            .contains("shards"));
    }

    #[test]
    fn fault_specs_parse() {
        assert!(parse_fault("7:calib=1.15,1.15").is_ok());
        assert!(parse_fault("3:add=-9,-4.5").is_ok());
        assert!(parse_fault("5:noise=10,10").is_ok());
        assert!(parse_fault("2:outage=0.5").is_ok());
        assert!(parse_fault("bogus").is_err());
        assert!(parse_fault("1:bogus=1").is_err());
        assert!(parse_fault("1:stuck=abc").is_err());
    }

    #[test]
    fn attack_specs_parse() {
        assert!(parse_attack("3:create=25,69").is_ok());
        assert!(parse_attack("3:change=-15,0").is_ok());
        assert!(parse_attack("0:delete=1,1").is_err());
        assert!(parse_attack("3:bogus=1,1").is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        let e = parse(["analyze"]).unwrap_err();
        assert!(e.to_string().contains("input path"));
        let e = parse(["simulate", "x", "--days", "0"]).unwrap_err();
        assert!(e.to_string().contains("positive"));
        let e = parse(["frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
        let e = parse(["analyze", "x", "--trim", "0.9"]).unwrap_err();
        assert!(e.to_string().contains("trim"));
    }
}
