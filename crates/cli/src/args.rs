//! Hand-rolled argument parsing (no external CLI crate on the approved
//! dependency list; the grammar is small enough that a table-driven
//! parser stays clearer than a framework).

use sentinet_gateway::FsyncPolicy;
use sentinet_inject::{AttackModel, FaultModel};
use sentinet_sim::SensorId;
use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic trace CSV.
    Simulate(SimulateArgs),
    /// Run the detection pipeline over a trace CSV.
    Analyze(AnalyzeArgs),
    /// Run the durable live-ingest daemon over a socket.
    Serve(ServeArgs),
    /// Replay a write-ahead log offline into a report.
    ReplayWal(ReplayWalArgs),
    /// Drive a trace through a federated collector fleet.
    Federate(FederateArgs),
    /// Print usage.
    Help,
}

/// Arguments of `sentinet simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateArgs {
    /// Output CSV path.
    pub output: String,
    /// Simulated days.
    pub days: u64,
    /// RNG seed.
    pub seed: u64,
    /// Number of sensors.
    pub sensors: u16,
    /// Optional fault injection: `(sensor, model)`.
    pub fault: Option<(SensorId, FaultModel)>,
    /// Optional attack injection: `(compromised count, model)`.
    pub attack: Option<(u16, AttackModel)>,
}

/// Arguments of `sentinet analyze`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeArgs {
    /// Input CSV path.
    pub input: String,
    /// Sensor sampling period in seconds.
    pub period: u64,
    /// Observation window size in samples.
    pub window: u32,
    /// Observable-mean trim fraction.
    pub trim: f64,
    /// Worker shards for the sharded engine (1 = serial pipeline).
    pub shards: usize,
    /// Chaos-testing seed: inject a seeded fault plan (worker panics,
    /// dropped/delayed replies) into the supervised engine. `None`
    /// disables chaos.
    pub chaos_seed: Option<u64>,
    /// Restart budget per shard per window before quarantine.
    pub max_shard_restarts: u32,
    /// Emit the report as one summary line per sensor only.
    pub quiet: bool,
}

/// Arguments of `sentinet serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Write-ahead log directory (created if missing).
    pub wal_dir: String,
    /// Endpoint to bind: `HOST:PORT` or `unix:/path`.
    pub bind: String,
    /// Sensor sampling period in seconds.
    pub period: u64,
    /// Observation window size in samples.
    pub window: u32,
    /// Observable-mean trim fraction.
    pub trim: f64,
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
    /// Reorder watermark delay in stream seconds.
    pub watermark: u64,
    /// Silence deadline in stream seconds (`None` disables liveness).
    pub silence_deadline: Option<u64>,
    /// Checkpoint every N WAL records (0 disables).
    pub checkpoint_every: u64,
    /// WAL disk budget in bytes: checkpointed segments are reclaimed
    /// to stay under it, and ingest sheds (NACKs) when nothing is
    /// reclaimable (`None` retains everything).
    pub wal_retain_bytes: Option<u64>,
    /// WAL segment roll size in bytes (`None` keeps the default).
    /// Retention reclaims whole sealed segments, so the budget's
    /// granularity is one segment.
    pub wal_segment_bytes: Option<u64>,
    /// Chaos hook: abort the process after appending N WAL records.
    pub crash_after: Option<u64>,
    /// Batches a pipelined (protocol v2) client may keep in flight.
    pub credit_window: u32,
    /// Pin the server to protocol v1: v2 `Hello`s get a typed
    /// `HelloReject { supported: 1 }` instead of a credit grant.
    pub v1_only: bool,
    /// Owner epoch this collector serves under (0 = unfenced). A
    /// fence token is persisted beside the WAL; a collector started
    /// with a stale epoch fail-stops, and clients announcing a newer
    /// epoch fence the running collector into typed NACKs.
    pub epoch: u64,
    /// Emit the report as one summary line per sensor only.
    pub quiet: bool,
}

/// Arguments of `sentinet replay-wal`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayWalArgs {
    /// Write-ahead log directory to replay.
    pub wal_dir: String,
    /// Sensor sampling period in seconds.
    pub period: u64,
    /// Observation window size in samples.
    pub window: u32,
    /// Observable-mean trim fraction.
    pub trim: f64,
    /// Reorder watermark delay in stream seconds.
    pub watermark: u64,
    /// Re-run the released stream through the sharded engine with this
    /// many shards and verify bit-identical reports (1 skips).
    pub shards: usize,
    /// Emit the report as one summary line per sensor only.
    pub quiet: bool,
}

/// Arguments of `sentinet federate`.
#[derive(Debug, Clone, PartialEq)]
pub struct FederateArgs {
    /// Input CSV path.
    pub input: String,
    /// Root directory for the per-partition WAL directories.
    pub wal_root: String,
    /// Collector partitions the sensor range is split over.
    pub partitions: usize,
    /// Standby collectors available for failover adoption.
    pub standbys: usize,
    /// Drive the pipelined v2 uplink instead of stop-and-wait v1.
    pub v2: bool,
    /// Sensor sampling period in seconds.
    pub period: u64,
    /// Observation window size in samples.
    pub window: u32,
    /// Observable-mean trim fraction.
    pub trim: f64,
    /// WAL fsync policy handed to every collector (validated text,
    /// forwarded verbatim to the spawned `serve` children).
    pub fsync: String,
    /// Reorder watermark delay in stream seconds.
    pub watermark: u64,
    /// Checkpoint every N WAL records (0 disables).
    pub checkpoint_every: u64,
    /// Controller silence deadline in stream seconds: a suspect
    /// partition whose acks trail the stream clock by more than this
    /// is declared dead and failed over.
    pub silence_deadline: u64,
    /// Drills: SIGKILL each listed partition's collector after it has
    /// been handed N readings (comma-separated `P:N` specs).
    pub kill: Vec<(usize, u64)>,
    /// Live migration: split partition P at sensor S once P has routed
    /// N readings (`P:S[@N]`, N defaults to 0 — split on the first
    /// reading).
    pub split: Option<(usize, u16, usize)>,
    /// Live migration: move partition P's whole range into its
    /// adjacent partition once P has routed N readings (`P@N`).
    pub rebalance: Option<(usize, usize)>,
    /// Run the seeded nemesis campaign (in-process fault composition)
    /// instead of the file-driven federation when set.
    pub nemesis_seed: Option<u64>,
    /// Run the live-migration schedule inside every nemesis episode.
    pub nemesis_migration: bool,
    /// Episodes per nemesis campaign.
    pub episodes: u32,
    /// Standby adoption attempts before a partition orphans.
    pub handoff_attempts: u32,
    /// Uplink ack deadline in milliseconds.
    pub ack_timeout_ms: u64,
    /// Uplink attempts per frame before the link is declared down.
    pub max_attempts: u32,
    /// First uplink backoff delay in milliseconds.
    pub backoff_base_ms: u64,
    /// Uplink backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Uplink backoff jitter ceiling as a percentage (0 = fully
    /// deterministic, the drill setting).
    pub jitter_pct: u32,
    /// Readings per pipelined v2 batch.
    pub batch_size: usize,
    /// Emit the report as one summary line per sensor only.
    pub quiet: bool,
}

/// Parses a `--kill` drill spec `PARTITION:AFTER`.
pub fn parse_kill(spec: &str) -> Result<(usize, u64), ParseError> {
    let (p, after) = spec
        .split_once(':')
        .ok_or_else(|| ParseError(format!("kill spec {spec:?} needs PARTITION:AFTER")))?;
    let p: usize = p
        .parse()
        .map_err(|e| ParseError(format!("bad kill partition {p:?}: {e}")))?;
    let after: u64 = after
        .parse()
        .map_err(|e| ParseError(format!("bad kill coordinate {after:?}: {e}")))?;
    Ok((p, after))
}

/// Parses a comma-separated `--kill` list `P:N[,P:N...]`, rejecting
/// duplicate partitions (two SIGKILL coordinates for one collector
/// would race each other and make the drill ambiguous).
pub fn parse_kills(spec: &str) -> Result<Vec<(usize, u64)>, ParseError> {
    let kills: Vec<(usize, u64)> = spec.split(',').map(parse_kill).collect::<Result<_, _>>()?;
    let mut seen = std::collections::BTreeSet::new();
    for (p, _) in &kills {
        if !seen.insert(*p) {
            return Err(ParseError(format!(
                "kill list {spec:?} names partition {p} twice"
            )));
        }
    }
    Ok(kills)
}

/// Parses a `--split` migration spec `PARTITION:SENSOR[@AFTER]`:
/// split partition P at sensor S once P has routed AFTER readings
/// (AFTER defaults to 0 — split on the first reading).
pub fn parse_split(spec: &str) -> Result<(usize, u16, usize), ParseError> {
    let (head, after) = match spec.split_once('@') {
        Some((head, after)) => (
            head,
            after
                .parse()
                .map_err(|e| ParseError(format!("bad split trigger {after:?}: {e}")))?,
        ),
        None => (spec, 0),
    };
    let (p, sensor) = head.split_once(':').ok_or_else(|| {
        ParseError(format!(
            "split spec {spec:?} needs PARTITION:SENSOR[@AFTER]"
        ))
    })?;
    let p: usize = p
        .parse()
        .map_err(|e| ParseError(format!("bad split partition {p:?}: {e}")))?;
    let sensor: u16 = sensor
        .parse()
        .map_err(|e| ParseError(format!("bad split sensor {sensor:?}: {e}")))?;
    Ok((p, sensor, after))
}

/// Parses a `--rebalance` migration spec `PARTITION@AFTER`: move
/// partition P's whole range into its adjacent partition once P has
/// routed AFTER readings.
pub fn parse_rebalance(spec: &str) -> Result<(usize, usize), ParseError> {
    let (p, after) = spec
        .split_once('@')
        .ok_or_else(|| ParseError(format!("rebalance spec {spec:?} needs PARTITION@AFTER")))?;
    let p: usize = p
        .parse()
        .map_err(|e| ParseError(format!("bad rebalance partition {p:?}: {e}")))?;
    let after: usize = after
        .parse()
        .map_err(|e| ParseError(format!("bad rebalance trigger {after:?}: {e}")))?;
    Ok((p, after))
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
sentinet — detect and distinguish errors vs attacks in sensor traces

USAGE:
  sentinet simulate <out.csv> [--days N] [--seed S] [--sensors K]
                    [--fault SENSOR:MODEL] [--attack COUNT:MODEL]
  sentinet analyze <trace.csv> [--period SECS] [--window SAMPLES]
                    [--trim FRACTION] [--shards N] [--quiet]
                    [--chaos-seed S] [--max-shard-restarts N]
  sentinet serve --wal-dir DIR [--bind HOST:PORT|unix:/path]
                    [--period SECS] [--window SAMPLES] [--trim FRACTION]
                    [--fsync never|batch:N|always] [--watermark SECS]
                    [--silence-deadline SECS] [--checkpoint-every N]
                    [--wal-retain-bytes N] [--wal-segment-bytes N]
                    [--crash-after N] [--credit-window N] [--v1-only]
                    [--epoch N] [--quiet]
  sentinet replay-wal --wal-dir DIR [--period SECS] [--window SAMPLES]
                    [--trim FRACTION] [--watermark SECS] [--shards N]
                    [--quiet]
  sentinet federate <trace.csv> --wal-root DIR [--partitions N]
                    [--standbys N] [--protocol v1|v2] [--period SECS]
                    [--window SAMPLES] [--trim FRACTION]
                    [--fsync never|batch:N|always] [--watermark SECS]
                    [--checkpoint-every N] [--silence-deadline SECS]
                    [--kill P:N[,P:N...]] [--handoff-attempts N]
                    [--split P:S[@N]] [--rebalance P@N]
                    [--ack-timeout-ms N] [--max-attempts N]
                    [--backoff-base-ms N] [--backoff-cap-ms N]
                    [--jitter-pct N] [--batch-size N] [--quiet]
                    [--nemesis-seed S [--episodes N]
                     [--nemesis-migration]]
  sentinet help

LIVE INGEST (serve / replay-wal):
  serve binds a socket, prints `listening on ADDR` on stdout, and runs
  the durable collector until a client sends Fin: every accepted frame
  is WAL-appended before it is acked, so `kill -9` at any point (try
  --crash-after N) resumes to a bit-identical report on restart.
  replay-wal rebuilds the report offline from a WAL directory;
  --shards N > 1 additionally re-runs the released stream through the
  supervised engine and verifies the reports match bit for bit.
  --silence-deadline 0 disables liveness tracking.
  --wal-retain-bytes N bounds the WAL on disk: segments wholly covered
  by a durable checkpoint are deleted after the checkpoint commits, and
  when nothing is reclaimable new records are shed with counted NACKs
  instead of breaching the budget.

FEDERATION (federate):
  federate splits the trace's sensors evenly over N collector
  partitions, spawns one `sentinet serve` child per partition, and
  routes every reading through the real uplink. A partition that stops
  acking turns suspect; once its last ack trails the stream clock by
  more than --silence-deadline it is declared dead and a standby
  adopts its WAL (checkpoint snapshot restore + tail replay), with the
  controller redelivering the routed backlog. With no standby left the
  partition orphans: readings NACK, counted, never dropped. The fleet
  diagnosis goes to stdout (byte-comparable across drilled and
  uninterrupted runs); federation events and merged counters go to
  stderr; exit status 3 flags a diagnosis or a degraded fleet.
  --kill P:N[,P:N...] SIGKILLs each listed partition's collector
  mid-stream — the failover drill; partitions may not repeat.
  --split P:S[@N] migrates live: once partition P has routed N
  readings (default 0) it splits at sensor S — the upper sub-range
  drains, cuts a snapshot at a WAL cursor and a fresh partition adopts
  it durably before the map commits, without stopping ingest.
  --rebalance P@N moves partition P's whole range into its adjacent
  partition the same way once P has routed N readings; P may name the
  partition a --split creates (id = --partitions). Ingest never stops;
  a crash mid-handoff rolls the migration back or forward, never both.
  --nemesis-seed S skips the trace entirely and runs the seeded
  in-process nemesis campaign instead: --episodes N randomized
  episodes (default 50) composing network, process and disk faults
  against the full federation stack, checking that no acked reading
  is lost, the fleet diagnosis stays byte-identical to an
  uninterrupted baseline, and fencing keeps a single writer per
  partition. Exit status 3 reports an invariant violation.
  --nemesis-migration additionally runs a live split and a
  rebalance-back inside every episode, so the fault plan lands on the
  handoff ladder itself, and probes fenced former owners of migrated
  ranges to prove the cut cannot resurrect.
  serve --epoch N starts the collector fenced at owner epoch N: the
  fence token persists beside the WAL, a stale restart fail-stops,
  and a client announcing a newer epoch turns the running collector
  into a zombie that NACKs every append with a typed rejection.

CHAOS TESTING (analyze):
  --chaos-seed S           inject a seeded, replayable fault plan
                           (worker panics, dropped/delayed replies)
                           into the supervised sharded engine
  --max-shard-restarts N   per-window crash budget before a shard is
                           quarantined (default 3)

FAULT MODELS (simulate --fault):
  6:stuck=15,1        sensor 6 stuck at (15, 1)
  7:calib=1.15,1.15   sensor 7 gains ×(1.15, 1.15)
  3:add=-9,-4.5       sensor 3 offset (−9, −4.5)
  5:noise=10,10       sensor 5 extra noise σ (10, 10)
  2:outage=0.5        sensor 2 drops 50% of its packets

ATTACK MODELS (simulate --attack):
  3:delete=12,94      3 sensors pin the observed state at (12, 94)
  3:create=25,69      3 sensors forge state (25, 69)
  3:change=-15,0      3 sensors shift the observed state by (−15, 0)
";

fn parse_pair(s: &str, what: &str) -> Result<Vec<f64>, ParseError> {
    let vals: Result<Vec<f64>, _> = s.split(',').map(str::parse).collect();
    vals.map_err(|e| ParseError(format!("bad {what} values {s:?}: {e}")))
}

/// Parses `SENSOR:MODEL=ARGS` into a fault injection spec.
pub fn parse_fault(spec: &str) -> Result<(SensorId, FaultModel), ParseError> {
    let (sensor, rest) = spec
        .split_once(':')
        .ok_or_else(|| ParseError(format!("fault spec {spec:?} needs SENSOR:MODEL")))?;
    let sensor: u16 = sensor
        .parse()
        .map_err(|e| ParseError(format!("bad sensor id {sensor:?}: {e}")))?;
    let (model, args) = rest.split_once('=').unwrap_or((rest, ""));
    let model = match model {
        "stuck" => FaultModel::StuckAt {
            value: parse_pair(args, "stuck")?,
        },
        "calib" => FaultModel::Calibration {
            gain: parse_pair(args, "calibration")?,
        },
        "add" => FaultModel::Additive {
            offset: parse_pair(args, "additive")?,
        },
        "noise" => FaultModel::RandomNoise {
            std: parse_pair(args, "noise")?,
        },
        "outage" => FaultModel::Outage {
            drop_prob: args
                .parse()
                .map_err(|e| ParseError(format!("bad outage probability {args:?}: {e}")))?,
        },
        other => {
            return Err(ParseError(format!(
                "unknown fault model {other:?} (stuck|calib|add|noise|outage)"
            )))
        }
    };
    Ok((SensorId(sensor), model))
}

/// Parses `COUNT:MODEL=ARGS` into an attack injection spec.
pub fn parse_attack(spec: &str) -> Result<(u16, AttackModel), ParseError> {
    let (count, rest) = spec
        .split_once(':')
        .ok_or_else(|| ParseError(format!("attack spec {spec:?} needs COUNT:MODEL")))?;
    let count: u16 = count
        .parse()
        .map_err(|e| ParseError(format!("bad sensor count {count:?}: {e}")))?;
    if count == 0 {
        return Err(ParseError("attack needs at least one sensor".into()));
    }
    let (model, args) = rest.split_once('=').unwrap_or((rest, ""));
    let model = match model {
        "delete" => AttackModel::DynamicDeletion {
            freeze_at: parse_pair(args, "deletion")?,
        },
        "create" => AttackModel::DynamicCreation {
            target: parse_pair(args, "creation")?,
        },
        "change" => AttackModel::DynamicChange {
            offset: parse_pair(args, "change")?,
        },
        other => {
            return Err(ParseError(format!(
                "unknown attack model {other:?} (delete|create|change)"
            )))
        }
    };
    Ok((count, model))
}

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    it: &mut I,
) -> Result<&'a str, ParseError> {
    it.next()
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

/// Parses a full argument list (excluding the program name).
pub fn parse<'a, I: IntoIterator<Item = &'a str>>(args: I) -> Result<Command, ParseError> {
    let mut it = args.into_iter();
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("simulate") => {
            let output = take_value("simulate", &mut it)
                .map_err(|_| ParseError("simulate needs an output path".into()))?
                .to_string();
            let mut parsed = SimulateArgs {
                output,
                days: 7,
                seed: 1,
                sensors: 10,
                fault: None,
                attack: None,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--days" => {
                        parsed.days = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --days: {e}")))?
                    }
                    "--seed" => {
                        parsed.seed = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --seed: {e}")))?
                    }
                    "--sensors" => {
                        parsed.sensors = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --sensors: {e}")))?
                    }
                    "--fault" => parsed.fault = Some(parse_fault(take_value(flag, &mut it)?)?),
                    "--attack" => parsed.attack = Some(parse_attack(take_value(flag, &mut it)?)?),
                    other => return Err(ParseError(format!("unknown flag {other:?}"))),
                }
            }
            if parsed.days == 0 || parsed.sensors == 0 {
                return Err(ParseError("--days and --sensors must be positive".into()));
            }
            Ok(Command::Simulate(parsed))
        }
        Some("analyze") => {
            let input = take_value("analyze", &mut it)
                .map_err(|_| ParseError("analyze needs an input path".into()))?
                .to_string();
            let mut parsed = AnalyzeArgs {
                input,
                period: 300,
                window: 12,
                trim: 0.15,
                shards: 1,
                chaos_seed: None,
                max_shard_restarts: 3,
                quiet: false,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--period" => {
                        parsed.period = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --period: {e}")))?
                    }
                    "--window" => {
                        parsed.window = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --window: {e}")))?
                    }
                    "--trim" => {
                        parsed.trim = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --trim: {e}")))?
                    }
                    "--shards" => {
                        parsed.shards = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --shards: {e}")))?
                    }
                    "--chaos-seed" => {
                        parsed.chaos_seed = Some(
                            take_value(flag, &mut it)?
                                .parse()
                                .map_err(|e| ParseError(format!("bad --chaos-seed: {e}")))?,
                        )
                    }
                    "--max-shard-restarts" => {
                        parsed.max_shard_restarts = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --max-shard-restarts: {e}")))?
                    }
                    "--quiet" => parsed.quiet = true,
                    other => return Err(ParseError(format!("unknown flag {other:?}"))),
                }
            }
            if parsed.period == 0 || parsed.window == 0 || !(0.0..0.5).contains(&parsed.trim) {
                return Err(ParseError(
                    "--period/--window must be positive, --trim in [0, 0.5)".into(),
                ));
            }
            if parsed.shards == 0 {
                return Err(ParseError("--shards must be at least 1".into()));
            }
            Ok(Command::Analyze(parsed))
        }
        Some("serve") => {
            let mut wal_dir = None;
            let mut parsed = ServeArgs {
                wal_dir: String::new(),
                bind: "127.0.0.1:0".into(),
                period: 300,
                window: 12,
                trim: 0.15,
                fsync: FsyncPolicy::Batch(64),
                watermark: 1800,
                silence_deadline: Some(3600),
                checkpoint_every: 256,
                wal_retain_bytes: None,
                wal_segment_bytes: None,
                crash_after: None,
                credit_window: 32,
                v1_only: false,
                epoch: 0,
                quiet: false,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--wal-dir" => wal_dir = Some(take_value(flag, &mut it)?.to_string()),
                    "--bind" => parsed.bind = take_value(flag, &mut it)?.to_string(),
                    "--period" => {
                        parsed.period = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --period: {e}")))?
                    }
                    "--window" => {
                        parsed.window = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --window: {e}")))?
                    }
                    "--trim" => {
                        parsed.trim = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --trim: {e}")))?
                    }
                    "--fsync" => {
                        parsed.fsync = FsyncPolicy::parse(take_value(flag, &mut it)?)
                            .map_err(|e| ParseError(format!("bad --fsync: {e}")))?
                    }
                    "--watermark" => {
                        parsed.watermark = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --watermark: {e}")))?
                    }
                    "--silence-deadline" => {
                        let secs: u64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --silence-deadline: {e}")))?;
                        parsed.silence_deadline = (secs > 0).then_some(secs);
                    }
                    "--checkpoint-every" => {
                        parsed.checkpoint_every = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --checkpoint-every: {e}")))?
                    }
                    "--wal-retain-bytes" => {
                        let bytes: u64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --wal-retain-bytes: {e}")))?;
                        if bytes == 0 {
                            return Err(ParseError("--wal-retain-bytes must be positive".into()));
                        }
                        parsed.wal_retain_bytes = Some(bytes);
                    }
                    "--wal-segment-bytes" => {
                        let bytes: u64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --wal-segment-bytes: {e}")))?;
                        if bytes == 0 {
                            return Err(ParseError("--wal-segment-bytes must be positive".into()));
                        }
                        parsed.wal_segment_bytes = Some(bytes);
                    }
                    "--crash-after" => {
                        parsed.crash_after = Some(
                            take_value(flag, &mut it)?
                                .parse()
                                .map_err(|e| ParseError(format!("bad --crash-after: {e}")))?,
                        )
                    }
                    "--credit-window" => {
                        let credits: u32 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --credit-window: {e}")))?;
                        if credits == 0 {
                            return Err(ParseError("--credit-window must be positive".into()));
                        }
                        parsed.credit_window = credits;
                    }
                    "--v1-only" => parsed.v1_only = true,
                    "--epoch" => {
                        parsed.epoch = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --epoch: {e}")))?
                    }
                    "--quiet" => parsed.quiet = true,
                    other => return Err(ParseError(format!("unknown flag {other:?}"))),
                }
            }
            parsed.wal_dir = wal_dir.ok_or_else(|| ParseError("serve needs --wal-dir".into()))?;
            if parsed.period == 0 || parsed.window == 0 || !(0.0..0.5).contains(&parsed.trim) {
                return Err(ParseError(
                    "--period/--window must be positive, --trim in [0, 0.5)".into(),
                ));
            }
            Ok(Command::Serve(parsed))
        }
        Some("replay-wal") => {
            let mut wal_dir = None;
            let mut parsed = ReplayWalArgs {
                wal_dir: String::new(),
                period: 300,
                window: 12,
                trim: 0.15,
                watermark: 1800,
                shards: 1,
                quiet: false,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--wal-dir" => wal_dir = Some(take_value(flag, &mut it)?.to_string()),
                    "--period" => {
                        parsed.period = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --period: {e}")))?
                    }
                    "--window" => {
                        parsed.window = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --window: {e}")))?
                    }
                    "--trim" => {
                        parsed.trim = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --trim: {e}")))?
                    }
                    "--watermark" => {
                        parsed.watermark = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --watermark: {e}")))?
                    }
                    "--shards" => {
                        parsed.shards = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --shards: {e}")))?
                    }
                    "--quiet" => parsed.quiet = true,
                    other => return Err(ParseError(format!("unknown flag {other:?}"))),
                }
            }
            parsed.wal_dir =
                wal_dir.ok_or_else(|| ParseError("replay-wal needs --wal-dir".into()))?;
            if parsed.period == 0 || parsed.window == 0 || !(0.0..0.5).contains(&parsed.trim) {
                return Err(ParseError(
                    "--period/--window must be positive, --trim in [0, 0.5)".into(),
                ));
            }
            if parsed.shards == 0 {
                return Err(ParseError("--shards must be at least 1".into()));
            }
            Ok(Command::ReplayWal(parsed))
        }
        Some("federate") => {
            let input = take_value("federate", &mut it)
                .map_err(|_| ParseError("federate needs an input path".into()))?
                .to_string();
            let mut wal_root = None;
            let mut parsed = FederateArgs {
                input,
                wal_root: String::new(),
                partitions: 2,
                standbys: 1,
                v2: false,
                period: 300,
                window: 12,
                trim: 0.15,
                fsync: "batch:64".into(),
                watermark: 1800,
                checkpoint_every: 256,
                silence_deadline: 3600,
                kill: Vec::new(),
                split: None,
                rebalance: None,
                nemesis_seed: None,
                episodes: 50,
                nemesis_migration: false,
                handoff_attempts: 4,
                ack_timeout_ms: 500,
                max_attempts: 8,
                backoff_base_ms: 25,
                backoff_cap_ms: 2000,
                jitter_pct: 50,
                batch_size: 8,
                quiet: false,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--wal-root" => wal_root = Some(take_value(flag, &mut it)?.to_string()),
                    "--partitions" => {
                        parsed.partitions = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --partitions: {e}")))?
                    }
                    "--standbys" => {
                        parsed.standbys = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --standbys: {e}")))?
                    }
                    "--protocol" => {
                        parsed.v2 = match take_value(flag, &mut it)? {
                            "v1" => false,
                            "v2" => true,
                            other => {
                                return Err(ParseError(format!(
                                    "unknown protocol {other:?} (v1|v2)"
                                )))
                            }
                        }
                    }
                    "--period" => {
                        parsed.period = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --period: {e}")))?
                    }
                    "--window" => {
                        parsed.window = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --window: {e}")))?
                    }
                    "--trim" => {
                        parsed.trim = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --trim: {e}")))?
                    }
                    "--fsync" => {
                        let text = take_value(flag, &mut it)?;
                        FsyncPolicy::parse(text)
                            .map_err(|e| ParseError(format!("bad --fsync: {e}")))?;
                        parsed.fsync = text.to_string();
                    }
                    "--watermark" => {
                        parsed.watermark = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --watermark: {e}")))?
                    }
                    "--checkpoint-every" => {
                        parsed.checkpoint_every = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --checkpoint-every: {e}")))?
                    }
                    "--silence-deadline" => {
                        parsed.silence_deadline = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --silence-deadline: {e}")))?
                    }
                    "--kill" => parsed.kill = parse_kills(take_value(flag, &mut it)?)?,
                    "--split" => parsed.split = Some(parse_split(take_value(flag, &mut it)?)?),
                    "--rebalance" => {
                        parsed.rebalance = Some(parse_rebalance(take_value(flag, &mut it)?)?)
                    }
                    "--nemesis-migration" => parsed.nemesis_migration = true,
                    "--nemesis-seed" => {
                        parsed.nemesis_seed = Some(
                            take_value(flag, &mut it)?
                                .parse()
                                .map_err(|e| ParseError(format!("bad --nemesis-seed: {e}")))?,
                        )
                    }
                    "--episodes" => {
                        parsed.episodes = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --episodes: {e}")))?
                    }
                    "--handoff-attempts" => {
                        parsed.handoff_attempts = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --handoff-attempts: {e}")))?
                    }
                    "--ack-timeout-ms" => {
                        parsed.ack_timeout_ms = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --ack-timeout-ms: {e}")))?
                    }
                    "--max-attempts" => {
                        parsed.max_attempts = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --max-attempts: {e}")))?
                    }
                    "--backoff-base-ms" => {
                        parsed.backoff_base_ms = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --backoff-base-ms: {e}")))?
                    }
                    "--backoff-cap-ms" => {
                        parsed.backoff_cap_ms = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --backoff-cap-ms: {e}")))?
                    }
                    "--jitter-pct" => {
                        parsed.jitter_pct = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --jitter-pct: {e}")))?
                    }
                    "--batch-size" => {
                        let n: usize = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|e| ParseError(format!("bad --batch-size: {e}")))?;
                        if n == 0 {
                            return Err(ParseError("--batch-size must be positive".into()));
                        }
                        parsed.batch_size = n;
                    }
                    "--quiet" => parsed.quiet = true,
                    other => return Err(ParseError(format!("unknown flag {other:?}"))),
                }
            }
            parsed.wal_root =
                wal_root.ok_or_else(|| ParseError("federate needs --wal-root".into()))?;
            if parsed.period == 0 || parsed.window == 0 || !(0.0..0.5).contains(&parsed.trim) {
                return Err(ParseError(
                    "--period/--window must be positive, --trim in [0, 0.5)".into(),
                ));
            }
            if parsed.partitions == 0 {
                return Err(ParseError("--partitions must be at least 1".into()));
            }
            if parsed.silence_deadline == 0 {
                return Err(ParseError(
                    "--silence-deadline must be positive (the controller cannot \
                     declare death without a deadline)"
                        .into(),
                ));
            }
            if parsed.handoff_attempts == 0 || parsed.max_attempts == 0 {
                return Err(ParseError(
                    "--handoff-attempts and --max-attempts must be at least 1".into(),
                ));
            }
            for &(p, _) in &parsed.kill {
                if p >= parsed.partitions {
                    return Err(ParseError(format!(
                        "--kill partition {p} out of range (0..{})",
                        parsed.partitions
                    )));
                }
            }
            if parsed.episodes == 0 {
                return Err(ParseError("--episodes must be at least 1".into()));
            }
            if parsed.nemesis_migration && parsed.nemesis_seed.is_none() {
                return Err(ParseError(
                    "--nemesis-migration needs --nemesis-seed".into(),
                ));
            }
            if let Some((p, _, _)) = parsed.split {
                if p >= parsed.partitions {
                    return Err(ParseError(format!(
                        "--split partition {p} out of range (0..{})",
                        parsed.partitions
                    )));
                }
            }
            if let Some((p, _)) = parsed.rebalance {
                // A rebalance may name the partition a split creates,
                // whose id is the pre-split partition count.
                let limit = parsed.partitions + usize::from(parsed.split.is_some());
                if p >= limit {
                    return Err(ParseError(format!(
                        "--rebalance partition {p} out of range (0..{limit})"
                    )));
                }
            }
            Ok(Command::Federate(parsed))
        }
        Some(other) => Err(ParseError(format!(
            "unknown command {other:?} (simulate|analyze|serve|replay-wal|federate|help)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_variants() {
        assert_eq!(parse([]).unwrap(), Command::Help);
        assert_eq!(parse(["help"]).unwrap(), Command::Help);
        assert_eq!(parse(["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn simulate_defaults() {
        match parse(["simulate", "out.csv"]).unwrap() {
            Command::Simulate(a) => {
                assert_eq!(a.output, "out.csv");
                assert_eq!(a.days, 7);
                assert_eq!(a.sensors, 10);
                assert!(a.fault.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simulate_full_flags() {
        match parse([
            "simulate",
            "t.csv",
            "--days",
            "3",
            "--seed",
            "9",
            "--sensors",
            "6",
            "--fault",
            "6:stuck=15,1",
            "--attack",
            "2:delete=12,94",
        ])
        .unwrap()
        {
            Command::Simulate(a) => {
                assert_eq!(a.days, 3);
                assert_eq!(a.seed, 9);
                assert_eq!(a.sensors, 6);
                let (s, f) = a.fault.unwrap();
                assert_eq!(s, SensorId(6));
                assert_eq!(
                    f,
                    FaultModel::StuckAt {
                        value: vec![15.0, 1.0]
                    }
                );
                let (n, m) = a.attack.unwrap();
                assert_eq!(n, 2);
                assert_eq!(
                    m,
                    AttackModel::DynamicDeletion {
                        freeze_at: vec![12.0, 94.0]
                    }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn analyze_flags() {
        match parse([
            "analyze", "t.csv", "--period", "60", "--window", "15", "--trim", "0.1", "--shards",
            "4", "--quiet",
        ])
        .unwrap()
        {
            Command::Analyze(a) => {
                assert_eq!(a.period, 60);
                assert_eq!(a.window, 15);
                assert!((a.trim - 0.1).abs() < 1e-12);
                assert_eq!(a.shards, 4);
                assert!(a.quiet);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn analyze_chaos_flags() {
        match parse(["analyze", "t.csv"]).unwrap() {
            Command::Analyze(a) => {
                assert_eq!(a.chaos_seed, None);
                assert_eq!(a.max_shard_restarts, 3);
            }
            other => panic!("{other:?}"),
        }
        match parse([
            "analyze",
            "t.csv",
            "--chaos-seed",
            "99",
            "--max-shard-restarts",
            "5",
        ])
        .unwrap()
        {
            Command::Analyze(a) => {
                assert_eq!(a.chaos_seed, Some(99));
                assert_eq!(a.max_shard_restarts, 5);
            }
            other => panic!("{other:?}"),
        }
        let e = parse(["analyze", "t.csv", "--chaos-seed", "x"]).unwrap_err();
        assert!(e.to_string().contains("chaos-seed"));
    }

    #[test]
    fn analyze_shards_default_and_validation() {
        match parse(["analyze", "t.csv"]).unwrap() {
            Command::Analyze(a) => assert_eq!(a.shards, 1),
            other => panic!("{other:?}"),
        }
        let e = parse(["analyze", "t.csv", "--shards", "0"]).unwrap_err();
        assert!(e.to_string().contains("shards"));
    }

    #[test]
    fn serve_defaults_and_flags() {
        match parse(["serve", "--wal-dir", "/tmp/wal"]).unwrap() {
            Command::Serve(a) => {
                assert_eq!(a.wal_dir, "/tmp/wal");
                assert_eq!(a.bind, "127.0.0.1:0");
                assert_eq!(a.fsync, FsyncPolicy::Batch(64));
                assert_eq!(a.watermark, 1800);
                assert_eq!(a.silence_deadline, Some(3600));
                assert_eq!(a.wal_retain_bytes, None);
                assert_eq!(a.wal_segment_bytes, None);
                assert_eq!(a.crash_after, None);
                assert_eq!(a.credit_window, 32);
                assert!(!a.v1_only);
            }
            other => panic!("{other:?}"),
        }
        match parse([
            "serve",
            "--wal-dir",
            "w",
            "--bind",
            "unix:/tmp/s.sock",
            "--fsync",
            "never",
            "--watermark",
            "600",
            "--silence-deadline",
            "0",
            "--wal-retain-bytes",
            "65536",
            "--wal-segment-bytes",
            "4096",
            "--crash-after",
            "40",
            "--credit-window",
            "8",
            "--v1-only",
            "--quiet",
        ])
        .unwrap()
        {
            Command::Serve(a) => {
                assert_eq!(a.bind, "unix:/tmp/s.sock");
                assert_eq!(a.fsync, FsyncPolicy::Never);
                assert_eq!(a.watermark, 600);
                assert_eq!(a.silence_deadline, None);
                assert_eq!(a.wal_retain_bytes, Some(65536));
                assert_eq!(a.wal_segment_bytes, Some(4096));
                assert_eq!(a.crash_after, Some(40));
                assert_eq!(a.credit_window, 8);
                assert!(a.v1_only);
                assert_eq!(a.epoch, 0);
                assert!(a.quiet);
            }
            other => panic!("{other:?}"),
        }
        match parse(["serve", "--wal-dir", "w", "--epoch", "3"]).unwrap() {
            Command::Serve(a) => assert_eq!(a.epoch, 3),
            other => panic!("{other:?}"),
        }
        assert!(parse(["serve", "--wal-dir", "w", "--epoch", "x"])
            .unwrap_err()
            .to_string()
            .contains("epoch"));
        assert!(parse(["serve", "--wal-dir", "w", "--credit-window", "0"])
            .unwrap_err()
            .to_string()
            .contains("credit-window"));
        assert!(parse(["serve"])
            .unwrap_err()
            .to_string()
            .contains("wal-dir"));
        assert!(parse(["serve", "--wal-dir", "w", "--fsync", "sometimes"])
            .unwrap_err()
            .to_string()
            .contains("fsync"));
        assert!(
            parse(["serve", "--wal-dir", "w", "--wal-retain-bytes", "0"])
                .unwrap_err()
                .to_string()
                .contains("wal-retain-bytes")
        );
    }

    #[test]
    fn replay_wal_flags() {
        match parse(["replay-wal", "--wal-dir", "w", "--shards", "4"]).unwrap() {
            Command::ReplayWal(a) => {
                assert_eq!(a.wal_dir, "w");
                assert_eq!(a.shards, 4);
                assert_eq!(a.watermark, 1800);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(["replay-wal"])
            .unwrap_err()
            .to_string()
            .contains("wal-dir"));
        assert!(parse(["replay-wal", "--wal-dir", "w", "--shards", "0"])
            .unwrap_err()
            .to_string()
            .contains("shards"));
    }

    #[test]
    fn federate_defaults_and_flags() {
        match parse(["federate", "t.csv", "--wal-root", "/tmp/fleet"]).unwrap() {
            Command::Federate(a) => {
                assert_eq!(a.input, "t.csv");
                assert_eq!(a.wal_root, "/tmp/fleet");
                assert_eq!(a.partitions, 2);
                assert_eq!(a.standbys, 1);
                assert!(!a.v2);
                assert_eq!(a.fsync, "batch:64");
                assert_eq!(a.silence_deadline, 3600);
                assert_eq!(a.kill, vec![]);
                assert_eq!(a.nemesis_seed, None);
                assert_eq!(a.episodes, 50);
                assert_eq!(a.handoff_attempts, 4);
                assert_eq!(a.jitter_pct, 50);
            }
            other => panic!("{other:?}"),
        }
        match parse([
            "federate",
            "t.csv",
            "--wal-root",
            "w",
            "--partitions",
            "3",
            "--standbys",
            "0",
            "--protocol",
            "v2",
            "--fsync",
            "never",
            "--silence-deadline",
            "900",
            "--kill",
            "1:40",
            "--handoff-attempts",
            "2",
            "--ack-timeout-ms",
            "200",
            "--max-attempts",
            "3",
            "--backoff-base-ms",
            "5",
            "--backoff-cap-ms",
            "50",
            "--jitter-pct",
            "0",
            "--batch-size",
            "16",
            "--quiet",
        ])
        .unwrap()
        {
            Command::Federate(a) => {
                assert_eq!(a.partitions, 3);
                assert_eq!(a.standbys, 0);
                assert!(a.v2);
                assert_eq!(a.fsync, "never");
                assert_eq!(a.silence_deadline, 900);
                assert_eq!(a.kill, vec![(1, 40)]);
                assert_eq!(a.handoff_attempts, 2);
                assert_eq!(a.ack_timeout_ms, 200);
                assert_eq!(a.max_attempts, 3);
                assert_eq!(a.backoff_base_ms, 5);
                assert_eq!(a.backoff_cap_ms, 50);
                assert_eq!(a.jitter_pct, 0);
                assert_eq!(a.batch_size, 16);
                assert!(a.quiet);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn federate_kill_accepts_a_comma_separated_list() {
        match parse([
            "federate",
            "t.csv",
            "--wal-root",
            "w",
            "--partitions",
            "3",
            "--kill",
            "0:20,2:40",
        ])
        .unwrap()
        {
            Command::Federate(a) => assert_eq!(a.kill, vec![(0, 20), (2, 40)]),
            other => panic!("{other:?}"),
        }
        assert!(parse([
            "federate",
            "t.csv",
            "--wal-root",
            "w",
            "--kill",
            "0:20,0:40"
        ])
        .unwrap_err()
        .to_string()
        .contains("twice"));
        assert!(parse([
            "federate",
            "t.csv",
            "--wal-root",
            "w",
            "--partitions",
            "3",
            "--kill",
            "0:20,7:40"
        ])
        .unwrap_err()
        .to_string()
        .contains("out of range"));
    }

    #[test]
    fn federate_migration_flags() {
        match parse([
            "federate",
            "t.csv",
            "--wal-root",
            "w",
            "--partitions",
            "2",
            "--split",
            "0:3@120",
            "--rebalance",
            "2@40",
        ])
        .unwrap()
        {
            Command::Federate(a) => {
                assert_eq!(a.split, Some((0, 3, 120)));
                assert_eq!(a.rebalance, Some((2, 40)));
            }
            other => panic!("{other:?}"),
        }
        // The trigger defaults to 0 when omitted.
        match parse(["federate", "t.csv", "--wal-root", "w", "--split", "1:5"]).unwrap() {
            Command::Federate(a) => assert_eq!(a.split, Some((1, 5, 0))),
            other => panic!("{other:?}"),
        }
        assert!(
            parse(["federate", "t.csv", "--wal-root", "w", "--split", "0"])
                .unwrap_err()
                .to_string()
                .contains("PARTITION:SENSOR")
        );
        assert!(
            parse(["federate", "t.csv", "--wal-root", "w", "--split", "9:1"])
                .unwrap_err()
                .to_string()
                .contains("out of range")
        );
        assert!(
            parse(["federate", "t.csv", "--wal-root", "w", "--rebalance", "1:9"])
                .unwrap_err()
                .to_string()
                .contains("PARTITION@AFTER")
        );
        // Without a split, only the configured partitions exist.
        assert!(
            parse(["federate", "t.csv", "--wal-root", "w", "--rebalance", "2@9"])
                .unwrap_err()
                .to_string()
                .contains("out of range")
        );
    }

    #[test]
    fn federate_nemesis_flags() {
        match parse([
            "federate",
            "t.csv",
            "--wal-root",
            "w",
            "--nemesis-seed",
            "42",
            "--episodes",
            "200",
            "--nemesis-migration",
        ])
        .unwrap()
        {
            Command::Federate(a) => {
                assert_eq!(a.nemesis_seed, Some(42));
                assert_eq!(a.episodes, 200);
                assert!(a.nemesis_migration);
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse(["federate", "t.csv", "--wal-root", "w", "--episodes", "0"])
                .unwrap_err()
                .to_string()
                .contains("episodes")
        );
        assert!(parse([
            "federate",
            "t.csv",
            "--wal-root",
            "w",
            "--nemesis-migration"
        ])
        .unwrap_err()
        .to_string()
        .contains("--nemesis-seed"));
    }

    #[test]
    fn federate_validation_is_descriptive() {
        assert!(parse(["federate"])
            .unwrap_err()
            .to_string()
            .contains("input path"));
        assert!(parse(["federate", "t.csv"])
            .unwrap_err()
            .to_string()
            .contains("wal-root"));
        assert!(
            parse(["federate", "t.csv", "--wal-root", "w", "--partitions", "0"])
                .unwrap_err()
                .to_string()
                .contains("partitions")
        );
        assert!(
            parse(["federate", "t.csv", "--wal-root", "w", "--protocol", "v3"])
                .unwrap_err()
                .to_string()
                .contains("protocol")
        );
        assert!(
            parse(["federate", "t.csv", "--wal-root", "w", "--kill", "7:10"])
                .unwrap_err()
                .to_string()
                .contains("out of range")
        );
        assert!(
            parse(["federate", "t.csv", "--wal-root", "w", "--kill", "bogus"])
                .unwrap_err()
                .to_string()
                .contains("PARTITION:AFTER")
        );
        assert!(parse([
            "federate",
            "t.csv",
            "--wal-root",
            "w",
            "--silence-deadline",
            "0"
        ])
        .unwrap_err()
        .to_string()
        .contains("silence-deadline"));
        assert!(parse([
            "federate",
            "t.csv",
            "--wal-root",
            "w",
            "--fsync",
            "sometimes"
        ])
        .unwrap_err()
        .to_string()
        .contains("fsync"));
    }

    #[test]
    fn fault_specs_parse() {
        assert!(parse_fault("7:calib=1.15,1.15").is_ok());
        assert!(parse_fault("3:add=-9,-4.5").is_ok());
        assert!(parse_fault("5:noise=10,10").is_ok());
        assert!(parse_fault("2:outage=0.5").is_ok());
        assert!(parse_fault("bogus").is_err());
        assert!(parse_fault("1:bogus=1").is_err());
        assert!(parse_fault("1:stuck=abc").is_err());
    }

    #[test]
    fn attack_specs_parse() {
        assert!(parse_attack("3:create=25,69").is_ok());
        assert!(parse_attack("3:change=-15,0").is_ok());
        assert!(parse_attack("0:delete=1,1").is_err());
        assert!(parse_attack("3:bogus=1,1").is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        let e = parse(["analyze"]).unwrap_err();
        assert!(e.to_string().contains("input path"));
        let e = parse(["simulate", "x", "--days", "0"]).unwrap_err();
        assert!(e.to_string().contains("positive"));
        let e = parse(["frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
        let e = parse(["analyze", "x", "--trim", "0.9"]).unwrap_err();
        assert!(e.to_string().contains("trim"));
    }
}
