//! Whole-process crash-recovery tests: run the real `sentinet serve`
//! daemon, kill it without ceremony mid-stream — both via the WAL's
//! chaos abort hook (`--crash-after`) and via a raw SIGKILL — restart
//! it on the same WAL directory, re-deliver the stream through the
//! retrying uplink, and require the final report byte-identical to an
//! uninterrupted run. `replay-wal` over the survivor's log (with a
//! sharded-engine cross-check) must print the same report again.

use sentinet_gateway::{SensorUplink, UplinkConfig};
use sentinet_sim::SensorId;
use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStdout, Command, Stdio};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sentinet-gateway-crash-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic test stream: two sensors, 120 sampling ticks.
fn stream() -> Vec<(SensorId, u64, u64, Vec<f64>)> {
    let mut out = Vec::new();
    for i in 0..120u64 {
        let t = 300 * (i + 1);
        for s in 0..2u16 {
            let v = 20.0 + (i % 7) as f64 + f64::from(s);
            out.push((SensorId(s), i, t, vec![v, v + 30.0]));
        }
    }
    out
}

/// Spawns `sentinet serve` and reads the `listening on ADDR` line.
fn spawn_serve(
    wal_dir: &std::path::Path,
    extra: &[&str],
) -> (Child, BufReader<ChildStdout>, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .args([
            "serve",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
            "--watermark",
            "600",
            "--checkpoint-every",
            "64",
            "--fsync",
            "never",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listening line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
        .trim()
        .to_string();
    (child, stdout, addr)
}

/// A snappy uplink: a dead server should fail fast, not after the
/// production backoff schedule.
fn uplink(addr: String) -> SensorUplink {
    let mut config = UplinkConfig::new(addr);
    config.ack_timeout = std::time::Duration::from_millis(300);
    config.max_attempts = 5;
    config.backoff_base = std::time::Duration::from_millis(10);
    SensorUplink::new(config)
}

/// Sends the whole stream (stopping at the first exhausted retry) and
/// returns how many records were durably acked.
fn send_all(uplink: &mut SensorUplink, records: &[(SensorId, u64, u64, Vec<f64>)]) -> usize {
    for (i, (s, seq, t, v)) in records.iter().enumerate() {
        if uplink.send_at(*s, *seq, *t, v).is_err() {
            return i;
        }
    }
    records.len()
}

/// Runs serve over the full stream uninterrupted and returns its
/// post-`listening` stdout (the report).
fn uninterrupted_run(name: &str) -> String {
    let dir = tmpdir(name);
    let (mut child, mut stdout, addr) = spawn_serve(&dir, &[]);
    let mut up = uplink(addr);
    assert_eq!(send_all(&mut up, &stream()), stream().len());
    up.finish().expect("fin/finack");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("read report");
    let status = child.wait().expect("wait serve");
    assert!(status.success(), "clean serve run must exit 0: {status:?}");
    std::fs::remove_dir_all(&dir).ok();
    rest
}

/// Restarts serve over a crashed WAL dir, re-delivers the full stream
/// from sequence zero (dedup absorbs everything already durable), and
/// returns the report stdout.
fn resume_run(dir: &std::path::Path) -> String {
    let (mut child, mut stdout, addr) = spawn_serve(dir, &[]);
    let mut up = uplink(addr);
    assert_eq!(send_all(&mut up, &stream()), stream().len());
    up.finish().expect("fin/finack");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("read report");
    let status = child.wait().expect("wait serve");
    assert!(status.success(), "resumed serve must exit 0: {status:?}");
    rest
}

fn replay_wal(dir: &std::path::Path, shards: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .args([
            "replay-wal",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--watermark",
            "600",
            "--shards",
            shards,
        ])
        .output()
        .expect("spawn replay-wal");
    assert!(
        out.status.success(),
        "replay-wal failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 report")
}

#[test]
fn crash_after_abort_resumes_bit_identically() {
    let baseline = uninterrupted_run("abort-base");
    assert!(baseline.contains("recovery plan"), "{baseline}");

    // The daemon aborts itself (as if kill -9) during the 150th WAL
    // append — mid-stream, between checkpoints.
    let dir = tmpdir("abort-crash");
    let (mut child, _stdout, addr) = spawn_serve(&dir, &["--crash-after", "150"]);
    let mut up = uplink(addr);
    let sent = send_all(&mut up, &stream());
    assert!(sent < stream().len(), "daemon should have died mid-stream");
    let status = child.wait().expect("wait crashed serve");
    assert!(!status.success(), "abort must not look like a clean exit");

    let resumed = resume_run(&dir);
    assert_eq!(
        resumed, baseline,
        "resumed report differs from uninterrupted run"
    );

    // The WAL alone reproduces the same report, and the sharded engine
    // agrees with it bit for bit.
    let replayed = replay_wal(&dir, "2");
    assert_eq!(replayed, baseline, "replay-wal report differs");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_mid_stream_resumes_bit_identically() {
    let baseline = uninterrupted_run("kill-base");

    let dir = tmpdir("kill-crash");
    let (mut child, _stdout, addr) = spawn_serve(&dir, &[]);
    let mut up = uplink(addr);
    // 130 acked records are durable; then the process is SIGKILLed.
    let prefix = &stream()[..130];
    assert_eq!(send_all(&mut up, prefix), prefix.len());
    child.kill().expect("SIGKILL serve");
    let status = child.wait().expect("wait killed serve");
    assert!(!status.success());

    let resumed = resume_run(&dir);
    assert_eq!(
        resumed, baseline,
        "resumed report differs from uninterrupted run"
    );
    let replayed = replay_wal(&dir, "1");
    assert_eq!(replayed, baseline, "replay-wal report differs");
    std::fs::remove_dir_all(&dir).ok();
}
