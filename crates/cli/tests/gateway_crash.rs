//! Whole-process crash-recovery tests: run the real `sentinet serve`
//! daemon, kill it without ceremony mid-stream — both via the WAL's
//! chaos abort hook (`--crash-after`) and via a raw SIGKILL — restart
//! it on the same WAL directory, re-deliver the stream through the
//! retrying uplink, and require the final report byte-identical to an
//! uninterrupted run. `replay-wal` over the survivor's log (with a
//! sharded-engine cross-check) must print the same report again.
//!
//! Two environment knobs let CI sweep the same assertions across the
//! durability and protocol matrix without touching their strength:
//! `SENTINET_TEST_FSYNC` overrides the daemon's `--fsync` policy
//! (default `never`), and `SENTINET_TEST_PROTOCOL=v2` drives the
//! stream through the pipelined `DataBatch` uplink instead of
//! stop-and-wait.

use sentinet_gateway::{PipelinedConfig, PipelinedUplink, SensorUplink, UplinkConfig, UplinkError};
use sentinet_sim::SensorId;
use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStdout, Command, Stdio};

/// Batch size for the `v2` sweep — small enough that `--crash-after`
/// and the SIGKILL both land mid-stream with batches in flight.
const PIPE_BATCH: usize = 8;

fn fsync_policy() -> String {
    std::env::var("SENTINET_TEST_FSYNC").unwrap_or_else(|_| "never".into())
}

fn pipelined() -> bool {
    std::env::var("SENTINET_TEST_PROTOCOL").as_deref() == Ok("v2")
}

/// The reorder window is co-tuned with the protocol (DESIGN.md §14.4):
/// pipelined batches arrive in per-sensor bursts spanning
/// `batch × period` stream-seconds, so the watermark delay must cover
/// at least two spans or cross-sensor same-era readings drop as late.
fn watermark() -> String {
    if pipelined() {
        (2 * PIPE_BATCH as u64 * 300).to_string()
    } else {
        "600".into()
    }
}

/// Either wire protocol behind the one interface the tests use; the
/// assertions are identical for both.
enum TestUplink {
    V1(SensorUplink),
    V2(PipelinedUplink),
}

impl TestUplink {
    fn send_at(
        &mut self,
        sensor: SensorId,
        seq: u64,
        time: u64,
        values: &[f64],
    ) -> Result<(), UplinkError> {
        match self {
            TestUplink::V1(up) => up.send_at(sensor, seq, time, values).map(|_| ()),
            TestUplink::V2(up) => {
                // The pipelined client numbers the stream itself; the
                // test stream is gapless per sensor, so they agree.
                let got = up.send(sensor, time, values)?;
                assert_eq!(got, seq, "pipelined uplink seq drifted from the stream");
                Ok(())
            }
        }
    }

    fn finish(self) -> Result<(), UplinkError> {
        match self {
            TestUplink::V1(up) => up.finish(),
            TestUplink::V2(up) => up.finish().map(|_| ()),
        }
    }
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sentinet-gateway-crash-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic test stream: two sensors, 120 sampling ticks.
fn stream() -> Vec<(SensorId, u64, u64, Vec<f64>)> {
    let mut out = Vec::new();
    for i in 0..120u64 {
        let t = 300 * (i + 1);
        for s in 0..2u16 {
            let v = 20.0 + (i % 7) as f64 + f64::from(s);
            out.push((SensorId(s), i, t, vec![v, v + 30.0]));
        }
    }
    out
}

/// Spawns `sentinet serve` and reads the `listening on ADDR` line.
fn spawn_serve(
    wal_dir: &std::path::Path,
    extra: &[&str],
) -> (Child, BufReader<ChildStdout>, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .args([
            "serve",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
            "--watermark",
            &watermark(),
            "--checkpoint-every",
            "64",
            "--fsync",
            &fsync_policy(),
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listening line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
        .trim()
        .to_string();
    (child, stdout, addr)
}

/// A snappy uplink: a dead server should fail fast, not after the
/// production backoff schedule.
fn uplink(addr: String) -> TestUplink {
    let mut config = UplinkConfig::new(addr);
    config.ack_timeout = std::time::Duration::from_millis(300);
    config.max_attempts = 5;
    config.backoff_base = std::time::Duration::from_millis(10);
    if pipelined() {
        let mut pipe = PipelinedConfig::new("");
        pipe.transport = config;
        pipe.batch_size = PIPE_BATCH;
        pipe.max_inflight = 4;
        TestUplink::V2(PipelinedUplink::new(pipe))
    } else {
        TestUplink::V1(SensorUplink::new(config))
    }
}

/// Sends the whole stream (stopping at the first exhausted retry) and
/// returns how many records the uplink accepted (durably acked under
/// stop-and-wait; accepted-or-in-flight under the pipelined client).
fn send_all(uplink: &mut TestUplink, records: &[(SensorId, u64, u64, Vec<f64>)]) -> usize {
    for (i, (s, seq, t, v)) in records.iter().enumerate() {
        if uplink.send_at(*s, *seq, *t, v).is_err() {
            return i;
        }
    }
    records.len()
}

/// Runs serve over the full stream uninterrupted and returns its
/// post-`listening` stdout (the report).
fn uninterrupted_run(name: &str) -> String {
    let dir = tmpdir(name);
    let (mut child, mut stdout, addr) = spawn_serve(&dir, &[]);
    let mut up = uplink(addr);
    assert_eq!(send_all(&mut up, &stream()), stream().len());
    up.finish().expect("fin/finack");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("read report");
    let status = child.wait().expect("wait serve");
    assert!(status.success(), "clean serve run must exit 0: {status:?}");
    std::fs::remove_dir_all(&dir).ok();
    rest
}

/// Restarts serve over a crashed WAL dir, re-delivers the full stream
/// from sequence zero (dedup absorbs everything already durable), and
/// returns the report stdout.
fn resume_run(dir: &std::path::Path) -> String {
    let (mut child, mut stdout, addr) = spawn_serve(dir, &[]);
    let mut up = uplink(addr);
    assert_eq!(send_all(&mut up, &stream()), stream().len());
    up.finish().expect("fin/finack");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("read report");
    let status = child.wait().expect("wait serve");
    assert!(status.success(), "resumed serve must exit 0: {status:?}");
    rest
}

fn replay_wal(dir: &std::path::Path, shards: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .args([
            "replay-wal",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--watermark",
            &watermark(),
            "--shards",
            shards,
        ])
        .output()
        .expect("spawn replay-wal");
    assert!(
        out.status.success(),
        "replay-wal failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 report")
}

#[test]
fn crash_after_abort_resumes_bit_identically() {
    let baseline = uninterrupted_run("abort-base");
    assert!(baseline.contains("recovery plan"), "{baseline}");

    // The daemon aborts itself (as if kill -9) during the 150th WAL
    // append — mid-stream, between checkpoints.
    let dir = tmpdir("abort-crash");
    let (mut child, _stdout, addr) = spawn_serve(&dir, &["--crash-after", "150"]);
    let mut up = uplink(addr);
    let sent = send_all(&mut up, &stream());
    assert!(sent < stream().len(), "daemon should have died mid-stream");
    let status = child.wait().expect("wait crashed serve");
    assert!(!status.success(), "abort must not look like a clean exit");

    let resumed = resume_run(&dir);
    assert_eq!(
        resumed, baseline,
        "resumed report differs from uninterrupted run"
    );

    // The WAL alone reproduces the same report, and the sharded engine
    // agrees with it bit for bit.
    let replayed = replay_wal(&dir, "2");
    assert_eq!(replayed, baseline, "replay-wal report differs");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_mid_stream_resumes_bit_identically() {
    let baseline = uninterrupted_run("kill-base");

    let dir = tmpdir("kill-crash");
    let (mut child, _stdout, addr) = spawn_serve(&dir, &[]);
    let mut up = uplink(addr);
    // 130 records go out (durably acked under stop-and-wait; some
    // possibly still buffered under v2); then the process is SIGKILLed.
    let prefix = &stream()[..130];
    assert_eq!(send_all(&mut up, prefix), prefix.len());
    child.kill().expect("SIGKILL serve");
    let status = child.wait().expect("wait killed serve");
    assert!(!status.success());

    let resumed = resume_run(&dir);
    assert_eq!(
        resumed, baseline,
        "resumed report differs from uninterrupted run"
    );
    let replayed = replay_wal(&dir, "1");
    assert_eq!(replayed, baseline, "replay-wal report differs");
    std::fs::remove_dir_all(&dir).ok();
}
