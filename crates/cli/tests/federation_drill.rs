//! Whole-process federation drills: `sentinet federate` spawns real
//! `sentinet serve` children, the `--kill` drill SIGKILLs one of them
//! mid-stream, and the controller must detect the death on the stream
//! clock, fail the partition over to a standby (checkpoint snapshot +
//! WAL-tail replay + routed-log redelivery), and print a fleet
//! diagnosis byte-identical to an uninterrupted baseline. With no
//! standby the partition must orphan fail-stop: visible, NACK-counted,
//! exit status 3.
//!
//! The same CI knobs as the gateway crash tests sweep the matrix:
//! `SENTINET_TEST_FSYNC` picks the children's fsync policy and
//! `SENTINET_TEST_PROTOCOL=v2` drives the pipelined uplink.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fsync_policy() -> String {
    std::env::var("SENTINET_TEST_FSYNC").unwrap_or_else(|_| "never".into())
}

fn pipelined() -> bool {
    std::env::var("SENTINET_TEST_PROTOCOL").as_deref() == Ok("v2")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sentinet-federation-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sentinet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .args(args)
        .output()
        .expect("run sentinet")
}

/// Simulates the shared drill trace: 6 sensors, 2 clean days.
fn simulate_trace(dir: &Path) -> String {
    std::fs::create_dir_all(dir).expect("trace dir");
    let trace = dir
        .join("trace.csv")
        .to_str()
        .expect("utf8 path")
        .to_string();
    let out = sentinet(&[
        "simulate",
        &trace,
        "--days",
        "2",
        "--sensors",
        "6",
        "--seed",
        "3",
    ]);
    assert!(out.status.success(), "simulate failed: {out:?}");
    trace
}

/// Runs `federate` over three partitions with the drill-tuned uplink
/// (fast timeouts, deterministic backoff).
fn federate(trace: &str, wal_root: &Path, extra: &[&str]) -> Output {
    let wal_root = wal_root.to_str().expect("utf8 path");
    // The v2 reorder watermark is co-tuned with the batch span, same
    // as the gateway crash tests (DESIGN.md §14.4).
    let watermark = if pipelined() { "4800" } else { "1800" };
    let mut args = vec![
        "federate",
        trace,
        "--wal-root",
        wal_root,
        "--partitions",
        "3",
        "--checkpoint-every",
        "16",
        "--watermark",
        watermark,
        "--ack-timeout-ms",
        "150",
        "--max-attempts",
        "3",
        "--backoff-base-ms",
        "5",
        "--backoff-cap-ms",
        "20",
        "--jitter-pct",
        "0",
    ];
    let fsync = fsync_policy();
    args.extend(["--fsync", &fsync]);
    if pipelined() {
        args.extend(["--protocol", "v2"]);
    }
    args.extend(extra);
    sentinet(&args)
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf8 stderr")
}

#[test]
fn sigkill_failover_reproduces_the_baseline_byte_for_byte() {
    let root = tmpdir("kill");
    let trace = simulate_trace(&root);

    let base = federate(&trace, &root.join("base"), &[]);
    assert!(
        base.status.success(),
        "baseline run failed: {}",
        stderr_of(&base)
    );

    // Partition 1 owns sensors 2..4; its child is SIGKILLed after 50
    // readings (~tick 25 of 576) — squarely mid-stream.
    let drill = federate(&trace, &root.join("drill"), &["--kill", "1:50"]);
    assert!(
        drill.status.success(),
        "drill run failed: {}",
        stderr_of(&drill)
    );
    assert_eq!(
        stdout_of(&base),
        stdout_of(&drill),
        "kill + failover must reproduce the uninterrupted fleet diagnosis byte for byte\n\
         --- drill stderr ---\n{}",
        stderr_of(&drill)
    );

    let events = stderr_of(&drill);
    assert!(
        events.contains("partition 1 suspect at"),
        "missing suspect event:\n{events}"
    );
    assert!(
        events.contains("partition 1 failed over to epoch 2"),
        "missing failover event:\n{events}"
    );

    // Detection honours the silence deadline on the stream clock:
    // death is declared only after the deadline elapsed, and not
    // unboundedly later. The ack watermark lags the kill by at most
    // one flush span (v2: flush_every 32 readings over 2 sensors at
    // 300 s period = 4800 stream-seconds; v1 acks every reading), so
    // that span plus one sampling tick bounds the declaration.
    let dead = events
        .lines()
        .find(|l| l.contains("partition 1 dead at"))
        .unwrap_or_else(|| panic!("missing dead event:\n{events}"));
    let num_after = |text: &str, key: &str| -> u64 {
        let rest = &text[text.find(key).expect(key) + key.len()..];
        rest.chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("number")
    };
    let at = num_after(dead, "dead at t=");
    let last = num_after(dead, "last acked t=");
    let deadline = num_after(dead, "silence deadline ");
    assert!(
        at - last > deadline,
        "death declared before the deadline elapsed: {dead}"
    );
    let ack_lag = if pipelined() { 4800 } else { 0 };
    assert!(
        at - last <= deadline + ack_lag + 300,
        "death declared late: {dead}"
    );
}

#[test]
fn comma_separated_kill_list_fails_over_every_listed_partition() {
    let root = tmpdir("kill-list");
    let trace = simulate_trace(&root);

    let base = federate(&trace, &root.join("base"), &["--standbys", "2"]);
    assert!(
        base.status.success(),
        "baseline run failed: {}",
        stderr_of(&base)
    );

    // Two drills in one run: partitions 0 and 2 lose their owners at
    // different stream coordinates, and both must fail over.
    let drill = federate(
        &trace,
        &root.join("drill"),
        &["--standbys", "2", "--kill", "0:40,2:90"],
    );
    assert!(
        drill.status.success(),
        "drill run failed: {}",
        stderr_of(&drill)
    );
    assert_eq!(
        stdout_of(&base),
        stdout_of(&drill),
        "a double kill + failover must reproduce the uninterrupted fleet \
         diagnosis byte for byte\n--- drill stderr ---\n{}",
        stderr_of(&drill)
    );

    let events = stderr_of(&drill);
    for p in [0, 2] {
        assert!(
            events.contains(&format!("partition {p} failed over to epoch 2")),
            "missing failover for partition {p}:\n{events}"
        );
    }
    assert!(
        !events.contains("partition 1 suspect"),
        "the unlisted partition must stay healthy:\n{events}"
    );
}

#[test]
fn no_standby_orphan_is_fail_stop_and_visible() {
    let root = tmpdir("orphan");
    let trace = simulate_trace(&root);

    let out = federate(
        &trace,
        &root.join("fleet"),
        &[
            "--standbys",
            "0",
            "--kill",
            "1:50",
            "--handoff-attempts",
            "2",
        ],
    );
    assert_eq!(
        out.status.code(),
        Some(3),
        "an orphaned fleet must exit 3\nstdout:\n{}\nstderr:\n{}",
        stdout_of(&out),
        stderr_of(&out)
    );

    let stdout = stdout_of(&out);
    assert!(
        stdout.contains("partition 1 [sensors 2..4]: orphaned"),
        "the orphan must be visible in the fleet diagnosis:\n{stdout}"
    );
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains("partition 1 orphaned at"),
        "missing orphaned event:\n{stderr}"
    );
    let nacks = stderr
        .lines()
        .find(|l| l.starts_with("partition 1:"))
        .unwrap_or_else(|| panic!("missing partition 1 accounting:\n{stderr}"));
    assert!(
        !nacks.contains(" 0 orphan-nack(s)"),
        "unacked readings must be NACK-counted, not dropped: {nacks}"
    );

    // The surviving partitions still produce their full diagnosis.
    assert!(
        stdout.contains("partition 0 [sensors 0..2]: ok"),
        "{stdout}"
    );
    assert!(
        stdout.contains("partition 2 [sensors 4..6]: ok"),
        "{stdout}"
    );
}
