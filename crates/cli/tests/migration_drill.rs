//! Whole-process live-migration drills: `sentinet federate --split`
//! splits a hot partition while real `sentinet serve` children ingest
//! the stream over the pipelined v2 uplink, and a `--kill` coordinate
//! equal to the split trigger SIGKILLs the source exactly when the
//! handoff's cut probe runs. The controller must fail the source over
//! and retry the cut at the identical WAL coordinate, producing a
//! fleet diagnosis byte-identical to the uninterrupted run of the
//! same migration schedule. The mirror drill kills the rebalance
//! destination at the adopt step.
//!
//! `SENTINET_TEST_FSYNC` sweeps the children's fsync policy as in the
//! other federation drills; the protocol is pinned to v2 here because
//! the drill's point is a handoff racing live pipelined ingest.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fsync_policy() -> String {
    std::env::var("SENTINET_TEST_FSYNC").unwrap_or_else(|_| "never".into())
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sentinet-migration-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sentinet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .args(args)
        .output()
        .expect("run sentinet")
}

/// Simulates the shared drill trace: 6 sensors, 2 clean days.
fn simulate_trace(dir: &Path) -> String {
    std::fs::create_dir_all(dir).expect("trace dir");
    let trace = dir
        .join("trace.csv")
        .to_str()
        .expect("utf8 path")
        .to_string();
    let out = sentinet(&[
        "simulate",
        &trace,
        "--days",
        "2",
        "--sensors",
        "6",
        "--seed",
        "3",
    ]);
    assert!(out.status.success(), "simulate failed: {out:?}");
    trace
}

/// Runs `federate` over three v2 partitions with the drill-tuned
/// uplink (fast timeouts, deterministic backoff, v2 watermark).
fn federate(trace: &str, wal_root: &Path, extra: &[&str]) -> Output {
    let wal_root = wal_root.to_str().expect("utf8 path");
    let mut args = vec![
        "federate",
        trace,
        "--wal-root",
        wal_root,
        "--partitions",
        "3",
        "--protocol",
        "v2",
        "--checkpoint-every",
        "16",
        "--watermark",
        "4800",
        "--ack-timeout-ms",
        "150",
        "--max-attempts",
        "3",
        "--backoff-base-ms",
        "5",
        "--backoff-cap-ms",
        "20",
        "--jitter-pct",
        "0",
    ];
    let fsync = fsync_policy();
    args.extend(["--fsync", &fsync]);
    args.extend(extra);
    sentinet(&args)
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf8 stderr")
}

fn completed_cursor(events: &str) -> u64 {
    let line = events
        .lines()
        .find(|l| l.contains("completed at t=") && l.contains("cut cursor "))
        .unwrap_or_else(|| panic!("missing migration-completed event:\n{events}"));
    let rest = &line[line.find("cut cursor ").expect("cursor") + "cut cursor ".len()..];
    rest.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("cursor number")
}

#[test]
fn sigkill_at_the_cut_of_a_live_v2_split_matches_the_baseline() {
    let root = tmpdir("split-kill");
    let trace = simulate_trace(&root);

    // Partition 1 owns sensors 2..4; once it has routed 100 readings
    // (~tick 50 of 576) it splits at sensor 3, the upper half moving
    // to a freshly spawned partition 3 — squarely mid-stream.
    let schedule = ["--split", "1:3@100"];
    let base = federate(&trace, &root.join("base"), &schedule);
    assert!(
        base.status.success(),
        "baseline migration run failed: {}",
        stderr_of(&base)
    );
    let base_events = stderr_of(&base);
    assert!(
        base_events.contains("migration of sensors 3..4 from partition 1 to 3 completed"),
        "baseline migration never completed:\n{base_events}"
    );

    // The kill coordinate equals the split trigger: partition 1 has
    // handed exactly 100 readings when the handoff starts, so the
    // SIGKILL fires inside the cut probe — the child dies mid-handoff
    // and the controller must fail over, then retry the cut.
    let drill = federate(
        &trace,
        &root.join("drill"),
        &["--split", "1:3@100", "--kill", "1:100"],
    );
    assert!(
        drill.status.success(),
        "drill run failed: {}",
        stderr_of(&drill)
    );
    assert_eq!(
        stdout_of(&base),
        stdout_of(&drill),
        "SIGKILL at the cut + failover must reproduce the uninterrupted \
         migration diagnosis byte for byte\n--- drill stderr ---\n{}",
        stderr_of(&drill)
    );

    let events = stderr_of(&drill);
    assert!(
        events.contains("partition 1 failed over to epoch 2"),
        "the source never failed over mid-handoff:\n{events}"
    );
    assert!(
        events.contains("migration of sensors 3..4 from partition 1 to 3 completed"),
        "the drilled migration never completed:\n{events}"
    );
    // The retried cut lands at the identical WAL coordinate.
    assert_eq!(
        completed_cursor(&events),
        completed_cursor(&base_events),
        "the retried cut moved the cut coordinate:\n{events}"
    );
}

#[test]
fn sigkill_at_the_adopt_of_a_live_rebalance_matches_the_baseline() {
    let root = tmpdir("rebalance-kill");
    let trace = simulate_trace(&root);

    // Partition 1's whole range rebalances into left-adjacent
    // partition 0 once it has routed 100 readings.
    let schedule = ["--rebalance", "1@100"];
    let base = federate(&trace, &root.join("base"), &schedule);
    assert!(
        base.status.success(),
        "baseline rebalance run failed: {}",
        stderr_of(&base)
    );
    let base_events = stderr_of(&base);
    assert!(
        base_events.contains("migration of sensors 2..4 from partition 1 to 0 completed"),
        "baseline rebalance never completed:\n{base_events}"
    );

    // Partition 0 is the destination; its kill coordinate sits at its
    // approximate handed count at trigger time, so the SIGKILL lands
    // on or right around the adopt probe (the trace's natural packet
    // loss keeps the two partitions' counts from aligning exactly) —
    // either way the destination dies inside the drill window and the
    // baseline contract must hold.
    let drill = federate(
        &trace,
        &root.join("drill"),
        &["--rebalance", "1@100", "--kill", "0:100"],
    );
    assert!(
        drill.status.success(),
        "drill run failed: {}",
        stderr_of(&drill)
    );
    assert_eq!(
        stdout_of(&base),
        stdout_of(&drill),
        "SIGKILL at the adopt + failover must reproduce the uninterrupted \
         rebalance diagnosis byte for byte\n--- drill stderr ---\n{}",
        stderr_of(&drill)
    );

    let events = stderr_of(&drill);
    assert!(
        events.contains("partition 0 failed over to epoch 2"),
        "the destination never failed over mid-adopt:\n{events}"
    );
    assert!(
        events.contains("migration of sensors 2..4 from partition 1 to 0 completed"),
        "the drilled rebalance never completed:\n{events}"
    );
}
