//! End-to-end tests of the `sentinet` binary: spawn the real
//! executable, round-trip a trace through simulate → analyze, and check
//! the report and exit codes a scripting user depends on.

use std::process::Command;

fn sentinet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sentinet"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sentinet-cli-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = sentinet().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("simulate"));
    assert!(text.contains("analyze"));
}

#[test]
fn unknown_command_exits_2_with_usage() {
    let out = sentinet().arg("frobnicate").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));
}

#[test]
fn clean_roundtrip_reports_error_free() {
    let path = tmp("clean.csv");
    let out = sentinet()
        .args([
            "simulate",
            path.to_str().unwrap(),
            "--days",
            "2",
            "--seed",
            "5",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = sentinet()
        .args(["analyze", path.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "clean trace must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("network attack signature: none"));
    assert!(text.contains("recovery plan"));
}

#[test]
fn stuck_fault_is_flagged_with_exit_code_3() {
    let path = tmp("stuck.csv");
    let out = sentinet()
        .args([
            "simulate",
            path.to_str().unwrap(),
            "--days",
            "7",
            "--seed",
            "6",
            "--fault",
            "6:stuck=15,1",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = sentinet()
        .args(["analyze", path.to_str().unwrap(), "--quiet"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3), "flagged trace must exit 3");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sensor6"));
    assert!(text.contains("stuck-at"), "{text}");
}

#[test]
fn deletion_attack_is_flagged() {
    let path = tmp("attack.csv");
    let out = sentinet()
        .args([
            "simulate",
            path.to_str().unwrap(),
            "--days",
            "8",
            "--seed",
            "7",
            "--attack",
            "3:delete=12,94",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = sentinet()
        .args(["analyze", path.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("deletion") || text.contains("attack"),
        "{text}"
    );
    assert!(text.contains("Quarantine"), "{text}");
}

#[test]
fn analyze_missing_file_fails_cleanly() {
    let out = sentinet()
        .args(["analyze", "/nonexistent/definitely-missing.csv"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn simulate_rejects_out_of_range_fault_sensor() {
    let path = tmp("bad.csv");
    let out = sentinet()
        .args([
            "simulate",
            path.to_str().unwrap(),
            "--sensors",
            "4",
            "--fault",
            "9:stuck=1,1",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}
