//! Whole-process retention tests: run the real `sentinet serve` daemon
//! under a `--wal-retain-bytes` budget with small segments, kill it
//! mid-stream, and require that (a) the on-disk WAL never outgrew the
//! budget, (b) a restart restores from the checkpoint and finishes
//! with a report byte-identical to an unretained baseline, and (c)
//! `replay-wal` over the reclaimed log reproduces the report again —
//! while the `--shards` cross-check refuses cleanly, because the
//! released stream no longer covers the reclaimed prefix.

use sentinet_gateway::{SensorUplink, UplinkConfig};
use sentinet_sim::SensorId;
use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStdout, Command, Stdio};

/// One data frame of this stream is 45 bytes on the wire-log:
/// 21 header + 2×8 values + 8 trailer.
const FRAME: u64 = 45;
/// 16 records per sealed segment.
const SEGMENT: u64 = 16 * FRAME;
/// Four segments of headroom.
const BUDGET: u64 = 4 * SEGMENT;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sentinet-gateway-retention-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic test stream: two sensors, 120 sampling ticks.
fn stream() -> Vec<(SensorId, u64, u64, Vec<f64>)> {
    let mut out = Vec::new();
    for i in 0..120u64 {
        let t = 300 * (i + 1);
        for s in 0..2u16 {
            let v = 20.0 + (i % 7) as f64 + f64::from(s);
            out.push((SensorId(s), i, t, vec![v, v + 30.0]));
        }
    }
    out
}

/// Spawns `sentinet serve` and reads the `listening on ADDR` line.
fn spawn_serve(
    wal_dir: &std::path::Path,
    extra: &[&str],
) -> (Child, BufReader<ChildStdout>, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .args([
            "serve",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
            "--watermark",
            "600",
            "--checkpoint-every",
            "32",
            "--fsync",
            "never",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listening line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
        .trim()
        .to_string();
    (child, stdout, addr)
}

fn uplink(addr: String) -> SensorUplink {
    let mut config = UplinkConfig::new(addr);
    config.ack_timeout = std::time::Duration::from_millis(300);
    config.max_attempts = 5;
    config.backoff_base = std::time::Duration::from_millis(10);
    SensorUplink::new(config)
}

fn send_all(uplink: &mut SensorUplink, records: &[(SensorId, u64, u64, Vec<f64>)]) -> usize {
    for (i, (s, seq, t, v)) in records.iter().enumerate() {
        if uplink.send_at(*s, *seq, *t, v).is_err() {
            return i;
        }
    }
    records.len()
}

/// Total bytes of `wal-*.seg` files in the directory.
fn wal_footprint(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("read wal dir")
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy().into_owned();
            name.starts_with("wal-") && name.ends_with(".seg")
        })
        .map(|e| e.metadata().expect("segment metadata").len())
        .sum()
}

/// The retention flags shared by every retained invocation.
fn retention_flags() -> [String; 4] {
    [
        "--wal-retain-bytes".into(),
        BUDGET.to_string(),
        "--wal-segment-bytes".into(),
        SEGMENT.to_string(),
    ]
}

#[test]
fn retention_budget_holds_and_restart_matches_unretained_baseline() {
    // Baseline: the same stream with retention off.
    let base_dir = tmpdir("base");
    let (mut child, mut stdout, addr) = spawn_serve(&base_dir, &[]);
    let mut up = uplink(addr);
    assert_eq!(send_all(&mut up, &stream()), stream().len());
    up.finish().expect("fin/finack");
    let mut baseline = String::new();
    stdout.read_to_string(&mut baseline).expect("read report");
    assert!(child.wait().expect("wait serve").success());
    assert!(baseline.contains("recovery plan"), "{baseline}");
    std::fs::remove_dir_all(&base_dir).ok();

    // Retained run: deliver 200 of 240 records under the budget, then
    // SIGKILL the daemon mid-stream.
    let dir = tmpdir("budget");
    let flags = retention_flags();
    let flag_refs: Vec<&str> = flags.iter().map(String::as_str).collect();
    let (mut child, _stdout, addr) = spawn_serve(&dir, &flag_refs);
    let mut up = uplink(addr);
    let prefix = &stream()[..200];
    assert_eq!(send_all(&mut up, prefix), prefix.len());
    child.kill().expect("SIGKILL serve");
    assert!(!child.wait().expect("wait killed serve").success());

    // 200 × 45 B = 9000 B were appended, but the budget held: retention
    // reclaimed checkpointed segments as it went.
    let footprint = wal_footprint(&dir);
    assert!(
        footprint <= BUDGET,
        "wal footprint {footprint} exceeds the {BUDGET}-byte budget"
    );
    assert!(
        dir.join("checkpoint.ck").exists(),
        "retention must have committed a checkpoint"
    );

    // Restart on the reclaimed log and re-deliver the full stream from
    // sequence zero: the restored dedup state absorbs the overlap and
    // the final report must match the unretained baseline.
    let (mut child, mut stdout, addr) = spawn_serve(&dir, &flag_refs);
    let mut up = uplink(addr);
    assert_eq!(send_all(&mut up, &stream()), stream().len());
    up.finish().expect("fin/finack");
    let mut resumed = String::new();
    stdout.read_to_string(&mut resumed).expect("read report");
    assert!(child.wait().expect("wait resumed serve").success());
    assert_eq!(
        resumed, baseline,
        "resumed retained report differs from the unretained baseline"
    );

    // The reclaimed log alone still reproduces the report (checkpoint
    // restore plus tail replay).
    let out = Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .args([
            "replay-wal",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--watermark",
            "600",
            "--shards",
            "1",
        ])
        .output()
        .expect("spawn replay-wal");
    assert!(
        out.status.success(),
        "replay-wal failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8(out.stdout).expect("utf8 report"),
        baseline,
        "replay-wal report differs from the unretained baseline"
    );

    // The sharded cross-check needs the full released stream, which a
    // reclaimed log no longer carries: it must refuse loudly instead
    // of reporting a bogus divergence.
    let out = Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .args([
            "replay-wal",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--watermark",
            "600",
            "--shards",
            "2",
        ])
        .output()
        .expect("spawn replay-wal --shards 2");
    assert!(
        !out.status.success(),
        "sharded cross-check over a reclaimed log must fail cleanly"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("retention budget"),
        "refusal must explain itself: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
