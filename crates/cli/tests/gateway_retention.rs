//! Whole-process retention tests: run the real `sentinet serve` daemon
//! under a `--wal-retain-bytes` budget with small segments, kill it
//! mid-stream, and require that (a) the on-disk WAL never outgrew the
//! budget, (b) a restart restores from the checkpoint and finishes
//! with a report byte-identical to an unretained baseline, and (c)
//! `replay-wal` over the reclaimed log reproduces the report again —
//! while the `--shards` cross-check refuses cleanly, because the
//! released stream no longer covers the reclaimed prefix.
//!
//! Like `gateway_crash.rs`, the file is environment-parameterized so
//! CI sweeps the durability/protocol matrix with identical
//! assertions: `SENTINET_TEST_FSYNC` overrides `--fsync` (default
//! `never`) and `SENTINET_TEST_PROTOCOL=v2` uses the pipelined
//! `DataBatch` uplink instead of stop-and-wait.

use sentinet_gateway::{PipelinedConfig, PipelinedUplink, SensorUplink, UplinkConfig, UplinkError};
use sentinet_sim::SensorId;
use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStdout, Command, Stdio};

/// Batch size for the `v2` sweep; a multiple of the segment and
/// checkpoint cadences below, so reclamation trips at the same record
/// boundaries as the per-record protocol.
const PIPE_BATCH: usize = 8;

fn fsync_policy() -> String {
    std::env::var("SENTINET_TEST_FSYNC").unwrap_or_else(|_| "never".into())
}

fn pipelined() -> bool {
    std::env::var("SENTINET_TEST_PROTOCOL").as_deref() == Ok("v2")
}

/// Reorder window co-tuned with the protocol (DESIGN.md §14.4): the
/// watermark delay must cover ≥ 2 batch spans under v2.
fn watermark() -> String {
    if pipelined() {
        (2 * PIPE_BATCH as u64 * 300).to_string()
    } else {
        "600".into()
    }
}

/// Either wire protocol behind the one interface the test uses.
enum TestUplink {
    V1(SensorUplink),
    V2(PipelinedUplink),
}

impl TestUplink {
    fn send_at(
        &mut self,
        sensor: SensorId,
        seq: u64,
        time: u64,
        values: &[f64],
    ) -> Result<(), UplinkError> {
        match self {
            TestUplink::V1(up) => up.send_at(sensor, seq, time, values).map(|_| ()),
            TestUplink::V2(up) => {
                // The pipelined client numbers the stream itself; the
                // test stream is gapless per sensor, so they agree.
                let got = up.send(sensor, time, values)?;
                assert_eq!(got, seq, "pipelined uplink seq drifted from the stream");
                Ok(())
            }
        }
    }

    fn finish(self) -> Result<(), UplinkError> {
        match self {
            TestUplink::V1(up) => up.finish(),
            TestUplink::V2(up) => up.finish().map(|_| ()),
        }
    }
}

/// One data frame of this stream is 45 bytes on the wire-log:
/// 21 header + 2×8 values + 8 trailer.
const FRAME: u64 = 45;
/// 16 records per sealed segment.
const SEGMENT: u64 = 16 * FRAME;
/// Four segments of headroom.
const BUDGET: u64 = 4 * SEGMENT;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sentinet-gateway-retention-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic test stream: two sensors, 120 sampling ticks.
fn stream() -> Vec<(SensorId, u64, u64, Vec<f64>)> {
    let mut out = Vec::new();
    for i in 0..120u64 {
        let t = 300 * (i + 1);
        for s in 0..2u16 {
            let v = 20.0 + (i % 7) as f64 + f64::from(s);
            out.push((SensorId(s), i, t, vec![v, v + 30.0]));
        }
    }
    out
}

/// Spawns `sentinet serve` and reads the `listening on ADDR` line.
fn spawn_serve(
    wal_dir: &std::path::Path,
    extra: &[&str],
) -> (Child, BufReader<ChildStdout>, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .args([
            "serve",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
            "--watermark",
            &watermark(),
            "--checkpoint-every",
            "32",
            "--fsync",
            &fsync_policy(),
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listening line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
        .trim()
        .to_string();
    (child, stdout, addr)
}

fn uplink(addr: String) -> TestUplink {
    let mut config = UplinkConfig::new(addr);
    config.ack_timeout = std::time::Duration::from_millis(300);
    config.max_attempts = 5;
    config.backoff_base = std::time::Duration::from_millis(10);
    if pipelined() {
        let mut pipe = PipelinedConfig::new("");
        pipe.transport = config;
        pipe.batch_size = PIPE_BATCH;
        pipe.max_inflight = 4;
        TestUplink::V2(PipelinedUplink::new(pipe))
    } else {
        TestUplink::V1(SensorUplink::new(config))
    }
}

fn send_all(uplink: &mut TestUplink, records: &[(SensorId, u64, u64, Vec<f64>)]) -> usize {
    for (i, (s, seq, t, v)) in records.iter().enumerate() {
        if uplink.send_at(*s, *seq, *t, v).is_err() {
            return i;
        }
    }
    records.len()
}

/// Total bytes of `wal-*.seg` files in the directory.
fn wal_footprint(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("read wal dir")
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy().into_owned();
            name.starts_with("wal-") && name.ends_with(".seg")
        })
        .map(|e| e.metadata().expect("segment metadata").len())
        .sum()
}

/// The retention flags shared by every retained invocation.
fn retention_flags() -> [String; 4] {
    [
        "--wal-retain-bytes".into(),
        BUDGET.to_string(),
        "--wal-segment-bytes".into(),
        SEGMENT.to_string(),
    ]
}

#[test]
fn retention_budget_holds_and_restart_matches_unretained_baseline() {
    // Baseline: the same stream with retention off.
    let base_dir = tmpdir("base");
    let (mut child, mut stdout, addr) = spawn_serve(&base_dir, &[]);
    let mut up = uplink(addr);
    assert_eq!(send_all(&mut up, &stream()), stream().len());
    up.finish().expect("fin/finack");
    let mut baseline = String::new();
    stdout.read_to_string(&mut baseline).expect("read report");
    assert!(child.wait().expect("wait serve").success());
    assert!(baseline.contains("recovery plan"), "{baseline}");
    std::fs::remove_dir_all(&base_dir).ok();

    // Retained run: deliver 200 of 240 records under the budget, then
    // SIGKILL the daemon mid-stream.
    let dir = tmpdir("budget");
    let flags = retention_flags();
    let flag_refs: Vec<&str> = flags.iter().map(String::as_str).collect();
    let (mut child, _stdout, addr) = spawn_serve(&dir, &flag_refs);
    let mut up = uplink(addr);
    let prefix = &stream()[..200];
    assert_eq!(send_all(&mut up, prefix), prefix.len());
    child.kill().expect("SIGKILL serve");
    assert!(!child.wait().expect("wait killed serve").success());

    // 200 × 45 B = 9000 B were appended, but the budget held: retention
    // reclaimed checkpointed segments as it went.
    let footprint = wal_footprint(&dir);
    assert!(
        footprint <= BUDGET,
        "wal footprint {footprint} exceeds the {BUDGET}-byte budget"
    );
    assert!(
        dir.join("checkpoint.ck").exists(),
        "retention must have committed a checkpoint"
    );

    // Restart on the reclaimed log and re-deliver the full stream from
    // sequence zero: the restored dedup state absorbs the overlap and
    // the final report must match the unretained baseline.
    let (mut child, mut stdout, addr) = spawn_serve(&dir, &flag_refs);
    let mut up = uplink(addr);
    assert_eq!(send_all(&mut up, &stream()), stream().len());
    up.finish().expect("fin/finack");
    let mut resumed = String::new();
    stdout.read_to_string(&mut resumed).expect("read report");
    assert!(child.wait().expect("wait resumed serve").success());
    assert_eq!(
        resumed, baseline,
        "resumed retained report differs from the unretained baseline"
    );

    // The reclaimed log alone still reproduces the report (checkpoint
    // restore plus tail replay).
    let out = Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .args([
            "replay-wal",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--watermark",
            &watermark(),
            "--shards",
            "1",
        ])
        .output()
        .expect("spawn replay-wal");
    assert!(
        out.status.success(),
        "replay-wal failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8(out.stdout).expect("utf8 report"),
        baseline,
        "replay-wal report differs from the unretained baseline"
    );

    // The sharded cross-check needs the full released stream, which a
    // reclaimed log no longer carries: it must refuse loudly instead
    // of reporting a bogus divergence.
    let out = Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .args([
            "replay-wal",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--watermark",
            &watermark(),
            "--shards",
            "2",
        ])
        .output()
        .expect("spawn replay-wal --shards 2");
    assert!(
        !out.status.success(),
        "sharded cross-check over a reclaimed log must fail cleanly"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("retention budget"),
        "refusal must explain itself: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
