//! Whole-process epoch-fencing drills: two `sentinet serve` children
//! share one WAL directory across an owner handoff, exactly the shape
//! a network partition forces on the federation. The stale owner is
//! never SIGKILLed — it stays up, reachable, and convinced it owns the
//! partition — and must still fail-stop the moment it touches the
//! durable state: its deliver path re-reads the fence token the
//! successor committed beside the WAL and NACKs every append with a
//! typed rejection, counted and visible in its accounting. A stale
//! *restart* must refuse to open at all.

use sentinet_gateway::{SensorUplink, UplinkConfig};
use sentinet_sim::SensorId;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, ChildStdout, Command, Stdio};
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sentinet-fencing-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Serve {
    child: Child,
    addr: String,
    stdout: BufReader<ChildStdout>,
    stderr: ChildStderr,
}

impl Serve {
    /// Spawns `sentinet serve` on `dir` at the given owner epoch and
    /// waits for its listening banner.
    fn spawn(dir: &Path, epoch: u64) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sentinet"))
            .arg("serve")
            .arg("--wal-dir")
            .arg(dir)
            .args(["--bind", "127.0.0.1:0"])
            .args(["--epoch", &epoch.to_string()])
            .args(["--fsync", "never", "--silence-deadline", "0"])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        let stderr = child.stderr.take().expect("child stderr");
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read banner");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("bad banner: {line:?}"))
            .to_string();
        Serve {
            child,
            addr,
            stdout,
            stderr,
        }
    }

    /// Drains the child's output after its client sent Fin, waits for
    /// exit, and returns the stderr text.
    fn finish(mut self) -> String {
        let mut out = String::new();
        let _ = self.stdout.read_to_string(&mut out);
        let mut err = String::new();
        let _ = self.stderr.read_to_string(&mut err);
        let _ = self.child.wait();
        err
    }
}

/// A drill-tuned uplink announcing `epoch` in its Hello: fast
/// deterministic retries so a NACK streak exhausts in milliseconds.
fn uplink(addr: &str, epoch: u64) -> SensorUplink {
    let mut config = UplinkConfig::new(addr);
    config.ack_timeout = Duration::from_millis(200);
    config.max_attempts = 3;
    config.backoff_base = Duration::from_millis(5);
    config.backoff_cap = Duration::from_millis(20);
    config.jitter_pct = 0;
    config.epoch = epoch;
    SensorUplink::new(config)
}

#[test]
fn healed_stale_owner_fail_stops_with_counted_nacks() {
    let dir = tmpdir("heal");

    // Epoch-1 owner accepts writes normally.
    let a = Serve::spawn(&dir, 1);
    let mut ua = uplink(&a.addr, 1);
    ua.send_at(SensorId(0), 0, 300, &[20.0, 50.0])
        .expect("pre-partition append must ack");
    ua.send_at(SensorId(0), 1, 600, &[21.0, 51.0])
        .expect("pre-partition append must ack");

    // The partition: the controller stops reaching A, declares it
    // dead, and a standby adopts the WAL at epoch 2 — committing the
    // fence token beside the log while A is still running.
    let b = Serve::spawn(&dir, 2);
    let mut ub = uplink(&b.addr, 2);
    ub.send_at(SensorId(0), 2, 900, &[22.0, 52.0])
        .expect("the adopting owner must accept");

    // The partition heals: A is reachable again and a stale client
    // offers it the same coordinate. A must NACK — its deliver path
    // re-reads the fence token from disk — and never append behind
    // the new owner's back.
    ua.send_at(SensorId(0), 2, 900, &[66.0, 66.0])
        .expect_err("a fenced owner must refuse the append");
    assert!(
        ua.stats().nacks > 0,
        "the refusal must be a typed NACK, not a timeout: {:?}",
        ua.stats()
    );

    // The new owner is undisturbed by the zombie's attempt.
    ub.send_at(SensorId(0), 3, 1200, &[23.0, 53.0])
        .expect("the live owner must keep accepting");

    let _ = ua.finish();
    let stale_err = a.finish();
    assert!(
        stale_err.contains("fenced by newer owner epoch 2"),
        "the stale owner must account its fenced NACKs:\n{stale_err}"
    );

    let _ = ub.finish();
    let live_err = b.finish();
    assert!(
        !live_err.contains("fenced"),
        "the live owner must not report fencing:\n{live_err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_epoch_restart_refuses_to_open() {
    let dir = tmpdir("restart");

    // Commit the fence at epoch 2: serve once, Fin immediately.
    let b = Serve::spawn(&dir, 2);
    let ub = uplink(&b.addr, 2);
    let _ = ub.finish();
    let _ = b.finish();

    // A restart at the superseded epoch must fail-stop before binding.
    let out = Command::new(env!("CARGO_BIN_EXE_sentinet"))
        .arg("serve")
        .arg("--wal-dir")
        .arg(&dir)
        .args(["--bind", "127.0.0.1:0", "--epoch", "1"])
        .output()
        .expect("run stale serve");
    assert!(
        !out.status.success(),
        "a stale-epoch restart must not come up"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("fenced at epoch 2"),
        "the refusal must name the fencing epoch:\n{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
