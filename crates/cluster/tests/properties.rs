//! Property-based tests for the clustering substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_cluster::{kmeans, ClusterConfig, ModelStates, StateEvent};

fn cfg() -> ClusterConfig {
    ClusterConfig {
        alpha: 0.2,
        merge_threshold: 1.0,
        spawn_threshold: 10.0,
        max_states: 12,
    }
}

fn points(dim: usize, max_len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, dim), 1..max_len)
}

proptest! {
    #[test]
    fn assignments_are_nearest_active_state(pts in points(2, 20)) {
        let s = ModelStates::new(vec![vec![0.0, 0.0], vec![20.0, 20.0]], cfg());
        let labels = s.assign(&pts);
        for (p, &l) in pts.iter().zip(&labels) {
            let (nearest, d) = s.nearest(p).unwrap();
            prop_assert_eq!(l, nearest);
            // No active state is strictly closer.
            for a in s.active_states() {
                let c = s.centroid(a).unwrap();
                let da: f64 = p.iter().zip(c).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt();
                prop_assert!(da >= d - 1e-12);
            }
        }
    }

    #[test]
    fn update_never_loses_all_states(
        rounds in prop::collection::vec(points(2, 8), 1..10),
    ) {
        let mut s = ModelStates::new(vec![vec![0.0, 0.0]], cfg());
        for pts in rounds {
            s.update(&pts);
            prop_assert!(!s.active_states().is_empty());
            prop_assert!(s.active_states().len() <= 12);
        }
    }

    #[test]
    fn events_are_consistent_with_state_set(pts in points(2, 20)) {
        let mut s = ModelStates::new(vec![vec![0.0, 0.0], vec![30.0, 30.0]], cfg());
        let before = s.num_slots();
        let events = s.update(&pts);
        for e in &events {
            match e {
                StateEvent::Spawned(i) => {
                    prop_assert!(*i >= before || s.centroid(*i).is_some());
                    prop_assert!(s.centroid(*i).is_some(), "spawned slot must be active");
                }
                StateEvent::Merged { from, into } => {
                    prop_assert!(s.centroid(*from).is_none(), "merged-from slot inactive");
                    prop_assert!(s.centroid(*into).is_some(), "merge survivor active");
                }
            }
        }
    }

    #[test]
    fn centroids_stay_in_data_hull_after_updates(
        pts in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 1), 2..30),
    ) {
        // Feeding data confined to [-10, 10] can never push a centroid
        // outside the convex hull of {initial centroid} ∪ data.
        let mut s = ModelStates::new(vec![vec![0.0]], ClusterConfig {
            alpha: 0.5,
            merge_threshold: 0.5,
            spawn_threshold: 30.0,
            max_states: 4,
        });
        for _ in 0..5 {
            s.update(&pts);
        }
        for a in s.active_states() {
            let c = s.centroid(a).unwrap()[0];
            prop_assert!((-10.0..=10.0).contains(&c), "centroid {c}");
        }
    }

    #[test]
    fn spawn_if_uncovered_respects_threshold(
        x in -100.0f64..100.0,
    ) {
        let mut s = ModelStates::new(vec![vec![0.0]], cfg());
        let spawned = s.spawn_if_uncovered(&[x]);
        if x.abs() > 10.0 {
            prop_assert!(spawned.is_some());
            prop_assert_eq!(s.centroid(spawned.unwrap()).unwrap(), &[x]);
        } else {
            prop_assert!(spawned.is_none());
        }
    }

    #[test]
    fn kmeans_assignments_minimize_distance(
        pts in prop::collection::vec(prop::collection::vec(-20.0f64..20.0, 2), 4..40),
        k in 1usize..4,
        seed in 0u64..100,
    ) {
        prop_assume!(k <= pts.len());
        let res = kmeans(&pts, k, 50, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(res.assignments.len(), pts.len());
        prop_assert_eq!(res.centroids.len(), k);
        for (p, &a) in pts.iter().zip(&res.assignments) {
            let da: f64 = p.iter().zip(&res.centroids[a]).map(|(x, y)| (x - y).powi(2)).sum();
            for c in &res.centroids {
                let dc: f64 = p.iter().zip(c).map(|(x, y)| (x - y).powi(2)).sum();
                prop_assert!(da <= dc + 1e-9, "assignment not nearest");
            }
        }
    }

    #[test]
    fn kmeans_inertia_nonincreasing_in_k(
        pts in prop::collection::vec(prop::collection::vec(-20.0f64..20.0, 2), 8..30),
        seed in 0u64..50,
    ) {
        // More clusters cannot fit worse than best-of-restarts fewer
        // clusters (statistically; we use the best of 3 restarts each).
        let best = |k: usize| -> f64 {
            (0..3)
                .map(|r| {
                    kmeans(&pts, k, 100, &mut StdRng::seed_from_u64(seed * 17 + r))
                        .inertia
                })
                .fold(f64::INFINITY, f64::min)
        };
        let i1 = best(1);
        let i4 = best(4);
        prop_assert!(i4 <= i1 + 1e-6, "inertia grew with k: {i1} -> {i4}");
    }
}
