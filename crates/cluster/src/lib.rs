//! Statistical clustering for the `sentinet` sensor-network
//! error/attack detector.
//!
//! Two pieces, matching the paper's §3.1 and §4.1:
//!
//! - [`ModelStates`] — the on-line Model State Identification module:
//!   EWMA centroid tracking with learning factor `α` (Eq. 6), state
//!   merging below a distance threshold, and state spawning beyond one,
//!   with **stable slot indices** so downstream HMM estimators never see
//!   their state indices reshuffled.
//! - [`kmeans`] — the off-line clustering used to produce the initial
//!   6-state estimate from historical data (Table 1).
//!
//! # Examples
//!
//! ```
//! use sentinet_cluster::{kmeans, ClusterConfig, ModelStates};
//! use rand::SeedableRng;
//!
//! let history = vec![vec![12.0, 94.0], vec![12.4, 93.0], vec![31.0, 56.0], vec![30.4, 57.0]];
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let init = kmeans(&history, 2, 50, &mut rng).centroids;
//! let mut states = ModelStates::new(init, ClusterConfig::default());
//! states.update(&[vec![12.1, 93.8]]);
//! assert_eq!(states.active_states().len(), 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod kmeans;
mod online;

pub use kmeans::{kmeans, KMeansResult};
pub use online::{ClusterConfig, ModelStates, StateEvent, StatesSnapshot};
