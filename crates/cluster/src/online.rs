//! Online Model State Identification (paper §3.1, Eqs. 5–6).
//!
//! Maintains the evolving set of model states `S = {s_1, …, s_M}` that
//! synthetically describe the physical conditions traversed by the
//! environment *and* by error/attack data. Each window:
//!
//! 1. every state's centroid moves toward the mean of the observations
//!    mapped to it with learning factor `α` (Eq. 6);
//! 2. states closer than `merge_threshold` merge (so correct data is
//!    not split into small clusters);
//! 3. an observation farther than `spawn_threshold` from every state
//!    spawns a new state at its location.
//!
//! States occupy **stable slots**: merging deactivates a slot instead of
//! re-indexing, so the HMM estimators tracking states by index stay
//! consistent; spawning appends a new slot and the caller grows its
//! HMMs. [`StateEvent`] reports what happened.

use serde::{Deserialize, Serialize};

/// Configuration of the online clustering module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Learning factor `α ∈ (0, 1)` of Eq. 6 (paper default 0.10).
    pub alpha: f64,
    /// States closer than this (Euclidean) merge into one.
    pub merge_threshold: f64,
    /// Observations farther than this from every active state spawn a
    /// new state.
    pub spawn_threshold: f64,
    /// Hard cap on the number of active states (the paper warns the
    /// module "does not generate too many model states").
    pub max_states: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            alpha: 0.10,
            merge_threshold: 4.0,
            // The paper's GDI state set has ≈ 9-unit spacing between
            // adjacent (temperature, humidity) states; spawning at 8
            // reproduces that granularity, which is also what lets
            // moderately displaced faulty data (e.g. a 10% calibration
            // error) spawn its own error states.
            spawn_threshold: 8.0,
            max_states: 16,
        }
    }
}

/// A structural change to the state set during an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateEvent {
    /// A new state slot was created (index of the new slot).
    Spawned(usize),
    /// Slot `from` was merged into slot `into` and deactivated.
    Merged {
        /// The deactivated slot.
        from: usize,
        /// The surviving slot.
        into: usize,
    },
}

/// The evolving set of model states.
///
/// # Examples
///
/// ```
/// use sentinet_cluster::{ClusterConfig, ModelStates};
///
/// let mut states = ModelStates::new(
///     vec![vec![12.0, 94.0], vec![31.0, 56.0]],
///     ClusterConfig::default(),
/// );
/// let (l, _) = states.nearest(&[13.0, 93.0]).unwrap();
/// assert_eq!(l, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStates {
    centroids: Vec<Vec<f64>>,
    active: Vec<bool>,
    config: ClusterConfig,
    dims: usize,
    /// Bumped on every structural or centroid change; see
    /// [`ModelStates::generation`].
    generation: u64,
}

impl ModelStates {
    /// Creates the state set from initial centroids (offline-clustered
    /// historical data or random picks, per the paper).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty, has inconsistent dimensions, or the
    /// config has invalid parameters.
    pub fn new(initial: Vec<Vec<f64>>, config: ClusterConfig) -> Self {
        assert!(!initial.is_empty(), "need at least one initial state");
        let dims = initial[0].len();
        assert!(dims > 0, "states must have at least one attribute");
        assert!(
            initial.iter().all(|c| c.len() == dims),
            "inconsistent state dimensions"
        );
        assert!(
            config.alpha > 0.0 && config.alpha < 1.0,
            "alpha must be in (0, 1)"
        );
        assert!(
            config.merge_threshold >= 0.0 && config.spawn_threshold > config.merge_threshold,
            "spawn threshold must exceed merge threshold"
        );
        assert!(config.max_states >= initial.len(), "max_states too small");
        let active = vec![true; initial.len()];
        Self {
            centroids: initial,
            active,
            config,
            dims,
            generation: 0,
        }
    }

    /// Update generation: incremented whenever the state set changes
    /// (centroid moves, merges, spawns). Callers that derive expensive
    /// products from the centroids can use it as a cache key.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total slots ever allocated (active and merged-away).
    pub fn num_slots(&self) -> usize {
        self.centroids.len()
    }

    /// Indices of currently active states.
    pub fn active_states(&self) -> Vec<usize> {
        (0..self.centroids.len())
            .filter(|&i| self.active[i])
            .collect()
    }

    /// Attribute dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The centroid of slot `i`, if the slot is active.
    pub fn centroid(&self, i: usize) -> Option<&[f64]> {
        if i < self.centroids.len() && self.active[i] {
            Some(&self.centroids[i])
        } else {
            None
        }
    }

    /// The centroid of slot `i` regardless of its active flag: a slot
    /// merged away retains its last centroid, which classification
    /// needs when interpreting historical HMM evidence against it.
    pub fn centroid_any(&self, i: usize) -> Option<&[f64]> {
        self.centroids.get(i).map(Vec::as_slice)
    }

    /// The nearest active state to `point` and its distance (Eq. 3).
    ///
    /// Returns `None` only if every slot has been merged away (cannot
    /// happen: merges always leave the survivor active).
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong dimensionality.
    pub fn nearest(&self, point: &[f64]) -> Option<(usize, f64)> {
        assert_eq!(point.len(), self.dims, "point dimension mismatch");
        self.active_states()
            .into_iter()
            .map(|i| (i, dist(&self.centroids[i], point)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Maps each observation to its nearest state — the `l_j` labels of
    /// Eq. 3.
    pub fn assign(&self, points: &[Vec<f64>]) -> Vec<usize> {
        points
            .iter()
            // sentinet-allow(expect-used): merges always leave a survivor, so an active state exists
            .map(|p| self.nearest(p).expect("at least one active state").0)
            .collect()
    }

    /// Spawns a new state at `point` if it lies farther than the spawn
    /// threshold from every active state (and the cap allows), returning
    /// the new slot index.
    ///
    /// The detection pipeline uses this to guarantee the *observable*
    /// state of Eq. 2 can name a window mean that an attack has shifted
    /// into a region no sensor reading occupies.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong dimensionality.
    pub fn spawn_if_uncovered(&mut self, point: &[f64]) -> Option<usize> {
        // sentinet-allow(expect-used): merges always leave a survivor, so an active state exists
        let (_, d) = self.nearest(point).expect("at least one active state");
        if d > self.config.spawn_threshold && self.active_states().len() < self.config.max_states {
            self.centroids.push(point.to_vec());
            self.active.push(true);
            self.generation += 1;
            self.assert_invariants("spawn_if_uncovered");
            Some(self.centroids.len() - 1)
        } else {
            None
        }
    }

    /// Performs one full update round on a window's observations:
    /// EWMA centroid update (Eq. 6), merge pass, spawn pass.
    ///
    /// Returns the structural events so callers can grow/mask their
    /// per-state models.
    pub fn update(&mut self, points: &[Vec<f64>]) -> Vec<StateEvent> {
        let mut events = Vec::new();
        if points.is_empty() {
            return events;
        }
        self.generation += 1;
        let assignments = self.assign(points);

        // Eq. 6: s_k ← (1-α)·s_k + α·mean(P_k) for non-empty P_k.
        for k in self.active_states() {
            let members: Vec<&Vec<f64>> = points
                .iter()
                .zip(&assignments)
                .filter(|&(_, &a)| a == k)
                .map(|(p, _)| p)
                .collect();
            if members.is_empty() {
                continue;
            }
            let inv = 1.0 / members.len() as f64;
            for d in 0..self.dims {
                let mean: f64 = members.iter().map(|p| p[d]).sum::<f64>() * inv;
                self.centroids[k][d] =
                    (1.0 - self.config.alpha) * self.centroids[k][d] + self.config.alpha * mean;
            }
        }

        // Merge pass: collapse active states closer than the threshold.
        // The lower-indexed slot survives (stable identity).
        let act = self.active_states();
        for (ai, &i) in act.iter().enumerate() {
            if !self.active[i] {
                continue;
            }
            for &j in act.iter().skip(ai + 1) {
                if !self.active[j] {
                    continue;
                }
                if dist(&self.centroids[i], &self.centroids[j]) < self.config.merge_threshold {
                    // Survivor moves to the midpoint.
                    for d in 0..self.dims {
                        self.centroids[i][d] = (self.centroids[i][d] + self.centroids[j][d]) / 2.0;
                    }
                    self.active[j] = false;
                    events.push(StateEvent::Merged { from: j, into: i });
                }
            }
        }

        // Spawn pass: points beyond the spawn threshold from every
        // active state create new states (capped).
        for p in points {
            // sentinet-allow(expect-used): merges always leave a survivor, so an active state exists
            let (_, d) = self.nearest(p).expect("at least one active state");
            if d > self.config.spawn_threshold
                && self.active_states().len() < self.config.max_states
            {
                self.centroids.push(p.clone());
                self.active.push(true);
                events.push(StateEvent::Spawned(self.centroids.len() - 1));
            }
        }
        self.assert_invariants("update");
        events
    }

    /// Asserts the structural invariants after a mutation: at least one
    /// active state survives, and every active centroid is finite.
    /// Compiles to nothing unless the `check-invariants` feature is on;
    /// `xtask analyze` runs the test suite with it enabled.
    #[cfg(feature = "check-invariants")]
    fn assert_invariants(&self, context: &str) {
        debug_assert!(
            self.active.iter().any(|&a| a),
            "{context}: every model-state slot is inactive"
        );
        for (i, c) in self.centroids.iter().enumerate() {
            if self.active[i] {
                debug_assert!(
                    c.iter().all(|x| x.is_finite()),
                    "{context}: centroid {i} contains a non-finite entry: {c:?}"
                );
            }
        }
    }

    #[cfg(not(feature = "check-invariants"))]
    #[inline(always)]
    fn assert_invariants(&self, _context: &str) {}

    /// Captures the complete state set as plain data for checkpointing.
    /// [`ModelStates::from_snapshot`] rebuilds a set that is `==` to
    /// this one (all floats verbatim, the generation counter included,
    /// so memo caches keyed on [`ModelStates::generation`] stay
    /// coherent across a restore).
    pub fn snapshot(&self) -> StatesSnapshot {
        StatesSnapshot {
            centroids: self.centroids.clone(),
            active: self.active.clone(),
            config: self.config.clone(),
            generation: self.generation,
        }
    }

    /// Rebuilds a state set from a snapshot, re-validating the
    /// structural invariants (a corrupt checkpoint must fail loudly).
    ///
    /// # Errors
    ///
    /// A description of the violated invariant.
    pub fn from_snapshot(snapshot: StatesSnapshot) -> Result<Self, String> {
        let StatesSnapshot {
            centroids,
            active,
            config,
            generation,
        } = snapshot;
        if centroids.is_empty() {
            return Err("state snapshot has no slots".into());
        }
        let dims = centroids[0].len();
        if dims == 0 {
            return Err("state snapshot has zero-dimensional centroids".into());
        }
        if centroids.iter().any(|c| c.len() != dims) {
            return Err("state snapshot has inconsistent centroid dimensions".into());
        }
        if active.len() != centroids.len() {
            return Err(format!(
                "state snapshot active flags ({}) disagree with slots ({})",
                active.len(),
                centroids.len()
            ));
        }
        if !active.iter().any(|&a| a) {
            return Err("state snapshot has no active slot".into());
        }
        if !(config.alpha > 0.0 && config.alpha < 1.0) {
            return Err(format!(
                "state snapshot alpha {} out of (0, 1)",
                config.alpha
            ));
        }
        if !(config.merge_threshold >= 0.0 && config.spawn_threshold > config.merge_threshold) {
            return Err("state snapshot thresholds inverted".into());
        }
        if config.max_states < centroids.len() {
            return Err("state snapshot exceeds its own max_states".into());
        }
        let restored = Self {
            centroids,
            active,
            config,
            dims,
            generation,
        };
        restored.assert_invariants("from_snapshot");
        Ok(restored)
    }
}

/// Plain-data image of a [`ModelStates`], produced by
/// [`ModelStates::snapshot`] for checkpoint/restore. Centroids are
/// stored verbatim, so a round-trip is bit-exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatesSnapshot {
    /// Every slot's centroid (active and merged-away).
    pub centroids: Vec<Vec<f64>>,
    /// Per-slot active flag.
    pub active: Vec<bool>,
    /// The clustering configuration in force at capture time.
    pub config: ClusterConfig,
    /// Update-generation counter at capture time.
    pub generation: u64,
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let mut states = ModelStates::new(
            vec![vec![12.0, 94.0], vec![31.0, 56.0]],
            ClusterConfig::default(),
        );
        states.update(&[vec![12.5, 93.0], vec![40.0, 40.0]]);
        let restored = ModelStates::from_snapshot(states.snapshot()).unwrap();
        assert_eq!(states, restored);
        // Continuing both yields identical evolution.
        let mut a = states;
        let mut b = restored;
        let evs_a = a.update(&[vec![13.0, 92.0]]);
        let evs_b = b.update(&[vec![13.0, 92.0]]);
        assert_eq!(evs_a, evs_b);
        assert_eq!(a, b);
    }

    #[test]
    fn from_snapshot_rejects_corruption() {
        let states = ModelStates::new(vec![vec![1.0, 2.0]], ClusterConfig::default());
        let good = states.snapshot();
        let mut bad = good.clone();
        bad.active = vec![false];
        assert!(ModelStates::from_snapshot(bad).is_err());
        let mut bad = good.clone();
        bad.centroids = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(ModelStates::from_snapshot(bad).is_err());
        let mut bad = good.clone();
        bad.config.alpha = 2.0;
        assert!(ModelStates::from_snapshot(bad).is_err());
        let mut bad = good;
        bad.centroids.clear();
        bad.active.clear();
        assert!(ModelStates::from_snapshot(bad).is_err());
    }

    fn cfg() -> ClusterConfig {
        ClusterConfig {
            alpha: 0.5,
            merge_threshold: 1.0,
            spawn_threshold: 10.0,
            max_states: 8,
        }
    }

    #[test]
    fn nearest_and_assign() {
        let s = ModelStates::new(vec![vec![0.0, 0.0], vec![10.0, 0.0]], cfg());
        let (i, d) = s.nearest(&[1.0, 0.0]).unwrap();
        assert_eq!(i, 0);
        assert!((d - 1.0).abs() < 1e-12);
        assert_eq!(s.assign(&[vec![9.0, 0.0], vec![-1.0, 0.0]]), vec![1, 0]);
    }

    #[test]
    fn ewma_update_moves_centroid_toward_mean() {
        let mut s = ModelStates::new(
            vec![vec![0.0]],
            ClusterConfig {
                alpha: 0.5,
                merge_threshold: 0.1,
                spawn_threshold: 100.0,
                max_states: 4,
            },
        );
        let ev = s.update(&[vec![2.0], vec![4.0]]); // mean 3 → centroid 1.5
        assert!(ev.is_empty());
        assert!((s.centroid(0).unwrap()[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_state_not_updated() {
        let mut s = ModelStates::new(
            vec![vec![0.0], vec![100.0]],
            ClusterConfig {
                alpha: 0.5,
                merge_threshold: 0.1,
                spawn_threshold: 200.0,
                max_states: 4,
            },
        );
        s.update(&[vec![1.0]]);
        assert_eq!(s.centroid(1).unwrap(), &[100.0]);
    }

    #[test]
    fn merge_deactivates_higher_slot() {
        let mut s = ModelStates::new(vec![vec![0.0], vec![0.5]], cfg());
        let ev = s.update(&[vec![0.25]]);
        assert!(ev.contains(&StateEvent::Merged { from: 1, into: 0 }));
        assert_eq!(s.active_states(), vec![0]);
        assert!(s.centroid(1).is_none());
        // Survivor at the midpoint of the two merged centroids.
        let c = s.centroid(0).unwrap()[0];
        assert!(c > 0.0 && c < 0.5);
    }

    #[test]
    fn spawn_on_distant_observation() {
        let mut s = ModelStates::new(vec![vec![0.0]], cfg());
        let ev = s.update(&[vec![50.0]]);
        assert!(matches!(ev.as_slice(), [StateEvent::Spawned(1)]), "{ev:?}");
        assert_eq!(s.centroid(1).unwrap(), &[50.0]);
        // Subsequent assignment maps nearby points to the new state.
        assert_eq!(s.assign(&[vec![49.0]]), vec![1]);
    }

    #[test]
    fn spawn_respects_max_states() {
        let mut s = ModelStates::new(
            vec![vec![0.0]],
            ClusterConfig {
                alpha: 0.1,
                merge_threshold: 1.0,
                spawn_threshold: 5.0,
                max_states: 2,
            },
        );
        s.update(&[vec![100.0]]); // spawns slot 1 (at cap now)
        let ev = s.update(&[vec![-100.0]]); // would spawn, but capped
        assert!(ev.is_empty());
        assert_eq!(s.active_states().len(), 2);
    }

    #[test]
    fn update_with_no_points_is_noop() {
        let mut s = ModelStates::new(vec![vec![1.0]], cfg());
        assert!(s.update(&[]).is_empty());
        assert_eq!(s.centroid(0).unwrap(), &[1.0]);
    }

    #[test]
    fn converges_to_stable_clusters() {
        // Feed two alternating tight blobs; states settle on them.
        let mut s = ModelStates::new(
            vec![vec![3.0], vec![8.0]],
            ClusterConfig {
                alpha: 0.2,
                merge_threshold: 1.0,
                spawn_threshold: 20.0,
                max_states: 4,
            },
        );
        for _ in 0..100 {
            s.update(&[vec![0.0], vec![0.1], vec![10.0], vec![10.1]]);
        }
        let c0 = s.centroid(0).unwrap()[0];
        let c1 = s.centroid(1).unwrap()[0];
        assert!((c0 - 0.05).abs() < 0.1, "c0 {c0}");
        assert!((c1 - 10.05).abs() < 0.1, "c1 {c1}");
    }

    #[test]
    #[should_panic(expected = "at least one initial state")]
    fn empty_initial_panics() {
        ModelStates::new(vec![], cfg());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        ModelStates::new(
            vec![vec![0.0]],
            ClusterConfig {
                alpha: 1.0,
                ..cfg()
            },
        );
    }

    #[test]
    #[should_panic(expected = "spawn threshold must exceed")]
    fn bad_thresholds_panic() {
        ModelStates::new(
            vec![vec![0.0]],
            ClusterConfig {
                merge_threshold: 5.0,
                spawn_threshold: 2.0,
                ..cfg()
            },
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn nearest_dim_mismatch_panics() {
        let s = ModelStates::new(vec![vec![0.0, 0.0]], cfg());
        s.nearest(&[1.0]);
    }

    #[test]
    fn gdi_like_two_dim_flow() {
        // Four paper states, points near each: mapping must be stable.
        let init = vec![
            vec![12.0, 94.0],
            vec![17.0, 84.0],
            vec![24.0, 70.0],
            vec![31.0, 56.0],
        ];
        let mut s = ModelStates::new(init, ClusterConfig::default());
        let pts = vec![
            vec![12.5, 93.0],
            vec![16.8, 84.5],
            vec![24.2, 69.5],
            vec![30.5, 57.0],
        ];
        let labels = s.assign(&pts);
        assert_eq!(labels, vec![0, 1, 2, 3]);
        let ev = s.update(&pts);
        assert!(ev.is_empty(), "no structural change expected: {ev:?}");
        assert_eq!(s.active_states().len(), 4);
    }
}
