//! Offline k-means (Lloyd's algorithm) with k-means++ seeding.
//!
//! The paper bootstraps the Model State Identification module with "an
//! initial set estimate of 6 states that is determined by running an
//! off-line clustering algorithm on the entire data" (§4.1). This module
//! is that algorithm.

use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final centroids, `k × dims`.
    pub centroids: Vec<Vec<f64>>,
    /// Assignment of each input point to a centroid index.
    pub assignments: Vec<usize>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

/// Runs k-means++ seeding followed by Lloyd iterations.
///
/// Empty clusters are re-seeded on the farthest point from its centroid.
/// Stops when assignments are stable or `max_iters` is reached.
///
/// # Panics
///
/// Panics if `k == 0`, `points` is empty, `k > points.len()`, or the
/// points have inconsistent dimensions.
pub fn kmeans<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    rng: &mut R,
) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    assert!(!points.is_empty(), "no points to cluster");
    assert!(k <= points.len(), "k = {k} exceeds {} points", points.len());
    let dims = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dims),
        "inconsistent point dimensions"
    );

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        // sentinet-allow(float-eq): an exactly-zero weight total means all points coincide; take the uniform fallback
        if total == 0.0 {
            // All points coincide with existing centroids; duplicate one.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut pick = rng.gen::<f64>() * total;
        let mut chosen = points.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            pick -= d;
            if pick <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| sq_dist(p, &centroids[a]).total_cmp(&sq_dist(p, &centroids[b])))
                // sentinet-allow(expect-used): k >= 1 is asserted at entry, so a nearest centroid always exists
                .expect("k > 0");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed the empty cluster on the farthest point.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        sq_dist(a, &centroids[assignments[0]])
                            .total_cmp(&sq_dist(b, &centroids[assignments[0]]))
                    })
                    .map(|(i, _)| i)
                    // sentinet-allow(expect-used): the caller guarantees a non-empty point set before seeding
                    .expect("points is non-empty");
                centroids[c] = points[far].clone();
                changed = true;
            } else {
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = s / counts[c] as f64;
                }
            }
        }
        if !changed && iterations > 1 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..30 {
            let j = (i % 3) as f64;
            pts.push(vec![
                10.0 * j + (i as f64 % 5.0) * 0.1,
                -10.0 * j + (i as f64 % 7.0) * 0.1,
            ]);
        }
        pts
    }

    #[test]
    fn recovers_three_blobs() {
        let pts = blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let res = kmeans(&pts, 3, 100, &mut rng);
        assert!(res.inertia < 5.0, "inertia {}", res.inertia);
        // Each blob's points share a cluster.
        for base in 0..3 {
            let c = res.assignments[base];
            for i in (base..30).step_by(3) {
                assert_eq!(res.assignments[i], c);
            }
        }
    }

    #[test]
    fn k_equals_points_gives_zero_inertia() {
        let pts = vec![vec![0.0], vec![1.0], vec![5.0]];
        let mut rng = StdRng::seed_from_u64(3);
        let res = kmeans(&pts, 3, 50, &mut rng);
        assert!(res.inertia < 1e-18);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![vec![1.0, 1.0], vec![3.0, 5.0]];
        let mut rng = StdRng::seed_from_u64(5);
        let res = kmeans(&pts, 1, 10, &mut rng);
        assert!((res.centroids[0][0] - 2.0).abs() < 1e-12);
        assert!((res.centroids[0][1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn identical_points_dont_crash() {
        let pts = vec![vec![2.0]; 10];
        let mut rng = StdRng::seed_from_u64(6);
        let res = kmeans(&pts, 3, 20, &mut rng);
        assert_eq!(res.assignments.len(), 10);
        assert!(res.inertia < 1e-18);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        kmeans(&[vec![1.0]], 0, 10, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn k_above_points_panics() {
        kmeans(&[vec![1.0]], 2, 10, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_points_panics() {
        kmeans(&[], 1, 10, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn deterministic_under_seed() {
        let pts = blobs();
        let a = kmeans(&pts, 3, 100, &mut StdRng::seed_from_u64(9));
        let b = kmeans(&pts, 3, 100, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
