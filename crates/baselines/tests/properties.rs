//! Property-based tests for the baseline detectors.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_baselines::{HmmDetector, MarkovDetector};
use sentinet_hmm::{Hmm, StochasticMatrix};

fn cyclic(period: usize, len: usize, states: usize) -> Vec<usize> {
    (0..len).map(|t| (t / period) % states).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn markov_miss_rate_is_a_probability(
        window in prop::collection::vec(0usize..3, 2..60),
    ) {
        let det = MarkovDetector::train(3, &[cyclic(2, 120, 3)], 0.01, 0.3).unwrap();
        let r = det.miss_rate(&window).unwrap();
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn markov_training_windows_never_flagged(
        period in 1usize..5,
        states in 2usize..4,
    ) {
        let train = cyclic(period, 200, states);
        let det = MarkovDetector::train(states, std::slice::from_ref(&train), 0.01, 0.3).unwrap();
        // Any slice of the training sequence passes.
        for start in [0usize, 7, 23] {
            let w = &train[start..start + 40];
            prop_assert!(!det.is_anomalous(w).unwrap(), "start {start}");
        }
    }

    #[test]
    fn hmm_detector_scores_decrease_with_corruption(
        corrupt_every in 2usize..6,
        seed in 0u64..50,
    ) {
        // Progressively corrupting a benign window cannot *increase*
        // its likelihood under the trained model (statistically; we
        // compare clean vs heavily corrupted).
        let mut rng = StdRng::seed_from_u64(seed);
        let a = StochasticMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.1, 0.9]]).unwrap();
        let b = StochasticMatrix::from_rows(vec![vec![0.95, 0.05], vec![0.05, 0.95]]).unwrap();
        let src = Hmm::new(a, b, vec![0.5, 0.5]).unwrap();
        let train: Vec<Vec<usize>> = (0..4)
            .map(|_| src.sample(100, &mut rng).unwrap().1)
            .collect();
        let mut det = HmmDetector::new(2, 2);
        det.train(&train, &mut rng).unwrap();

        let clean = src.sample(80, &mut rng).unwrap().1;
        let mut corrupted = clean.clone();
        for i in (0..corrupted.len()).step_by(corrupt_every) {
            corrupted[i] = 1 - corrupted[i];
        }
        let s_clean = det.score(&clean).unwrap();
        let s_corrupt = det.score(&corrupted).unwrap();
        prop_assert!(
            s_corrupt <= s_clean + 0.05,
            "corruption raised the score: {s_clean} -> {s_corrupt}"
        );
    }

    #[test]
    fn hmm_detector_threshold_moves_with_z(
        z1 in 0.5f64..2.0,
        extra in 0.5f64..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(11);
        let train: Vec<Vec<usize>> = (0..4).map(|_| cyclic(3, 90, 2)).collect();
        let mut det = HmmDetector::new(2, 2);
        det.train(&train, &mut rng).unwrap();
        det.calibrate(&train, z1).unwrap();
        let t1 = det.threshold().unwrap();
        det.calibrate(&train, z1 + extra).unwrap();
        let t2 = det.threshold().unwrap();
        prop_assert!(t2 < t1, "larger z must lower the threshold: {t1} vs {t2}");
    }
}
