//! The Warrender–Forrest-style HMM anomaly detector (paper ref. [5]).
//!
//! The approach `sentinet` positions itself against: train a single HMM
//! `λ` on *attack-free* observation sequences with Baum–Welch, then at
//! test time flag a window as anomalous when its normalized
//! log-likelihood `ln Pr{O|λ} / |O|` falls below a threshold `η`.
//!
//! The limitations the paper lists (§2) are visible in this API:
//!
//! 1. hidden states are arbitrary (a `num_states` knob, no physical
//!    meaning);
//! 2. it *requires* a clean training phase ([`HmmDetector::train`] must
//!    be called on attack-free data) and training is expensive;
//! 3. there is no distributed redundancy and no diagnosis — the output
//!    is a binary anomaly flag per window.

use sentinet_hmm::{baum_welch, BaumWelchConfig, Hmm, HmmError};

/// Likelihood-threshold anomaly detector over discrete symbol windows.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sentinet_baselines::HmmDetector;
///
/// # fn main() -> Result<(), sentinet_hmm::HmmError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// // Train on a benign alternating pattern.
/// let train: Vec<Vec<usize>> = (0..4)
///     .map(|_| (0..60).map(|t| t % 2).collect())
///     .collect();
/// let mut det = HmmDetector::new(2, 2);
/// det.train(&train, &mut rng)?;
/// det.calibrate(&train, 3.0)?;
/// assert!(!det.is_anomalous(&(0..60).map(|t| t % 2).collect::<Vec<_>>())?);
/// assert!(det.is_anomalous(&vec![1; 60])?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HmmDetector {
    num_states: usize,
    num_symbols: usize,
    model: Option<Hmm>,
    threshold: Option<f64>,
}

impl HmmDetector {
    /// Creates an untrained detector with an arbitrary hidden-state
    /// count (limitation 1 of §2).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_states: usize, num_symbols: usize) -> Self {
        assert!(
            num_states > 0 && num_symbols > 0,
            "dimensions must be positive"
        );
        Self {
            num_states,
            num_symbols,
            model: None,
            threshold: None,
        }
    }

    /// Trains `λ` on attack-free sequences with Baum–Welch, keeping the
    /// best of three random restarts.
    ///
    /// # Errors
    ///
    /// Propagates [`baum_welch()`](sentinet_hmm::baum_welch()) errors
    /// (empty input, symbol range).
    pub fn train<R: rand::Rng + ?Sized>(
        &mut self,
        clean_sequences: &[Vec<usize>],
        rng: &mut R,
    ) -> Result<(), HmmError> {
        let mut best: Option<(f64, Hmm)> = None;
        for _ in 0..3 {
            let init = Hmm::random(self.num_states, self.num_symbols, rng)?;
            let trained = baum_welch(&init, clean_sequences, &BaumWelchConfig::default())?;
            let ll: f64 = clean_sequences
                .iter()
                .map(|s| trained.hmm.log_likelihood(s).unwrap_or(f64::NEG_INFINITY))
                .sum();
            if best.as_ref().map(|(b, _)| ll > *b).unwrap_or(true) {
                best = Some((ll, trained.hmm));
            }
        }
        // sentinet-allow(expect-used): at least one restart always runs, so a best-scoring model exists
        self.model = Some(best.expect("three restarts ran").1);
        Ok(())
    }

    /// Sets the anomaly threshold `η` to `z` standard deviations below
    /// the mean per-symbol log-likelihood of `reference` sequences.
    ///
    /// # Errors
    ///
    /// - [`HmmError::EmptySequence`] if `reference` is empty or the
    ///   detector scores nothing.
    /// - Scoring errors from the model.
    ///
    /// # Panics
    ///
    /// Panics if called before [`HmmDetector::train`].
    pub fn calibrate(&mut self, reference: &[Vec<usize>], z: f64) -> Result<(), HmmError> {
        if reference.is_empty() {
            return Err(HmmError::EmptySequence);
        }
        let scores: Vec<f64> = reference
            .iter()
            .map(|s| self.score(s))
            .collect::<Result<_, _>>()?;
        let n = scores.len() as f64;
        let mean = scores.iter().sum::<f64>() / n;
        let var = scores.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        self.threshold = Some(mean - z * var.sqrt().max(1e-3));
        Ok(())
    }

    /// Per-symbol log-likelihood of a window under `λ`.
    ///
    /// # Errors
    ///
    /// Scoring errors from the model (empty window, bad symbol). An
    /// impossible sequence scores `-inf` rather than erroring.
    ///
    /// # Panics
    ///
    /// Panics if called before [`HmmDetector::train`].
    pub fn score(&self, window: &[usize]) -> Result<f64, HmmError> {
        // sentinet-allow(expect-used): detect is documented to require train() first; absence is a caller bug
        let model = self.model.as_ref().expect("train the detector first");
        match model.log_likelihood(window) {
            Ok(ll) => Ok(ll / window.len() as f64),
            Err(HmmError::ImpossibleSequence { .. }) => Ok(f64::NEG_INFINITY),
            Err(e) => Err(e),
        }
    }

    /// Whether a window is anomalous: `score < η`.
    ///
    /// # Errors
    ///
    /// Propagates scoring errors.
    ///
    /// # Panics
    ///
    /// Panics if called before [`HmmDetector::train`] and
    /// [`HmmDetector::calibrate`].
    pub fn is_anomalous(&self, window: &[usize]) -> Result<bool, HmmError> {
        // sentinet-allow(expect-used): score is documented to require calibrate() first; absence is a caller bug
        let eta = self.threshold.expect("calibrate the detector first");
        Ok(self.score(window)? < eta)
    }

    /// The trained model, if any.
    pub fn model(&self) -> Option<&Hmm> {
        self.model.as_ref()
    }

    /// The calibrated threshold `η`, if any.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sentinet_hmm::StochasticMatrix;

    fn benign_source() -> Hmm {
        let a = StochasticMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.1, 0.9]]).unwrap();
        let b = StochasticMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.1, 0.9]]).unwrap();
        Hmm::new(a, b, vec![0.5, 0.5]).unwrap()
    }

    #[test]
    fn detects_distribution_shift() {
        let mut rng = StdRng::seed_from_u64(3);
        let src = benign_source();
        let train: Vec<Vec<usize>> = (0..6)
            .map(|_| src.sample(80, &mut rng).unwrap().1)
            .collect();
        let mut det = HmmDetector::new(2, 2);
        det.train(&train, &mut rng).unwrap();
        det.calibrate(&train, 3.0).unwrap();
        // Benign windows pass.
        let benign = src.sample(80, &mut rng).unwrap().1;
        assert!(!det.is_anomalous(&benign).unwrap());
        // A rapid-switching window violates the learned dwell structure.
        let hostile: Vec<usize> = (0..80).map(|t| t % 2).collect();
        assert!(det.is_anomalous(&hostile).unwrap());
    }

    #[test]
    fn score_is_per_symbol() {
        let mut rng = StdRng::seed_from_u64(5);
        let src = benign_source();
        let train = vec![src.sample(100, &mut rng).unwrap().1];
        let mut det = HmmDetector::new(2, 2);
        det.train(&train, &mut rng).unwrap();
        let w = src.sample(50, &mut rng).unwrap().1;
        let s = det.score(&w).unwrap();
        assert!(s < 0.0 && s > -5.0, "score {s}");
    }

    #[test]
    fn unseen_symbol_scores_neg_infinity_not_error() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut det = HmmDetector::new(2, 3);
        // Train only on symbols {0, 1}; symbol 2 never appears but
        // smoothing keeps its probability positive.
        det.train(&[vec![0, 1, 0, 1, 0, 1, 0, 1]], &mut rng)
            .unwrap();
        let s = det.score(&[2, 2, 2]).unwrap();
        assert!(s.is_finite(), "smoothed model should score unseen symbols");
        assert!(s < -2.0, "unseen symbols must score poorly: {s}");
    }

    #[test]
    #[should_panic(expected = "train the detector")]
    fn score_before_train_panics() {
        let det = HmmDetector::new(2, 2);
        let _ = det.score(&[0, 1]);
    }

    #[test]
    #[should_panic(expected = "calibrate the detector")]
    fn anomaly_before_calibrate_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut det = HmmDetector::new(2, 2);
        det.train(&[vec![0, 1, 0, 1]], &mut rng).unwrap();
        let _ = det.is_anomalous(&[0, 1]);
    }

    #[test]
    fn calibrate_empty_is_error() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut det = HmmDetector::new(2, 2);
        det.train(&[vec![0, 1, 0, 1]], &mut rng).unwrap();
        assert!(det.calibrate(&[], 3.0).is_err());
    }
}
