//! Markov-chain anomaly detector à la Jha–Tan–Maxion (paper ref. [11]).
//!
//! Trains a first-order Markov chain on clean state sequences and
//! classifies a test window by its *miss rate*: the fraction of observed
//! transitions whose trained probability falls below a support
//! threshold. High miss rate ⇒ anomalous.

use sentinet_hmm::{HmmError, MarkovChain};

/// Markov-chain anomaly detector over discrete state sequences.
///
/// # Examples
///
/// ```
/// use sentinet_baselines::MarkovDetector;
///
/// # fn main() -> Result<(), sentinet_hmm::HmmError> {
/// let train: Vec<usize> = (0..200).map(|t| (t / 4) % 3).collect();
/// let det = MarkovDetector::train(3, &[train], 0.01, 0.3)?;
/// let benign: Vec<usize> = (0..40).map(|t| (t / 4) % 3).collect();
/// assert!(!det.is_anomalous(&benign)?);
/// let hostile = vec![2, 0, 2, 0, 2, 0, 2, 0]; // reversed transitions
/// assert!(det.is_anomalous(&hostile)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MarkovDetector {
    chain: MarkovChain,
    /// Which states appeared in training: a transition *from* an unseen
    /// state is always a miss (its transition row is an artificial
    /// self-loop, not evidence).
    visited: Vec<bool>,
    support: f64,
    miss_threshold: f64,
}

impl MarkovDetector {
    /// Trains on clean sequences. A transition is *supported* when its
    /// trained probability is at least `support`; a window is anomalous
    /// when more than `miss_threshold` of its transitions are
    /// unsupported.
    ///
    /// # Errors
    ///
    /// - [`HmmError::EmptySequence`] if no training data is given.
    /// - [`HmmError::StateOutOfRange`] for bad symbols.
    ///
    /// # Panics
    ///
    /// Panics if `support` or `miss_threshold` lie outside `[0, 1]`.
    pub fn train(
        num_states: usize,
        clean_sequences: &[Vec<usize>],
        support: f64,
        miss_threshold: f64,
    ) -> Result<Self, HmmError> {
        assert!(
            (0.0..=1.0).contains(&support) && (0.0..=1.0).contains(&miss_threshold),
            "support and miss threshold must be probabilities"
        );
        if clean_sequences.is_empty() {
            return Err(HmmError::EmptySequence);
        }
        // Concatenation would fabricate cross-sequence transitions, so
        // count each sequence separately by chaining through the
        // estimator: train on the concatenation minus the seams.
        let mut counts = vec![vec![0.0f64; num_states]; num_states];
        let mut visits = vec![0.0f64; num_states];
        for seq in clean_sequences {
            if seq.is_empty() {
                return Err(HmmError::EmptySequence);
            }
            for &s in seq {
                if s >= num_states {
                    return Err(HmmError::StateOutOfRange {
                        state: s,
                        num_states,
                    });
                }
                visits[s] += 1.0;
            }
            for w in seq.windows(2) {
                counts[w[0]][w[1]] += 1.0;
            }
        }
        let rows: Vec<Vec<f64>> = counts
            .into_iter()
            .enumerate()
            .map(|(i, row)| {
                let s: f64 = row.iter().sum();
                // sentinet-allow(float-eq): an exactly-zero row sum cannot be normalised; the guard falls back to uniform
                if s == 0.0 {
                    let mut r = vec![0.0; num_states];
                    r[i] = 1.0;
                    r
                } else {
                    row.into_iter().map(|x| x / s).collect()
                }
            })
            .collect();
        let total: f64 = visits.iter().sum();
        let occupancy: Vec<f64> = visits.into_iter().map(|v| v / total).collect();
        let chain = MarkovChain::new(sentinet_hmm::StochasticMatrix::from_rows(rows)?, occupancy)?;
        let visited = chain.occupancy().iter().map(|&o| o > 0.0).collect();
        Ok(Self {
            chain,
            visited,
            support,
            miss_threshold,
        })
    }

    /// Fraction of transitions in `window` whose trained probability is
    /// below the support threshold.
    ///
    /// # Errors
    ///
    /// - [`HmmError::EmptySequence`] for windows shorter than 2.
    /// - [`HmmError::StateOutOfRange`] for bad symbols.
    pub fn miss_rate(&self, window: &[usize]) -> Result<f64, HmmError> {
        if window.len() < 2 {
            return Err(HmmError::EmptySequence);
        }
        let m = self.chain.num_states();
        let mut misses = 0usize;
        for w in window.windows(2) {
            if w[0] >= m || w[1] >= m {
                return Err(HmmError::StateOutOfRange {
                    state: w[0].max(w[1]),
                    num_states: m,
                });
            }
            if !self.visited[w[0]] || self.chain.transition()[(w[0], w[1])] < self.support {
                misses += 1;
            }
        }
        Ok(misses as f64 / (window.len() - 1) as f64)
    }

    /// Whether the window's miss rate exceeds the threshold.
    ///
    /// # Errors
    ///
    /// Propagates [`MarkovDetector::miss_rate`] errors.
    pub fn is_anomalous(&self, window: &[usize]) -> Result<bool, HmmError> {
        Ok(self.miss_rate(window)? > self.miss_threshold)
    }

    /// The trained chain.
    pub fn chain(&self) -> &MarkovChain {
        &self.chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyclic_train() -> Vec<Vec<usize>> {
        // 0,0,1,1,2,2,0,0,... strong cyclic structure.
        (0..4)
            .map(|_| (0..120).map(|t| (t / 2) % 3).collect())
            .collect()
    }

    #[test]
    fn benign_windows_pass() {
        let det = MarkovDetector::train(3, &cyclic_train(), 0.01, 0.3).unwrap();
        let benign: Vec<usize> = (0..30).map(|t| (t / 2) % 3).collect();
        assert!(!det.is_anomalous(&benign).unwrap());
        assert_eq!(det.miss_rate(&benign).unwrap(), 0.0);
    }

    #[test]
    fn reversed_transitions_flagged() {
        let det = MarkovDetector::train(3, &cyclic_train(), 0.01, 0.3).unwrap();
        let hostile = vec![2, 1, 0, 2, 1, 0, 2, 1, 0];
        assert!(det.miss_rate(&hostile).unwrap() > 0.5);
        assert!(det.is_anomalous(&hostile).unwrap());
    }

    #[test]
    fn short_window_is_error() {
        let det = MarkovDetector::train(3, &cyclic_train(), 0.01, 0.3).unwrap();
        assert!(det.miss_rate(&[1]).is_err());
    }

    #[test]
    fn out_of_range_symbol_is_error() {
        let det = MarkovDetector::train(3, &cyclic_train(), 0.01, 0.3).unwrap();
        assert!(det.miss_rate(&[0, 7]).is_err());
    }

    #[test]
    fn empty_training_is_error() {
        assert!(MarkovDetector::train(3, &[], 0.01, 0.3).is_err());
        assert!(MarkovDetector::train(3, &[vec![]], 0.01, 0.3).is_err());
    }

    #[test]
    fn unseen_state_transitions_are_misses() {
        // Training never visits state 3; a window dwelling there must
        // be flagged even though its artificial row is a self-loop.
        let det = MarkovDetector::train(4, &cyclic_train(), 0.01, 0.3).unwrap();
        let stuck = vec![3usize; 10];
        assert_eq!(det.miss_rate(&stuck).unwrap(), 1.0);
        assert!(det.is_anomalous(&stuck).unwrap());
    }

    #[test]
    fn seams_do_not_create_transitions() {
        // Two sequences ending/starting such that a concatenation would
        // fabricate a 2→0 transition that never occurs within either.
        let det =
            MarkovDetector::train(3, &[vec![0, 1, 2, 2, 2], vec![0, 1, 2, 2]], 0.01, 0.3).unwrap();
        assert_eq!(det.chain().transition()[(2, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "must be probabilities")]
    fn bad_thresholds_panic() {
        let _ = MarkovDetector::train(2, &[vec![0, 1]], 1.5, 0.3);
    }
}
