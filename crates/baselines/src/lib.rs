//! Baseline anomaly detectors the `sentinet` paper compares against.
//!
//! - [`HmmDetector`] — the Warrender–Forrest single-HMM
//!   likelihood-threshold approach (paper ref. \[5\]): Baum–Welch
//!   training on attack-free data, anomaly when `ln Pr{O|λ}` drops
//!   below `η`. Embodies the three limitations §2 lists: arbitrary
//!   hidden states, a mandatory clean training phase, and no
//!   distribution or diagnosis.
//! - [`MarkovDetector`] — the Jha–Tan–Maxion Markov-chain approach
//!   (paper ref. \[11\]): miss-rate of unsupported transitions.
//!
//! Both operate on discrete symbol sequences; the experiment harness
//! feeds them the same quantized window states the `sentinet` pipeline
//! produces, so the comparison in `exp_baselines` is apples-to-apples.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod markov_detector;
mod warrender;

pub use markov_detector::MarkovDetector;
pub use warrender::HmmDetector;
