//! Property-based tests for the alarm-filtering substrate.

use proptest::prelude::*;
use sentinet_filter::{
    AlarmFilter, Cusum, EwmaChart, KOfNFilter, Sprt, SprtAlarmFilter, SprtDecision,
};

proptest! {
    #[test]
    fn kofn_matches_naive_window_count(
        k in 1usize..6,
        extra in 0usize..5,
        stream in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let n = k + extra;
        let mut f = KOfNFilter::new(k, n);
        for (i, &raw) in stream.iter().enumerate() {
            let got = f.push(raw);
            let lo = i.saturating_sub(n - 1);
            let expect = stream[lo..=i].iter().filter(|&&b| b).count() >= k;
            prop_assert_eq!(got, expect, "step {}", i);
        }
    }

    #[test]
    fn kofn_all_true_raises_and_all_false_clears(
        k in 1usize..6,
        extra in 0usize..5,
    ) {
        let n = k + extra;
        let mut f = KOfNFilter::new(k, n);
        for _ in 0..n {
            f.push(true);
        }
        prop_assert!(f.is_raised());
        for _ in 0..n {
            f.push(false);
        }
        prop_assert!(!f.is_raised());
    }

    #[test]
    fn sprt_eventually_decides_on_constant_streams(
        p0 in 0.01f64..0.3,
        gap in 0.2f64..0.6,
    ) {
        let p1 = (p0 + gap).min(0.95);
        let mut t = Sprt::new(p0, p1, 0.01, 0.01);
        let mut decided = false;
        for _ in 0..10_000 {
            if t.push(true) == SprtDecision::AcceptH1 {
                decided = true;
                break;
            }
        }
        prop_assert!(decided, "constant alarms must accept H1");
        let mut t = Sprt::new(p0, p1, 0.01, 0.01);
        let mut decided = false;
        for _ in 0..10_000 {
            if t.push(false) == SprtDecision::AcceptH0 {
                decided = true;
                break;
            }
        }
        prop_assert!(decided, "constant silence must accept H0");
    }

    #[test]
    fn sprt_llr_is_sum_of_increments(
        p0 in 0.05f64..0.3,
        stream in prop::collection::vec(any::<bool>(), 1..50),
    ) {
        let p1 = 0.7;
        let mut t = Sprt::new(p0, p1, 0.001, 0.001);
        let mut manual = 0.0;
        for &raw in &stream {
            if t.decision() != SprtDecision::Continue {
                break;
            }
            manual += if raw {
                (p1 / p0).ln()
            } else {
                ((1.0 - p1) / (1.0 - p0)).ln()
            };
            t.push(raw);
        }
        prop_assert!((t.log_likelihood_ratio() - manual).abs() < 1e-9);
    }

    #[test]
    fn cusum_sums_always_nonnegative_and_reset_works(
        xs in prop::collection::vec(-10.0f64..10.0, 1..100),
    ) {
        let mut c = Cusum::new(0.0, 0.5, 5.0);
        for &x in &xs {
            c.push(x);
            prop_assert!(c.upper_sum() >= 0.0);
            prop_assert!(c.lower_sum() >= 0.0);
        }
        c.reset();
        prop_assert!(!c.is_alarmed());
        prop_assert_eq!(c.upper_sum(), 0.0);
    }

    #[test]
    fn cusum_detects_any_persistent_shift_beyond_allowance(
        shift in prop::sample::select(vec![-5.0f64, -2.0, 2.0, 5.0]),
    ) {
        let mut c = Cusum::new(0.0, 1.0, 4.0);
        let mut alarmed = false;
        for _ in 0..100 {
            alarmed = c.push(shift);
            if alarmed {
                break;
            }
        }
        prop_assert!(alarmed, "shift {shift} undetected");
    }

    #[test]
    fn ewma_statistic_is_convex_combination(
        lambda in 0.05f64..1.0,
        xs in prop::collection::vec(-5.0f64..5.0, 1..100),
    ) {
        let mut e = EwmaChart::new(0.0, 1.0, lambda, 3.0);
        let (mut lo, mut hi) = (0.0f64, 0.0f64);
        for &x in &xs {
            e.push(x);
            lo = lo.min(x);
            hi = hi.max(x);
            prop_assert!(e.statistic() >= lo - 1e-12 && e.statistic() <= hi + 1e-12);
        }
    }

    #[test]
    fn sprt_alarm_filter_is_monotone_on_extremes(
        warmup in prop::collection::vec(any::<bool>(), 0..30),
    ) {
        // Whatever the prefix, sustained alarms raise and sustained
        // silence clears.
        let mut f = SprtAlarmFilter::balanced();
        for raw in warmup {
            f.push(raw);
        }
        for _ in 0..200 {
            f.push(true);
        }
        prop_assert!(f.is_raised());
        for _ in 0..500 {
            f.push(false);
        }
        prop_assert!(!f.is_raised());
    }
}
