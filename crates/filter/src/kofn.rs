//! The k-of-n sliding-window alarm filter.
//!
//! The paper's simplest Alarm Filtering policy: "generate a filtered
//! alarm only after receiving k raw alarms in the last n time steps"
//! (§3.1). The filter also *clears*: once fewer than `k` of the last `n`
//! steps are raw alarms, the filtered alarm drops.

use std::collections::VecDeque;

/// Sliding-window k-of-n boolean filter.
///
/// # Examples
///
/// ```
/// use sentinet_filter::KOfNFilter;
///
/// let mut f = KOfNFilter::new(2, 3);
/// assert!(!f.push(true));  // 1 of last 3
/// assert!(f.push(true));   // 2 of last 3 → filtered alarm
/// assert!(f.push(false));  // still 2 of last 3
/// assert!(!f.push(false)); // 1 of last 3 → cleared
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KOfNFilter {
    k: usize,
    n: usize,
    window: VecDeque<bool>,
    count: usize,
}

impl KOfNFilter {
    /// Creates a filter requiring `k` raw alarms within the last `n`
    /// steps.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= n`.
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k >= 1 && k <= n, "require 1 <= k <= n (got k={k}, n={n})");
        Self {
            k,
            n,
            window: VecDeque::with_capacity(n),
            count: 0,
        }
    }

    /// The `k` parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The window length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rebuilds a filter from checkpointed parts; the raised count is
    /// recomputed from the window so it cannot drift from the data.
    pub(crate) fn from_parts(k: usize, n: usize, window: Vec<bool>) -> Self {
        assert!(k >= 1 && k <= n, "require 1 <= k <= n (got k={k}, n={n})");
        assert!(window.len() <= n, "window longer than n");
        let count = window.iter().filter(|&&b| b).count();
        Self {
            k,
            n,
            window: window.into(),
            count,
        }
    }

    /// The window contents, oldest first (for checkpointing).
    pub(crate) fn window_bits(&self) -> Vec<bool> {
        self.window.iter().copied().collect()
    }

    /// Feeds one raw alarm flag; returns the filtered alarm state.
    pub fn push(&mut self, raw: bool) -> bool {
        if self.window.len() == self.n && self.window.pop_front() == Some(true) {
            self.count -= 1;
        }
        self.window.push_back(raw);
        if raw {
            self.count += 1;
        }
        self.count >= self.k
    }

    /// Current filtered state without feeding a new observation.
    pub fn is_raised(&self) -> bool {
        self.count >= self.k
    }

    /// Clears all history.
    pub fn reset(&mut self) {
        self.window.clear();
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raises_after_k_in_window() {
        let mut f = KOfNFilter::new(3, 5);
        assert!(!f.push(true));
        assert!(!f.push(true));
        assert!(f.push(true));
        assert!(f.is_raised());
    }

    #[test]
    fn sparse_alarms_do_not_raise() {
        let mut f = KOfNFilter::new(3, 5);
        for i in 0..50 {
            // One alarm every 5 steps: never 3 within any 5-window.
            assert!(!f.push(i % 5 == 0), "raised at step {i}");
        }
    }

    #[test]
    fn clears_when_alarms_age_out() {
        let mut f = KOfNFilter::new(2, 3);
        f.push(true);
        assert!(f.push(true));
        assert!(f.push(false));
        assert!(!f.push(false)); // first true aged out
        assert!(!f.is_raised());
    }

    #[test]
    fn k_equals_one_passes_through() {
        let mut f = KOfNFilter::new(1, 4);
        assert!(f.push(true));
        assert!(f.push(false)); // still within window
        assert!(f.push(false));
        assert!(f.push(false));
        assert!(!f.push(false)); // aged out
    }

    #[test]
    fn k_equals_n_requires_full_window() {
        let mut f = KOfNFilter::new(3, 3);
        assert!(!f.push(true));
        assert!(!f.push(true));
        assert!(f.push(true));
        assert!(!f.push(false));
    }

    #[test]
    fn reset_clears_state() {
        let mut f = KOfNFilter::new(1, 2);
        f.push(true);
        assert!(f.is_raised());
        f.reset();
        assert!(!f.is_raised());
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn invalid_params_panic() {
        KOfNFilter::new(4, 3);
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn zero_k_panics() {
        KOfNFilter::new(0, 3);
    }

    #[test]
    fn getters() {
        let f = KOfNFilter::new(2, 7);
        assert_eq!(f.k(), 2);
        assert_eq!(f.n(), 7);
    }
}
