//! Alarm filtering and change detection for the `sentinet`
//! sensor-network error/attack detector.
//!
//! The paper's Alarm Filtering module (§3.1) smooths noisy raw alarm
//! streams (Fig. 12 shows ≈ 1.5 % false raw alarms on a healthy sensor)
//! before they open error/attack tracks. Four interchangeable policies
//! are provided:
//!
//! - [`KOfNFilter`] — the paper's simple "k raw alarms in the last n
//!   steps" filter;
//! - [`Sprt`] — Wald's Sequential Probability Ratio Test on the alarm
//!   rate;
//! - [`Cusum`] — tabular CUSUM on a numeric statistic;
//! - [`EwmaChart`] — EWMA control chart.
//!
//! Boolean-input policies implement [`AlarmFilter`], so the detection
//! pipeline can swap them at run time.
//!
//! # Examples
//!
//! ```
//! use sentinet_filter::{AlarmFilter, KOfNFilter, SprtAlarmFilter};
//!
//! let mut filters: Vec<Box<dyn AlarmFilter>> = vec![
//!     Box::new(KOfNFilter::new(3, 5)),
//!     Box::new(SprtAlarmFilter::balanced()),
//! ];
//! for f in &mut filters {
//!     for _ in 0..10 {
//!         f.push(true);
//!     }
//!     assert!(f.is_raised());
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cusum;
mod ewma;
mod kofn;
mod sprt;

pub use cusum::Cusum;
pub use ewma::EwmaChart;
pub use kofn::KOfNFilter;
pub use sprt::{Sprt, SprtDecision};

/// A boolean alarm smoother: raw alarms in, filtered alarm state out.
///
/// Implementations must be monotone in the obvious sense: a stream of
/// `true` eventually raises, a stream of `false` eventually clears (or
/// keeps the filter silent).
pub trait AlarmFilter: std::fmt::Debug + Send {
    /// Feeds one raw alarm flag; returns the filtered alarm state.
    fn push(&mut self, raw: bool) -> bool;
    /// The current filtered alarm state.
    fn is_raised(&self) -> bool;
    /// Clears all filter memory.
    fn reset(&mut self);
    /// Captures the complete filter state for checkpointing; feeding
    /// the snapshot to [`FilterSnapshot::restore`] yields a filter that
    /// behaves bit-identically from this point on.
    fn snapshot(&self) -> FilterSnapshot;
}

/// Plain-data image of an [`AlarmFilter`]'s state, used by the engine
/// supervisor to checkpoint and restore per-sensor runtimes across
/// shard crashes.
///
/// All floating-point fields are stored verbatim (log-domain for SPRT),
/// so `restore` reproduces the source filter bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterSnapshot {
    /// State of a [`KOfNFilter`]: parameters plus the boolean window,
    /// oldest entry first.
    KOfN {
        /// Raw alarms required within the window.
        k: usize,
        /// Window length.
        n: usize,
        /// Window contents, oldest first (`len <= n`).
        window: Vec<bool>,
    },
    /// State of a [`SprtAlarmFilter`]: the fixed log-domain constants,
    /// the running log-likelihood ratio, and the latched output.
    Sprt {
        /// Per-alarm LLR increment.
        llr_true: f64,
        /// Per-silence LLR increment.
        llr_false: f64,
        /// Wald upper threshold `A`.
        upper: f64,
        /// Wald lower threshold `B`.
        lower: f64,
        /// Running log-likelihood ratio.
        llr: f64,
        /// Observations consumed since the last reset.
        steps: u64,
        /// Latched filtered-alarm output.
        raised: bool,
    },
}

impl FilterSnapshot {
    /// Rebuilds the filter this snapshot was taken from.
    pub fn restore(self) -> Box<dyn AlarmFilter> {
        match self {
            FilterSnapshot::KOfN { k, n, window } => Box::new(KOfNFilter::from_parts(k, n, window)),
            FilterSnapshot::Sprt {
                llr_true,
                llr_false,
                upper,
                lower,
                llr,
                steps,
                raised,
            } => Box::new(SprtAlarmFilter {
                sprt: Sprt::from_parts(llr_true, llr_false, upper, lower, llr, steps),
                raised,
            }),
        }
    }
}

impl AlarmFilter for KOfNFilter {
    fn push(&mut self, raw: bool) -> bool {
        KOfNFilter::push(self, raw)
    }
    fn is_raised(&self) -> bool {
        KOfNFilter::is_raised(self)
    }
    fn reset(&mut self) {
        KOfNFilter::reset(self)
    }
    fn snapshot(&self) -> FilterSnapshot {
        FilterSnapshot::KOfN {
            k: self.k(),
            n: self.n(),
            window: self.window_bits(),
        }
    }
}

/// [`Sprt`] adapted to the [`AlarmFilter`] interface: `AcceptH1` raises
/// the filtered alarm; `AcceptH0` clears it and restarts the test so
/// the sensor keeps being monitored.
#[derive(Debug, Clone, PartialEq)]
pub struct SprtAlarmFilter {
    sprt: Sprt,
    raised: bool,
}

impl SprtAlarmFilter {
    /// Wraps an [`Sprt`] as an alarm filter.
    pub fn new(sprt: Sprt) -> Self {
        Self {
            sprt,
            raised: false,
        }
    }

    /// A reasonable default: healthy rate 5 %, faulty rate 60 %, 1 %
    /// error rates (matches the paper's Fig. 12 false-alarm regime).
    pub fn balanced() -> Self {
        Self::new(Sprt::new(0.05, 0.6, 0.01, 0.01))
    }
}

impl AlarmFilter for SprtAlarmFilter {
    fn push(&mut self, raw: bool) -> bool {
        match self.sprt.push(raw) {
            SprtDecision::AcceptH1 => {
                self.raised = true;
                self.sprt.reset();
            }
            SprtDecision::AcceptH0 => {
                self.raised = false;
                self.sprt.reset();
            }
            SprtDecision::Continue => {}
        }
        self.raised
    }
    fn is_raised(&self) -> bool {
        self.raised
    }
    fn reset(&mut self) {
        self.sprt.reset();
        self.raised = false;
    }
    fn snapshot(&self) -> FilterSnapshot {
        let (llr_true, llr_false, upper, lower, llr, steps) = self.sprt.parts();
        FilterSnapshot::Sprt {
            llr_true,
            llr_false,
            upper,
            lower,
            llr,
            steps,
            raised: self.raised,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sprt_filter_raises_and_clears() {
        let mut f = SprtAlarmFilter::balanced();
        for _ in 0..20 {
            f.push(true);
        }
        assert!(f.is_raised());
        for _ in 0..100 {
            f.push(false);
        }
        assert!(!f.is_raised());
    }

    #[test]
    fn trait_object_usage() {
        let mut f: Box<dyn AlarmFilter> = Box::new(KOfNFilter::new(2, 4));
        f.push(true);
        assert!(f.push(true));
        f.reset();
        assert!(!f.is_raised());
    }

    #[test]
    fn sprt_filter_reset() {
        let mut f = SprtAlarmFilter::balanced();
        for _ in 0..20 {
            f.push(true);
        }
        f.reset();
        assert!(!f.is_raised());
    }

    /// Snapshot/restore must be transparent: the restored filter and
    /// the original produce identical outputs on any continuation.
    #[test]
    fn snapshot_restore_is_transparent() {
        let continuation = [true, false, true, true, false, false, true, false];
        let originals: Vec<Box<dyn AlarmFilter>> = vec![
            Box::new(KOfNFilter::new(2, 4)),
            Box::new(SprtAlarmFilter::balanced()),
        ];
        for mut original in originals {
            for i in 0..7 {
                original.push(i % 3 == 0);
            }
            let mut restored = original.snapshot().restore();
            assert_eq!(restored.is_raised(), original.is_raised());
            for &raw in &continuation {
                assert_eq!(original.push(raw), restored.push(raw));
            }
            assert_eq!(original.snapshot(), restored.snapshot());
        }
    }
}
