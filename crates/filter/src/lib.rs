//! Alarm filtering and change detection for the `sentinet`
//! sensor-network error/attack detector.
//!
//! The paper's Alarm Filtering module (§3.1) smooths noisy raw alarm
//! streams (Fig. 12 shows ≈ 1.5 % false raw alarms on a healthy sensor)
//! before they open error/attack tracks. Four interchangeable policies
//! are provided:
//!
//! - [`KOfNFilter`] — the paper's simple "k raw alarms in the last n
//!   steps" filter;
//! - [`Sprt`] — Wald's Sequential Probability Ratio Test on the alarm
//!   rate;
//! - [`Cusum`] — tabular CUSUM on a numeric statistic;
//! - [`EwmaChart`] — EWMA control chart.
//!
//! Boolean-input policies implement [`AlarmFilter`], so the detection
//! pipeline can swap them at run time.
//!
//! # Examples
//!
//! ```
//! use sentinet_filter::{AlarmFilter, KOfNFilter, SprtAlarmFilter};
//!
//! let mut filters: Vec<Box<dyn AlarmFilter>> = vec![
//!     Box::new(KOfNFilter::new(3, 5)),
//!     Box::new(SprtAlarmFilter::balanced()),
//! ];
//! for f in &mut filters {
//!     for _ in 0..10 {
//!         f.push(true);
//!     }
//!     assert!(f.is_raised());
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cusum;
mod ewma;
mod kofn;
mod sprt;

pub use cusum::Cusum;
pub use ewma::EwmaChart;
pub use kofn::KOfNFilter;
pub use sprt::{Sprt, SprtDecision};

/// A boolean alarm smoother: raw alarms in, filtered alarm state out.
///
/// Implementations must be monotone in the obvious sense: a stream of
/// `true` eventually raises, a stream of `false` eventually clears (or
/// keeps the filter silent).
pub trait AlarmFilter: std::fmt::Debug + Send {
    /// Feeds one raw alarm flag; returns the filtered alarm state.
    fn push(&mut self, raw: bool) -> bool;
    /// The current filtered alarm state.
    fn is_raised(&self) -> bool;
    /// Clears all filter memory.
    fn reset(&mut self);
}

impl AlarmFilter for KOfNFilter {
    fn push(&mut self, raw: bool) -> bool {
        KOfNFilter::push(self, raw)
    }
    fn is_raised(&self) -> bool {
        KOfNFilter::is_raised(self)
    }
    fn reset(&mut self) {
        KOfNFilter::reset(self)
    }
}

/// [`Sprt`] adapted to the [`AlarmFilter`] interface: `AcceptH1` raises
/// the filtered alarm; `AcceptH0` clears it and restarts the test so
/// the sensor keeps being monitored.
#[derive(Debug, Clone, PartialEq)]
pub struct SprtAlarmFilter {
    sprt: Sprt,
    raised: bool,
}

impl SprtAlarmFilter {
    /// Wraps an [`Sprt`] as an alarm filter.
    pub fn new(sprt: Sprt) -> Self {
        Self {
            sprt,
            raised: false,
        }
    }

    /// A reasonable default: healthy rate 5 %, faulty rate 60 %, 1 %
    /// error rates (matches the paper's Fig. 12 false-alarm regime).
    pub fn balanced() -> Self {
        Self::new(Sprt::new(0.05, 0.6, 0.01, 0.01))
    }
}

impl AlarmFilter for SprtAlarmFilter {
    fn push(&mut self, raw: bool) -> bool {
        match self.sprt.push(raw) {
            SprtDecision::AcceptH1 => {
                self.raised = true;
                self.sprt.reset();
            }
            SprtDecision::AcceptH0 => {
                self.raised = false;
                self.sprt.reset();
            }
            SprtDecision::Continue => {}
        }
        self.raised
    }
    fn is_raised(&self) -> bool {
        self.raised
    }
    fn reset(&mut self) {
        self.sprt.reset();
        self.raised = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sprt_filter_raises_and_clears() {
        let mut f = SprtAlarmFilter::balanced();
        for _ in 0..20 {
            f.push(true);
        }
        assert!(f.is_raised());
        for _ in 0..100 {
            f.push(false);
        }
        assert!(!f.is_raised());
    }

    #[test]
    fn trait_object_usage() {
        let mut f: Box<dyn AlarmFilter> = Box::new(KOfNFilter::new(2, 4));
        f.push(true);
        assert!(f.push(true));
        f.reset();
        assert!(!f.is_raised());
    }

    #[test]
    fn sprt_filter_reset() {
        let mut f = SprtAlarmFilter::balanced();
        for _ in 0..20 {
            f.push(true);
        }
        f.reset();
        assert!(!f.is_raised());
    }
}
