//! Tabular CUSUM change-detection over a numeric statistic.
//!
//! The paper cites the CUSUM procedure (Basseville & Nikiforov) as a
//! candidate for smoothing raw alarm streams. This is the standard
//! two-sided tabular CUSUM for detecting a shift of a process mean:
//!
//! `S⁺ ← max(0, S⁺ + (x − μ0 − κ))`, alarm when `S⁺ > h`
//! `S⁻ ← max(0, S⁻ + (μ0 − x − κ))`, alarm when `S⁻ > h`
//!
//! where `κ` is the allowance (half the shift to detect) and `h` the
//! decision interval.

/// Two-sided tabular CUSUM detector.
///
/// # Examples
///
/// ```
/// use sentinet_filter::Cusum;
///
/// // Detect a mean shift away from 0 of ≥ 1.0, with allowance 0.5.
/// let mut c = Cusum::new(0.0, 0.5, 4.0);
/// let mut alarmed = false;
/// for _ in 0..10 {
///     alarmed = c.push(1.5); // persistent upward shift
///     if alarmed { break; }
/// }
/// assert!(alarmed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cusum {
    mu0: f64,
    kappa: f64,
    h: f64,
    s_hi: f64,
    s_lo: f64,
}

impl Cusum {
    /// Creates a detector around in-control mean `mu0` with allowance
    /// `kappa` and decision interval `h`.
    ///
    /// # Panics
    ///
    /// Panics if `kappa < 0`, `h <= 0`, or any parameter is not finite.
    pub fn new(mu0: f64, kappa: f64, h: f64) -> Self {
        assert!(
            mu0.is_finite() && kappa >= 0.0 && kappa.is_finite() && h > 0.0 && h.is_finite(),
            "invalid CUSUM parameters mu0={mu0}, kappa={kappa}, h={h}"
        );
        Self {
            mu0,
            kappa,
            h,
            s_hi: 0.0,
            s_lo: 0.0,
        }
    }

    /// Feeds one observation; returns whether either cumulative sum has
    /// crossed the decision interval.
    pub fn push(&mut self, x: f64) -> bool {
        self.s_hi = (self.s_hi + (x - self.mu0 - self.kappa)).max(0.0);
        self.s_lo = (self.s_lo + (self.mu0 - x - self.kappa)).max(0.0);
        self.is_alarmed()
    }

    /// Whether the detector is currently alarmed.
    pub fn is_alarmed(&self) -> bool {
        self.s_hi > self.h || self.s_lo > self.h
    }

    /// The upper cumulative sum `S⁺`.
    pub fn upper_sum(&self) -> f64 {
        self.s_hi
    }

    /// The lower cumulative sum `S⁻`.
    pub fn lower_sum(&self) -> f64 {
        self.s_lo
    }

    /// Resets both sums.
    pub fn reset(&mut self) {
        self.s_hi = 0.0;
        self.s_lo = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upward_shift_detected() {
        let mut c = Cusum::new(0.0, 0.5, 4.0);
        let mut steps = 0;
        while !c.push(2.0) {
            steps += 1;
            assert!(steps < 50);
        }
        // Shift of 2 with allowance 0.5 accumulates 1.5/step: h=4 → 3 steps.
        assert!(steps <= 3, "steps {steps}");
        assert!(c.upper_sum() > 4.0);
    }

    #[test]
    fn downward_shift_detected() {
        let mut c = Cusum::new(10.0, 0.5, 4.0);
        let mut alarmed = false;
        for _ in 0..10 {
            alarmed = c.push(8.0);
            if alarmed {
                break;
            }
        }
        assert!(alarmed);
        assert!(c.lower_sum() > 4.0);
    }

    #[test]
    fn in_control_noise_stays_quiet() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = Cusum::new(0.0, 1.0, 8.0);
        for _ in 0..5_000 {
            // Uniform noise in [-1, 1]: |x - mu| never exceeds kappa.
            assert!(!c.push(rng.gen_range(-1.0..1.0)));
        }
    }

    #[test]
    fn sums_never_negative() {
        let mut c = Cusum::new(0.0, 0.5, 4.0);
        for x in [-3.0, -5.0, -1.0, 4.0, -10.0] {
            c.push(x);
            assert!(c.upper_sum() >= 0.0);
            assert!(c.lower_sum() >= 0.0);
        }
    }

    #[test]
    fn reset_clears_alarm() {
        let mut c = Cusum::new(0.0, 0.0, 1.0);
        c.push(10.0);
        assert!(c.is_alarmed());
        c.reset();
        assert!(!c.is_alarmed());
        assert_eq!(c.upper_sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid CUSUM")]
    fn bad_params_panic() {
        Cusum::new(0.0, -1.0, 4.0);
    }
}
