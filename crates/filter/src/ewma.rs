//! EWMA control chart.
//!
//! Complements k-of-n/SPRT/CUSUM as a fourth alarm-filtering option: an
//! exponentially weighted moving average of a statistic with control
//! limits `μ0 ± L·σ·sqrt(λ/(2−λ)·(1−(1−λ)^{2t}))`.

/// EWMA control chart with exact time-varying control limits.
///
/// # Examples
///
/// ```
/// use sentinet_filter::EwmaChart;
///
/// let mut chart = EwmaChart::new(0.0, 1.0, 0.2, 3.0);
/// let mut out = false;
/// for _ in 0..30 {
///     out = chart.push(2.5); // sustained 2.5σ shift
///     if out { break; }
/// }
/// assert!(out);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EwmaChart {
    mu0: f64,
    sigma: f64,
    lambda: f64,
    l: f64,
    z: f64,
    t: u64,
}

impl EwmaChart {
    /// Creates a chart around in-control mean `mu0` and standard
    /// deviation `sigma`, with smoothing `lambda ∈ (0, 1]` and control
    /// width `l` (in σ units).
    ///
    /// # Panics
    ///
    /// Panics for non-finite inputs, `sigma <= 0`, `lambda ∉ (0, 1]`, or
    /// `l <= 0`.
    pub fn new(mu0: f64, sigma: f64, lambda: f64, l: f64) -> Self {
        assert!(
            mu0.is_finite()
                && sigma > 0.0
                && (0.0..=1.0).contains(&lambda)
                && lambda > 0.0
                && l > 0.0,
            "invalid EWMA parameters mu0={mu0}, sigma={sigma}, lambda={lambda}, L={l}"
        );
        Self {
            mu0,
            sigma,
            lambda,
            l,
            z: mu0,
            t: 0,
        }
    }

    /// Feeds one observation; returns whether the EWMA statistic is
    /// outside the control limits.
    pub fn push(&mut self, x: f64) -> bool {
        self.t += 1;
        self.z = self.lambda * x + (1.0 - self.lambda) * self.z;
        self.is_out_of_control()
    }

    /// Current EWMA statistic.
    pub fn statistic(&self) -> f64 {
        self.z
    }

    /// Current half-width of the control band.
    pub fn control_halfwidth(&self) -> f64 {
        let lam = self.lambda;
        let var_factor = lam / (2.0 - lam) * (1.0 - (1.0 - lam).powi(2 * self.t as i32));
        self.l * self.sigma * var_factor.sqrt()
    }

    /// Whether the statistic currently violates the limits.
    pub fn is_out_of_control(&self) -> bool {
        self.t > 0 && (self.z - self.mu0).abs() > self.control_halfwidth()
    }

    /// Resets the chart.
    pub fn reset(&mut self) {
        self.z = self.mu0;
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_shift_detected() {
        let mut c = EwmaChart::new(0.0, 1.0, 0.2, 3.0);
        let mut steps = 0;
        while !c.push(2.0) {
            steps += 1;
            assert!(steps < 100, "never detected");
        }
        assert!(steps < 20, "steps {steps}");
    }

    #[test]
    fn in_control_noise_mostly_quiet() {
        use rand::{rngs::StdRng, SeedableRng};
        use sentinet_sim::Gaussian;
        let mut rng = StdRng::seed_from_u64(2);
        let g = Gaussian::new(0.0, 1.0);
        let mut c = EwmaChart::new(0.0, 1.0, 0.2, 3.0);
        let violations = (0..5_000).filter(|_| c.push(g.sample(&mut rng))).count();
        // L=3 EWMA charts have in-control ARL of hundreds of samples.
        assert!(violations < 120, "violations {violations}");
    }

    #[test]
    fn limits_grow_to_asymptote() {
        let mut c = EwmaChart::new(0.0, 1.0, 0.3, 3.0);
        c.push(0.0);
        let w1 = c.control_halfwidth();
        for _ in 0..200 {
            c.push(0.0);
        }
        let w_inf = c.control_halfwidth();
        assert!(w1 < w_inf);
        let asymptote = 3.0 * (0.3f64 / 1.7).sqrt();
        assert!((w_inf - asymptote).abs() < 1e-6);
    }

    #[test]
    fn lambda_one_is_shewhart() {
        let mut c = EwmaChart::new(0.0, 1.0, 1.0, 3.0);
        assert!(!c.push(2.9));
        assert!(c.push(3.1));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut c = EwmaChart::new(5.0, 1.0, 0.5, 3.0);
        c.push(50.0);
        assert!(c.is_out_of_control());
        c.reset();
        assert!(!c.is_out_of_control());
        assert_eq!(c.statistic(), 5.0);
    }

    #[test]
    #[should_panic(expected = "invalid EWMA")]
    fn bad_lambda_panics() {
        EwmaChart::new(0.0, 1.0, 0.0, 3.0);
    }
}
