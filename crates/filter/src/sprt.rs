//! Wald's Sequential Probability Ratio Test over Bernoulli alarms.
//!
//! The paper suggests SPRT as a "sophisticated" alarm filter (§3.1,
//! citing Basseville & Nikiforov). We test
//!
//! - `H0`: raw alarms fire with probability `p0` (healthy sensor), vs
//! - `H1`: raw alarms fire with probability `p1 > p0` (faulty sensor),
//!
//! accumulating the log-likelihood ratio and comparing with the Wald
//! thresholds `A = ln((1−β)/α)` and `B = ln(β/(1−α))` for the chosen
//! error rates.

/// Outcome of feeding one observation to an [`Sprt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SprtDecision {
    /// Evidence insufficient; keep observing.
    Continue,
    /// `H0` accepted (behaving like a healthy sensor).
    AcceptH0,
    /// `H1` accepted (behaving like a faulty/malicious sensor).
    AcceptH1,
}

/// Bernoulli SPRT.
///
/// # Examples
///
/// ```
/// use sentinet_filter::{Sprt, SprtDecision};
///
/// let mut t = Sprt::new(0.05, 0.6, 0.01, 0.01);
/// let mut verdict = SprtDecision::Continue;
/// for _ in 0..20 {
///     verdict = t.push(true); // constant raw alarms
///     if verdict != SprtDecision::Continue { break; }
/// }
/// assert_eq!(verdict, SprtDecision::AcceptH1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sprt {
    llr_true: f64,
    llr_false: f64,
    upper: f64,
    lower: f64,
    llr: f64,
    steps: u64,
}

impl Sprt {
    /// Creates a test of `H0: p = p0` vs `H1: p = p1`, with type-I error
    /// `alpha` (false acceptance of `H1`) and type-II error `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p0 < p1 < 1` and `alpha`, `beta` ∈ (0, 0.5).
    pub fn new(p0: f64, p1: f64, alpha: f64, beta: f64) -> Self {
        assert!(
            0.0 < p0 && p0 < p1 && p1 < 1.0,
            "require 0 < p0 < p1 < 1 (got p0={p0}, p1={p1})"
        );
        assert!(
            (0.0..0.5).contains(&alpha) && alpha > 0.0 && (0.0..0.5).contains(&beta) && beta > 0.0,
            "error rates must be in (0, 0.5)"
        );
        Self {
            llr_true: (p1 / p0).ln(),
            llr_false: ((1.0 - p1) / (1.0 - p0)).ln(),
            upper: ((1.0 - beta) / alpha).ln(),
            lower: (beta / (1.0 - alpha)).ln(),
            llr: 0.0,
            steps: 0,
        }
    }

    /// Rebuilds a test from checkpointed parts, bypassing the
    /// probability-space constructor: the stored values are log-domain
    /// already, so they round-trip bit-exactly.
    pub(crate) fn from_parts(
        llr_true: f64,
        llr_false: f64,
        upper: f64,
        lower: f64,
        llr: f64,
        steps: u64,
    ) -> Self {
        Self {
            llr_true,
            llr_false,
            upper,
            lower,
            llr,
            steps,
        }
    }

    /// The fixed and running log-domain parts, for checkpointing:
    /// `(llr_true, llr_false, upper, lower, llr, steps)`.
    pub(crate) fn parts(&self) -> (f64, f64, f64, f64, f64, u64) {
        (
            self.llr_true,
            self.llr_false,
            self.upper,
            self.lower,
            self.llr,
            self.steps,
        )
    }

    /// Feeds one raw alarm flag, returning the running decision. After a
    /// terminal decision the test keeps reporting it until [`Sprt::reset`].
    pub fn push(&mut self, raw: bool) -> SprtDecision {
        if self.decision() == SprtDecision::Continue {
            self.llr += if raw { self.llr_true } else { self.llr_false };
            self.steps += 1;
        }
        self.decision()
    }

    /// Current decision.
    pub fn decision(&self) -> SprtDecision {
        if self.llr >= self.upper {
            SprtDecision::AcceptH1
        } else if self.llr <= self.lower {
            SprtDecision::AcceptH0
        } else {
            SprtDecision::Continue
        }
    }

    /// Observations consumed so far (stops counting once decided).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The running log-likelihood ratio.
    pub fn log_likelihood_ratio(&self) -> f64 {
        self.llr
    }

    /// Restarts the test.
    pub fn reset(&mut self) {
        self.llr = 0.0;
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_alarms_accept_h1_quickly() {
        let mut t = Sprt::new(0.05, 0.6, 0.01, 0.01);
        let mut steps = 0;
        loop {
            steps += 1;
            if t.push(true) == SprtDecision::AcceptH1 {
                break;
            }
            assert!(steps < 100, "did not decide");
        }
        assert!(steps <= 5, "took {steps} steps");
    }

    #[test]
    fn no_alarms_accept_h0() {
        let mut t = Sprt::new(0.05, 0.6, 0.01, 0.01);
        let mut verdict = SprtDecision::Continue;
        for _ in 0..200 {
            verdict = t.push(false);
            if verdict != SprtDecision::Continue {
                break;
            }
        }
        assert_eq!(verdict, SprtDecision::AcceptH0);
    }

    #[test]
    fn decision_is_sticky_until_reset() {
        let mut t = Sprt::new(0.05, 0.6, 0.01, 0.01);
        for _ in 0..20 {
            t.push(true);
        }
        assert_eq!(t.decision(), SprtDecision::AcceptH1);
        let steps = t.steps();
        for _ in 0..20 {
            assert_eq!(t.push(false), SprtDecision::AcceptH1);
        }
        assert_eq!(t.steps(), steps, "steps must freeze after decision");
        t.reset();
        assert_eq!(t.decision(), SprtDecision::Continue);
    }

    #[test]
    fn h0_rate_stream_rarely_accepts_h1() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let mut h1_accepts = 0;
        for _ in 0..500 {
            let mut t = Sprt::new(0.05, 0.6, 0.01, 0.01);
            loop {
                match t.push(rng.gen::<f64>() < 0.05) {
                    SprtDecision::AcceptH0 => break,
                    SprtDecision::AcceptH1 => {
                        h1_accepts += 1;
                        break;
                    }
                    SprtDecision::Continue => {}
                }
            }
        }
        // Nominal false-accept rate is 1%; allow generous slack.
        assert!(h1_accepts <= 15, "false H1 accepts: {h1_accepts}/500");
    }

    #[test]
    fn llr_moves_in_expected_direction() {
        let mut t = Sprt::new(0.1, 0.5, 0.05, 0.05);
        t.push(true);
        assert!(t.log_likelihood_ratio() > 0.0);
        t.reset();
        t.push(false);
        assert!(t.log_likelihood_ratio() < 0.0);
    }

    #[test]
    #[should_panic(expected = "0 < p0 < p1 < 1")]
    fn invalid_probs_panic() {
        Sprt::new(0.6, 0.5, 0.01, 0.01);
    }

    #[test]
    #[should_panic(expected = "error rates")]
    fn invalid_rates_panic() {
        Sprt::new(0.05, 0.6, 0.0, 0.01);
    }
}
