//! Recovery actions — closing the loop the paper motivates.
//!
//! The paper's introduction argues that *distinguishing* faults from
//! attacks matters because it selects the correct recovery action; §4
//! stops at classification. This module supplies the missing step: a
//! policy mapping each [`Diagnosis`] to a [`RecoveryAction`], and —
//! for the parametric error types — *data rehabilitation*: inverting
//! the estimated gain/offset so a mis-calibrated sensor's readings can
//! keep contributing instead of being discarded.

use crate::classify::{AttackType, Diagnosis, ErrorType};
use sentinet_sim::{Reading, SensorId};
use serde::{Deserialize, Serialize};

/// The action a deployment should take for one diagnosed sensor (or,
/// for attacks, for the network).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// Nothing to do.
    None,
    /// Keep using the sensor, dividing each attribute by the estimated
    /// gain (calibration fault: the data is *recoverable*).
    Recalibrate {
        /// Per-attribute gains to divide out.
        gains: Vec<f64>,
    },
    /// Keep using the sensor, subtracting the estimated offset
    /// (additive fault: the data is recoverable).
    BiasCorrect {
        /// Per-attribute offsets to subtract.
        offsets: Vec<f64>,
    },
    /// Exclude the sensor's data and schedule physical maintenance
    /// (stuck-at or unknown error: the data carries no information).
    MaskAndService,
    /// Security response: quarantine the implicated sensors, preserve
    /// evidence, and distrust the affected observable states.
    Quarantine {
        /// Observable states whose recent values are adversarial.
        tainted_states: Vec<usize>,
    },
}

impl RecoveryAction {
    /// Selects the action for a diagnosis — the paper's "correct
    /// recovery action" decision.
    pub fn for_diagnosis(diagnosis: &Diagnosis) -> Self {
        match diagnosis {
            Diagnosis::ErrorFree => RecoveryAction::None,
            Diagnosis::Error(ErrorType::Calibration { gains }) => RecoveryAction::Recalibrate {
                gains: gains.clone(),
            },
            Diagnosis::Error(ErrorType::Additive { offsets }) => RecoveryAction::BiasCorrect {
                offsets: offsets.clone(),
            },
            Diagnosis::Error(ErrorType::StuckAt { .. }) | Diagnosis::Error(ErrorType::Unknown) => {
                RecoveryAction::MaskAndService
            }
            Diagnosis::Attack(attack) => RecoveryAction::Quarantine {
                tainted_states: match attack {
                    AttackType::DynamicCreation { created } => created.clone(),
                    AttackType::DynamicDeletion { deleted } => deleted.clone(),
                    AttackType::DynamicChange { pairs } => pairs.iter().map(|&(_, o)| o).collect(),
                    AttackType::Mixed => Vec::new(),
                },
            },
        }
    }

    /// Whether the sensor's data stream remains usable under this
    /// action (possibly after correction).
    pub fn keeps_sensor(&self) -> bool {
        matches!(
            self,
            RecoveryAction::None
                | RecoveryAction::Recalibrate { .. }
                | RecoveryAction::BiasCorrect { .. }
        )
    }

    /// Rehabilitates one reading under this action: inverts the
    /// estimated corruption for recoverable faults, passes clean data
    /// through, and returns `None` when the data must be discarded.
    ///
    /// # Panics
    ///
    /// Panics if the correction dimensionality disagrees with the
    /// reading.
    pub fn rehabilitate(&self, reading: &Reading) -> Option<Reading> {
        match self {
            RecoveryAction::None => Some(reading.clone()),
            RecoveryAction::Recalibrate { gains } => {
                assert_eq!(gains.len(), reading.dims(), "gain dims");
                Some(Reading::new(
                    reading
                        .values()
                        .iter()
                        .zip(gains)
                        .map(|(&x, &g)| if g.abs() > 1e-9 { x / g } else { x })
                        .collect(),
                ))
            }
            RecoveryAction::BiasCorrect { offsets } => {
                assert_eq!(offsets.len(), reading.dims(), "offset dims");
                Some(Reading::new(
                    reading
                        .values()
                        .iter()
                        .zip(offsets)
                        .map(|(&x, &o)| x - o)
                        .collect(),
                ))
            }
            RecoveryAction::MaskAndService | RecoveryAction::Quarantine { .. } => None,
        }
    }
}

/// Degraded-mode report from a supervised run: which sensors were
/// quarantined because their shard exceeded its restart budget, and how
/// many times each shard was restarted along the way.
///
/// Produced by the sharded engine's supervisor and surfaced through the
/// run report; [`RecoveryPlan::mask_quarantined`] folds it into the
/// recovery policy so operators service the crashed shard's sensors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedStatus {
    /// Sensors excluded from voting after their shard was quarantined,
    /// ordered by sensor id.
    pub quarantined_sensors: Vec<SensorId>,
    /// `(shard index, restart count)` for every shard that crashed at
    /// least once, quarantined or not.
    pub shard_restarts: Vec<(usize, u32)>,
}

impl std::fmt::Display for DegradedStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "degraded: quarantined sensors [")?;
        for (i, s) in self.quarantined_sensors.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", s.0)?;
        }
        write!(f, "], shard restarts [")?;
        for (i, (shard, n)) in self.shard_restarts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{shard}×{n}")?;
        }
        write!(f, "]")
    }
}

/// A full recovery plan: one action per sensor, derived from a
/// pipeline's diagnoses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPlan {
    /// Actions by sensor, ordered by sensor id.
    pub actions: Vec<(SensorId, RecoveryAction)>,
}

impl RecoveryPlan {
    /// Builds the plan from a pipeline's current diagnoses.
    pub fn from_pipeline(pipeline: &crate::Pipeline) -> Self {
        let actions = pipeline
            .sensor_ids()
            .into_iter()
            .map(|id| {
                let d = pipeline.classify(id);
                (id, RecoveryAction::for_diagnosis(&d))
            })
            .collect();
        Self { actions }
    }

    /// The action for one sensor ([`RecoveryAction::None`] if unseen).
    pub fn action(&self, sensor: SensorId) -> &RecoveryAction {
        self.actions
            .iter()
            .find(|(id, _)| *id == sensor)
            .map(|(_, a)| a)
            .unwrap_or(&RecoveryAction::None)
    }

    /// Sensors whose data must be excluded going forward.
    pub fn masked_sensors(&self) -> Vec<SensorId> {
        self.actions
            .iter()
            .filter(|(_, a)| !a.keeps_sensor())
            .map(|(id, _)| *id)
            .collect()
    }

    /// Folds a degraded-mode report into the plan: every quarantined
    /// sensor is forced to [`RecoveryAction::MaskAndService`] — its
    /// shard stopped contributing mid-run, so whatever diagnosis its
    /// stale data produced, the sensor needs servicing before it can be
    /// trusted again. Sensors the run never saw are appended.
    pub fn mask_quarantined(&mut self, status: &DegradedStatus) {
        for &sensor in &status.quarantined_sensors {
            match self.actions.iter_mut().find(|(id, _)| *id == sensor) {
                Some((_, action)) => *action = RecoveryAction::MaskAndService,
                None => self.actions.push((sensor, RecoveryAction::MaskAndService)),
            }
        }
        self.actions.sort_by_key(|(id, _)| *id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_maps_each_diagnosis() {
        assert_eq!(
            RecoveryAction::for_diagnosis(&Diagnosis::ErrorFree),
            RecoveryAction::None
        );
        assert_eq!(
            RecoveryAction::for_diagnosis(&Diagnosis::Error(ErrorType::StuckAt { state: 3 })),
            RecoveryAction::MaskAndService
        );
        match RecoveryAction::for_diagnosis(&Diagnosis::Error(ErrorType::Calibration {
            gains: vec![1.2, 1.1],
        })) {
            RecoveryAction::Recalibrate { gains } => assert_eq!(gains, vec![1.2, 1.1]),
            other => panic!("{other:?}"),
        }
        match RecoveryAction::for_diagnosis(&Diagnosis::Attack(AttackType::DynamicCreation {
            created: vec![7],
        })) {
            RecoveryAction::Quarantine { tainted_states } => {
                assert_eq!(tainted_states, vec![7])
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn recalibration_inverts_gain() {
        let action = RecoveryAction::Recalibrate {
            gains: vec![1.25, 1.1],
        };
        let corrupted = Reading::new(vec![25.0, 77.0]);
        let fixed = action.rehabilitate(&corrupted).unwrap();
        assert!((fixed.values()[0] - 20.0).abs() < 1e-9);
        assert!((fixed.values()[1] - 70.0).abs() < 1e-9);
        assert!(action.keeps_sensor());
    }

    #[test]
    fn bias_correction_subtracts_offset() {
        let action = RecoveryAction::BiasCorrect {
            offsets: vec![-9.0, -4.5],
        };
        let corrupted = Reading::new(vec![11.0, 65.5]);
        let fixed = action.rehabilitate(&corrupted).unwrap();
        assert!((fixed.values()[0] - 20.0).abs() < 1e-9);
        assert!((fixed.values()[1] - 70.0).abs() < 1e-9);
    }

    #[test]
    fn masked_data_is_discarded() {
        let action = RecoveryAction::MaskAndService;
        assert!(action.rehabilitate(&Reading::new(vec![1.0])).is_none());
        assert!(!action.keeps_sensor());
        let q = RecoveryAction::Quarantine {
            tainted_states: vec![],
        };
        assert!(q.rehabilitate(&Reading::new(vec![1.0])).is_none());
    }

    #[test]
    fn zero_gain_passes_through_instead_of_dividing() {
        let action = RecoveryAction::Recalibrate { gains: vec![0.0] };
        let r = action.rehabilitate(&Reading::new(vec![5.0])).unwrap();
        assert_eq!(r.values(), &[5.0]);
    }

    #[test]
    #[should_panic(expected = "gain dims")]
    fn dimension_mismatch_panics() {
        RecoveryAction::Recalibrate { gains: vec![1.0] }
            .rehabilitate(&Reading::new(vec![1.0, 2.0]));
    }

    #[test]
    fn quarantine_overrides_and_appends_actions() {
        let mut plan = RecoveryPlan {
            actions: vec![
                (SensorId(0), RecoveryAction::None),
                (
                    SensorId(2),
                    RecoveryAction::Recalibrate { gains: vec![1.1] },
                ),
            ],
        };
        let status = DegradedStatus {
            quarantined_sensors: vec![SensorId(1), SensorId(2)],
            shard_restarts: vec![(1, 4)],
        };
        plan.mask_quarantined(&status);
        assert_eq!(plan.action(SensorId(2)), &RecoveryAction::MaskAndService);
        assert_eq!(plan.action(SensorId(1)), &RecoveryAction::MaskAndService);
        assert_eq!(plan.action(SensorId(0)), &RecoveryAction::None);
        assert_eq!(plan.masked_sensors(), vec![SensorId(1), SensorId(2)]);
        assert_eq!(
            status.to_string(),
            "degraded: quarantined sensors [1, 2], shard restarts [1×4]"
        );
    }
}
