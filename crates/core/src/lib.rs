//! `sentinet-core` — on-the-fly detection, diagnosis, and classification
//! of **errors versus attacks** in distributed sensor networks.
//!
//! This crate is a from-scratch implementation of
//!
//! > *An Approach for Detecting and Distinguishing Errors versus Attacks
//! > in Sensor Networks* — C. Basile, M. Gupta, Z. Kalbarczyk,
//! > R. K. Iyer, DSN 2006.
//!
//! A collector node runs a [`Pipeline`] over the stream of redundant
//! sensor readings. Each observation window it estimates the *correct*
//! environment state from the majority cluster of sensors (no
//! attack-free training phase needed), learns two Hidden Markov Models
//! online —
//!
//! - `M_CO`: hidden/correct environment states → observable states, and
//! - `M_CE`: hidden/correct states → each suspect sensor's error states
//!
//! — and classifies malfunctions by *structural analysis* of these
//! models: non-orthogonal rows/columns of `B^CO` reveal dynamic
//! deletion/creation attacks, a single dominant column of `B^CE`
//! reveals a stuck-at error, one-to-one associations with constant
//! ratio/difference reveal calibration/additive errors (see
//! [`classify`]).
//!
//! # Examples
//!
//! Detect and classify a stuck-at fault:
//!
//! ```
//! use rand::SeedableRng;
//! use sentinet_core::{Diagnosis, ErrorType, Pipeline, PipelineConfig};
//! use sentinet_inject::{inject_faults, FaultInjection, FaultModel};
//! use sentinet_sim::{gdi, simulate, SensorId};
//!
//! let mut sim_cfg = gdi::day_config();
//! sim_cfg.duration = 6 * 3600; // keep the doctest fast
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let clean = simulate(&sim_cfg, &mut rng);
//! let faulty = inject_faults(
//!     &clean,
//!     &[FaultInjection::from_onset(
//!         SensorId(6),
//!         FaultModel::StuckAt { value: vec![15.0, 1.0] },
//!         0,
//!     )],
//!     &sim_cfg.ranges,
//!     &mut rng,
//! );
//! let mut pipeline = Pipeline::new(PipelineConfig::default(), sim_cfg.sample_period);
//! pipeline.process_trace(&faulty);
//! assert!(pipeline.ever_alarmed(SensorId(6)));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod classify;
pub mod confidence;
mod config;
mod pipeline;
pub mod recovery;
pub mod report;
pub mod runtime;
pub mod window;

pub use checkpoint::{
    decode_pipeline, encode_pipeline, CheckpointError, GlobalSnapshot, GlobalStates,
    PipelineSnapshot, SensorSnapshot, WindowerSnapshot,
};
pub use classify::{AttackType, Diagnosis, ErrorType, NetworkEvidence, SensorEvidence};
pub use config::{FilterPolicy, PipelineConfig};
pub use pipeline::{Pipeline, TrackRecord, WindowOutcome, BOT_SYMBOL};
pub use recovery::{DegradedStatus, RecoveryAction, RecoveryPlan};
pub use report::{PipelineReport, SensorSummary, StateSummary};
pub use runtime::{GlobalModel, SensorRuntime, SensorStep};
pub use window::{
    identify_states, identify_states_with, majority_vote, ObservationWindow, SensorSamples,
    WindowScratch, WindowStates, Windower,
};
