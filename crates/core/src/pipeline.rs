//! The collector-node detection pipeline (paper Fig. 1).
//!
//! One [`Pipeline`] instance runs on the data collector (base station /
//! cluster head) and executes, per observation window:
//!
//! 1. **Windowing** (Eq. 1) — incremental, via [`crate::window::Windower`];
//! 2. **Model State Identification** — online clustering with merge and
//!    spawn ([`sentinet_cluster::ModelStates`]), bootstrapped from the
//!    first window by k-means when no historical states are given;
//! 3. **Observable / Correct State Identification** and per-sensor
//!    mapping (Eqs. 2–4);
//! 4. **Alarm Generation** — raw alarm for every sensor whose label
//!    disagrees with the correct state;
//! 5. **Alarm Filtering** — k-of-n or SPRT per sensor;
//! 6. **Error/Attack Track Management** — per-sensor tracks feeding the
//!    `M_CE` estimators with `e_i = l_j` or ⊥;
//! 7. **HMM estimation** — the global `M_CO` (correct → observable) and
//!    per-sensor `M_CE` (correct → error) models, plus the Markov
//!    models `M_C` and `M_O`;
//! 8. **Classification** on demand via [`Pipeline::classify`].
//!
//! The pipeline composes the [`crate::runtime`] building blocks
//! serially; the sharded `sentinet-engine` drives the same blocks from
//! multiple threads. The hot path is allocation-free in steady state:
//! windows, their sample buffers, outcome alarm vectors, and the
//! trimmed-mean working set are all recycled between windows.

use crate::classify::{AttackType, Diagnosis};
use crate::config::PipelineConfig;
use crate::runtime::{GlobalModel, SensorRuntime};
use crate::window::{identify_states_with, ObservationWindow, WindowScratch, Windower};
use sentinet_cluster::{ModelStates, StateEvent};
use sentinet_hmm::{MarkovChain, OnlineHmmEstimator};
use sentinet_sim::{Reading, SensorId, Timestamp, Trace};
use std::collections::BTreeMap;

pub use crate::runtime::{TrackRecord, BOT_SYMBOL};

/// Cap on pooled [`WindowOutcome`]s retained for reuse.
const MAX_SPARE_OUTCOMES: usize = 64;

/// Summary of one processed observation window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutcome {
    /// Window index (0-based since stream start).
    pub index: u64,
    /// Window start time.
    pub start: Timestamp,
    /// Observable environment state `o_i`.
    pub observable: usize,
    /// Correct environment state `c_i`.
    pub correct: usize,
    /// Sensors whose window label disagreed with `c_i` (raw alarms).
    pub raw_alarms: Vec<SensorId>,
    /// Sensors whose filtered alarm is raised after this window.
    pub filtered_alarms: Vec<SensorId>,
    /// Structural clustering events (spawns/merges) this window.
    pub cluster_events: Vec<StateEvent>,
}

impl WindowOutcome {
    fn blank() -> Self {
        Self {
            index: 0,
            start: 0,
            observable: 0,
            correct: 0,
            raw_alarms: Vec::new(),
            filtered_alarms: Vec::new(),
            cluster_events: Vec::new(),
        }
    }
}

/// The full detection/diagnosis pipeline of the paper.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sentinet_core::{Pipeline, PipelineConfig};
/// use sentinet_sim::{gdi, simulate};
///
/// let cfg = gdi::day_config();
/// let trace = simulate(&cfg, &mut rand::rngs::StdRng::seed_from_u64(1));
/// let mut pipeline = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
/// let outcomes = pipeline.process_trace(&trace);
/// assert!(!outcomes.is_empty());
/// ```
#[derive(Debug)]
pub struct Pipeline {
    global: GlobalModel,
    windower: Windower,
    sensors: BTreeMap<SensorId, SensorRuntime>,
    scratch: WindowScratch,
    spare_outcomes: Vec<WindowOutcome>,
}

impl Pipeline {
    /// Creates a pipeline; `sample_period` is the sensor sampling period
    /// in seconds (window duration = `config.window_samples ×
    /// sample_period`, per Table 1's `w`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`PipelineConfig::validate`]) or `sample_period == 0`.
    pub fn new(config: PipelineConfig, sample_period: u64) -> Self {
        assert!(sample_period > 0, "sample period must be positive");
        let windower = Windower::new(config.window_samples as u64 * sample_period);
        Self {
            global: GlobalModel::new(config),
            windower,
            sensors: BTreeMap::new(),
            scratch: WindowScratch::new(),
            spare_outcomes: Vec::new(),
        }
    }

    /// Feeds one delivered reading; returns outcomes for any windows
    /// completed by this reading.
    ///
    /// # Panics
    ///
    /// Panics if readings arrive out of time order.
    pub fn push_reading(
        &mut self,
        time: Timestamp,
        sensor: SensorId,
        reading: &Reading,
    ) -> Vec<WindowOutcome> {
        self.push_values(time, sensor, reading.values())
    }

    /// Feeds one delivered reading as a raw value slice — the
    /// allocation-free ingest path.
    ///
    /// # Panics
    ///
    /// Panics if readings arrive out of time order or `values` is
    /// empty.
    pub fn push_values(
        &mut self,
        time: Timestamp,
        sensor: SensorId,
        values: &[f64],
    ) -> Vec<WindowOutcome> {
        let completed = self.windower.push(time, sensor, values);
        completed
            .into_iter()
            .filter_map(|w| self.process_window(w))
            .collect()
    }

    /// Processes an entire trace (delivered records only — lost and
    /// malformed packets never reach the collector's analysis, as in
    /// the paper) and flushes the final partial window.
    pub fn process_trace(&mut self, trace: &Trace) -> Vec<WindowOutcome> {
        let mut outcomes = Vec::new();
        for (time, sensor, reading) in trace.delivered() {
            outcomes.extend(self.push_reading(time, sensor, reading));
        }
        outcomes.extend(self.finalize());
        outcomes
    }

    /// Flushes the in-progress window at end of stream.
    pub fn finalize(&mut self) -> Vec<WindowOutcome> {
        match self.windower.finish() {
            Some(w) => self.process_window(w).into_iter().collect(),
            None => Vec::new(),
        }
    }

    /// Returns a consumed outcome to the pipeline's pool so its alarm
    /// vectors are reused by later windows (optional; capped).
    pub fn recycle_outcome(&mut self, outcome: WindowOutcome) {
        if self.spare_outcomes.len() < MAX_SPARE_OUTCOMES {
            self.spare_outcomes.push(outcome);
        }
    }

    fn process_window(&mut self, window: ObservationWindow) -> Option<WindowOutcome> {
        let outcome = self.analyze_window(&window);
        self.windower.recycle(window);
        outcome
    }

    fn analyze_window(&mut self, window: &ObservationWindow) -> Option<WindowOutcome> {
        if !self.global.absorb_bootstrap(window) {
            return None;
        }

        let trim = self.global.config().observable_trim;
        let mean = window.trimmed_mean_with(trim, &mut self.scratch);
        if self.global.cover_window_mean(mean) {
            // Field-disjoint from `mean`'s scratch borrow, so inline
            // rather than calling `grow_sensors` (&mut self).
            let slots = self.global.num_slots();
            for s in self.sensors.values_mut() {
                s.grow(slots);
            }
        }

        let ws = identify_states_with(
            window,
            self.global.states()?,
            mean?,
            self.global.config().majority_fraction,
        )?;

        if ws.decisive {
            self.global.record_decisive(ws.correct, ws.observable);
        }

        // Per-sensor alarms, filtering, tracks, M_CE updates.
        let window_index = self.global.windows_processed();
        let mut outcome = self
            .spare_outcomes
            .pop()
            .unwrap_or_else(WindowOutcome::blank);
        outcome.raw_alarms.clear();
        outcome.filtered_alarms.clear();
        let num_slots = self.global.num_slots();
        if ws.decisive {
            for (&id, &label) in ws.labels.iter() {
                let sensor = self
                    .sensors
                    .entry(id)
                    .or_insert_with(|| SensorRuntime::new(self.global.config(), num_slots));
                let step = sensor.step(window_index, label, ws.correct);
                if step.raw {
                    outcome.raw_alarms.push(id);
                }
                if step.filtered {
                    outcome.filtered_alarms.push(id);
                }
            }
        }

        // Model-state maintenance (Eqs. 5–6 + merge/spawn), then grow
        // every estimator to the new slot count.
        let points: Vec<Vec<f64>> = ws.representatives.into_values().collect();
        let (cluster_events, grew) = self.global.finish_window(&points);
        if grew {
            self.grow_sensors();
        }

        outcome.index = window_index;
        outcome.start = window.start;
        outcome.observable = ws.observable;
        outcome.correct = ws.correct;
        outcome.cluster_events = cluster_events;
        Some(outcome)
    }

    fn grow_sensors(&mut self) {
        let slots = self.global.num_slots();
        for s in self.sensors.values_mut() {
            s.grow(slots);
        }
    }

    /// Number of windows fully processed (post-bootstrap).
    pub fn windows_processed(&self) -> u64 {
        self.global.windows_processed()
    }

    /// The current model states, once bootstrapped.
    pub fn model_states(&self) -> Option<&ModelStates> {
        self.global.states()
    }

    /// The global `M_CO` estimator, once bootstrapped.
    pub fn m_co(&self) -> Option<&OnlineHmmEstimator> {
        self.global.m_co()
    }

    /// The per-sensor `M_CE` estimator.
    pub fn m_ce(&self, sensor: SensorId) -> Option<&OnlineHmmEstimator> {
        self.sensors.get(&sensor).map(SensorRuntime::m_ce)
    }

    /// The error/attack-free Markov model `M_C` of the environment —
    /// the pipeline's user-facing deliverable (paper Fig. 7).
    pub fn correct_model(&self) -> Option<MarkovChain> {
        self.global.correct_model()
    }

    /// The Markov model `M_O` of the observable states (useful for the
    /// random-noise discussion of §3.4).
    pub fn observable_model(&self) -> Option<MarkovChain> {
        self.global.observable_model()
    }

    /// Sensors seen so far.
    pub fn sensor_ids(&self) -> Vec<SensorId> {
        self.sensors.keys().copied().collect()
    }

    /// Per-sensor runtime snapshots in sensor-id order, in the format
    /// [`crate::checkpoint::encode_shard`] accepts. External recovery
    /// layers (the gateway's WAL checkpointing) use this to fingerprint
    /// pipeline state at a known ingest cursor and verify a replayed
    /// run reproduces it bit-exactly.
    pub fn sensor_snapshots(&self) -> Vec<(SensorId, crate::checkpoint::SensorSnapshot)> {
        self.sensors
            .iter()
            .map(|(id, rt)| (*id, rt.snapshot()))
            .collect()
    }

    /// Captures the complete pipeline state — global model, in-progress
    /// window, and every sensor runtime — as a restore-point
    /// [`PipelineSnapshot`](crate::checkpoint::PipelineSnapshot).
    /// Restoring it with [`Pipeline::from_snapshot`] under the same
    /// config and sample period yields a pipeline that continues
    /// bit-identically, which is what lets the gateway's WAL retention
    /// delete replayed log prefixes without weakening its recovery
    /// proof.
    pub fn snapshot(&self) -> crate::checkpoint::PipelineSnapshot {
        crate::checkpoint::PipelineSnapshot {
            global: self.global.snapshot(),
            windower: self.windower.snapshot(),
            sensors: self.sensor_snapshots(),
        }
    }

    /// Rebuilds a pipeline mid-stream from a restore-point snapshot
    /// taken under the same `config` and `sample_period`.
    ///
    /// # Errors
    ///
    /// [`crate::checkpoint::CheckpointError::Invalid`] if any embedded
    /// model state fails re-validation (corrupt checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `sample_period == 0`
    /// (as [`Pipeline::new`]).
    pub fn from_snapshot(
        config: PipelineConfig,
        sample_period: u64,
        snapshot: crate::checkpoint::PipelineSnapshot,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        assert!(sample_period > 0, "sample period must be positive");
        let duration = config.window_samples as u64 * sample_period;
        let windower = Windower::from_snapshot(duration, &snapshot.windower)?;
        let global = GlobalModel::from_snapshot(config, snapshot.global)?;
        let mut sensors = BTreeMap::new();
        for (id, snap) in snapshot.sensors {
            sensors.insert(id, SensorRuntime::from_snapshot(snap)?);
        }
        Ok(Self {
            global,
            windower,
            sensors,
            scratch: WindowScratch::new(),
            spare_outcomes: Vec::new(),
        })
    }

    /// The raw-alarm history of a sensor as `(window, raw)` pairs
    /// (paper Fig. 12).
    pub fn raw_alarm_history(&self, sensor: SensorId) -> Option<&[(u64, bool)]> {
        self.sensors.get(&sensor).map(SensorRuntime::raw_history)
    }

    /// The error/attack tracks opened for a sensor.
    pub fn tracks(&self, sensor: SensorId) -> Option<&[TrackRecord]> {
        self.sensors.get(&sensor).map(SensorRuntime::tracks)
    }

    /// Whether a filtered alarm was ever raised for the sensor.
    pub fn ever_alarmed(&self, sensor: SensorId) -> bool {
        self.sensors
            .get(&sensor)
            .map(SensorRuntime::ever_alarmed)
            .unwrap_or(false)
    }

    /// Classifies the network-level situation: `Some(attack)` when the
    /// `M_CO` structure carries an attack signature. Memoized on the
    /// model generations — repeated calls after unchanged windows are
    /// O(1).
    pub fn network_attack(&self) -> Option<AttackType> {
        self.global.network_attack()
    }

    /// Classifies one sensor per the paper's Fig. 5 tree.
    ///
    /// A sensor that never raised a filtered alarm is
    /// [`Diagnosis::ErrorFree`]; if the network-level `M_CO` shows an
    /// attack signature, every alarmed sensor reports that attack;
    /// otherwise the sensor's own `M_CE` decides the error type. The
    /// verdict is memoized on the estimator generations — repeated
    /// calls after unchanged windows are O(1).
    pub fn classify(&self, sensor: SensorId) -> Diagnosis {
        self.global.classify(self.sensors.get(&sensor))
    }

    /// Classifies one sensor and reports the confidence of the verdict
    /// — the normalized margin by which the deciding structural
    /// statistic cleared its threshold (see [`crate::confidence`]).
    pub fn classify_with_confidence(&self, sensor: SensorId) -> (Diagnosis, f64) {
        self.global
            .classify_with_confidence(self.sensors.get(&sensor))
    }

    /// Classifies every sensor seen so far.
    pub fn classify_all(&self) -> BTreeMap<SensorId, Diagnosis> {
        self.sensors
            .iter()
            .map(|(&id, rt)| (id, self.global.classify(Some(rt))))
            .collect()
    }

    /// The `(window, correct, observable)` state sequence of every
    /// decisive window — the paper's `c_i` and `o_i` series.
    pub fn state_history(&self) -> &[(u64, usize, usize)] {
        self.global.state_history()
    }

    /// The error signature of one sensor: for each hidden state with
    /// evidence (and not ⊥-dominated), the dominant error symbol of its
    /// `M_CE` row. Symbols are `slot + 1` indices (0 = ⊥), matching
    /// [`BOT_SYMBOL`].
    fn error_signature(&self, sensor: SensorId) -> BTreeMap<usize, usize> {
        let Some(state) = self.sensors.get(&sensor) else {
            return BTreeMap::new();
        };
        let b = state.m_ce().observation();
        state
            .m_ce()
            .observation_evidence()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= self.global.config().min_state_evidence)
            .filter(|(i, _)| b[(*i, BOT_SYMBOL)] <= 0.5)
            .filter_map(|(i, _)| {
                let row = b.row(i);
                let dominant = row
                    .iter()
                    .enumerate()
                    .skip(1) // never pick ⊥ as the signature symbol
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(k, _)| k)?;
                Some((i, dominant))
            })
            .collect()
    }

    /// Groups the sensors that ever raised a filtered alarm by the
    /// similarity of their error behaviour: two sensors belong to the
    /// same group when their `M_CE` signatures (hidden state → dominant
    /// error symbol) agree on more than half of their shared hidden
    /// states.
    ///
    /// Coordination is the hallmark of the paper's attack model — an
    /// adversary reprograms *several* nodes to forge the same values —
    /// while independent faults produce idiosyncratic signatures. The
    /// grouping therefore separates attack participants from a sensor
    /// that merely happens to be faulty during an attack (which the
    /// Fig. 5 tree alone cannot; see `examples/server_farm.rs`).
    pub fn coordinated_groups(&self) -> Vec<Vec<SensorId>> {
        let alarmed: Vec<SensorId> = self
            .sensor_ids()
            .into_iter()
            .filter(|&id| self.ever_alarmed(id))
            .collect();
        let signatures: Vec<BTreeMap<usize, usize>> =
            alarmed.iter().map(|&id| self.error_signature(id)).collect();
        let similar = |a: &BTreeMap<usize, usize>, b: &BTreeMap<usize, usize>| -> bool {
            let shared: Vec<_> = a.keys().filter(|k| b.contains_key(k)).collect();
            if shared.is_empty() {
                return false;
            }
            let agree = shared.iter().filter(|&&&k| a[&k] == b[&k]).count();
            2 * agree >= shared.len()
        };
        // Greedy agglomeration: join the first group containing any
        // similar member (single-linkage).
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, sig) in signatures.iter().enumerate() {
            match groups
                .iter_mut()
                .find(|g| g.iter().any(|&j| similar(&signatures[j], sig)))
            {
                Some(g) => g.push(i),
                None => groups.push(vec![i]),
            }
        }
        groups
            .into_iter()
            .map(|g| g.into_iter().map(|i| alarmed[i]).collect())
            .collect()
    }

    /// Offline Viterbi smoothing: decodes the most likely hidden-state
    /// path for the recorded observable sequence under the learned
    /// `M_CO`. On clean data this agrees with the majority-voted
    /// correct states; large disagreements flag windows whose majority
    /// estimate the temporal model considers implausible.
    ///
    /// Returns `None` before bootstrap or when no decisive window has
    /// been processed; also `None` if the learned model assigns the
    /// observed sequence zero probability (possible after structural
    /// growth mid-stream).
    pub fn smoothed_correct_states(&self) -> Option<Vec<usize>> {
        self.global.smoothed_correct_states()
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        self.global.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sentinet_sim::{gdi, simulate};

    fn quiet_day_trace() -> (Trace, u64) {
        let mut cfg = gdi::day_config();
        cfg.loss_prob = 0.0;
        cfg.malformed_prob = 0.0;
        (
            simulate(&cfg, &mut StdRng::seed_from_u64(11)),
            cfg.sample_period,
        )
    }

    #[test]
    fn clean_day_bootstraps_and_produces_windows() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        let outcomes = p.process_trace(&trace);
        // 24 one-hour windows; the first also seeds the bootstrap but is
        // still identified and processed.
        assert_eq!(outcomes.len(), 24, "{}", outcomes.len());
        assert!(p.model_states().is_some());
        assert!(p.m_co().is_some());
    }

    #[test]
    fn explicit_initial_states_skip_bootstrap() {
        let (trace, period) = quiet_day_trace();
        let cfg = PipelineConfig {
            initial_states: Some(vec![
                vec![12.0, 94.0],
                vec![17.0, 84.0],
                vec![24.0, 70.0],
                vec![31.0, 56.0],
            ]),
            ..Default::default()
        };
        let mut p = Pipeline::new(cfg, period);
        let outcomes = p.process_trace(&trace);
        assert_eq!(outcomes.len(), 24);
    }

    #[test]
    fn restored_pipeline_continues_bit_identically() {
        let (trace, period) = quiet_day_trace();
        let delivered: Vec<_> = trace.delivered().collect();
        let split = delivered.len() / 2;

        // Baseline: one pipeline over the whole stream.
        let mut baseline = Pipeline::new(PipelineConfig::default(), period);
        let mut base_outcomes = Vec::new();
        for (time, sensor, reading) in &delivered {
            base_outcomes.extend(baseline.push_reading(*time, *sensor, reading));
        }
        base_outcomes.extend(baseline.finalize());

        // Snapshot mid-stream (after bootstrap has installed states),
        // round-trip through the durable text codec, restore, continue.
        let mut first = Pipeline::new(PipelineConfig::default(), period);
        let mut outcomes = Vec::new();
        for (time, sensor, reading) in &delivered[..split] {
            outcomes.extend(first.push_reading(*time, *sensor, reading));
        }
        let snap = first.snapshot();
        assert!(snap.global.states.is_some(), "bootstrap happened pre-split");
        let decoded =
            crate::checkpoint::decode_pipeline(&crate::checkpoint::encode_pipeline(&snap))
                .expect("codec round trip");
        assert_eq!(decoded, snap);
        let mut resumed =
            Pipeline::from_snapshot(PipelineConfig::default(), period, decoded).expect("restore");
        for (time, sensor, reading) in &delivered[split..] {
            outcomes.extend(resumed.push_reading(*time, *sensor, reading));
        }
        outcomes.extend(resumed.finalize());

        assert_eq!(outcomes, base_outcomes);
        assert_eq!(
            crate::checkpoint::encode_pipeline(&resumed.snapshot()),
            crate::checkpoint::encode_pipeline(&baseline.snapshot()),
            "restored pipeline's final state is byte-equal to the uninterrupted run"
        );
    }

    #[test]
    fn clean_trace_has_low_false_filtered_alarms() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        let outcomes = p.process_trace(&trace);
        let filtered: usize = outcomes.iter().map(|o| o.filtered_alarms.len()).sum();
        assert_eq!(filtered, 0, "clean data should raise no filtered alarms");
        for id in p.sensor_ids() {
            assert_eq!(p.classify(id), Diagnosis::ErrorFree);
        }
    }

    #[test]
    fn observable_equals_correct_on_clean_data() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        let outcomes = p.process_trace(&trace);
        // During a transition hour the overall-mean state can differ
        // from the majority state by one neighbor, so require agreement
        // in the large majority of windows rather than all of them.
        let mismatches = outcomes
            .iter()
            .filter(|o| o.observable != o.correct)
            .count();
        assert!(
            mismatches * 5 <= outcomes.len(),
            "{mismatches}/{} windows disagreed",
            outcomes.len()
        );
    }

    #[test]
    fn correct_model_is_available() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        p.process_trace(&trace);
        let mc = p.correct_model().unwrap();
        assert!(mc.num_states() >= 4);
        mc.transition().check(1e-6).unwrap();
    }

    #[test]
    fn raw_history_recorded_per_sensor() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        let outcomes = p.process_trace(&trace);
        let h = p.raw_alarm_history(SensorId(0)).unwrap();
        assert_eq!(h.len(), outcomes.len());
    }

    #[test]
    fn unknown_sensor_queries_are_none_or_default() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        p.process_trace(&trace);
        let ghost = SensorId(99);
        assert!(p.m_ce(ghost).is_none());
        assert!(p.raw_alarm_history(ghost).is_none());
        assert!(!p.ever_alarmed(ghost));
        assert_eq!(p.classify(ghost), Diagnosis::ErrorFree);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let mut p = Pipeline::new(PipelineConfig::default(), 300);
        let outcomes = p.process_trace(&Trace::new());
        assert!(outcomes.is_empty());
        assert!(p.model_states().is_none());
        assert!(p.correct_model().is_none());
        assert!(p.network_attack().is_none());
    }

    #[test]
    #[should_panic(expected = "sample period")]
    fn zero_sample_period_panics() {
        Pipeline::new(PipelineConfig::default(), 0);
    }

    #[test]
    fn state_history_covers_decisive_windows() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        let outcomes = p.process_trace(&trace);
        assert!(!p.state_history().is_empty());
        assert!(p.state_history().len() <= outcomes.len());
        for &(w, c, o) in p.state_history() {
            assert!(w < p.windows_processed());
            let slots = p.model_states().unwrap().num_slots();
            assert!(c < slots && o < slots);
        }
    }

    #[test]
    fn viterbi_smoothing_agrees_with_majority_on_clean_data() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        p.process_trace(&trace);
        let smoothed = p.smoothed_correct_states().expect("model available");
        let majority: Vec<usize> = p.state_history().iter().map(|&(_, c, _)| c).collect();
        assert_eq!(smoothed.len(), majority.len());
        let agree = smoothed
            .iter()
            .zip(&majority)
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            agree * 10 >= majority.len() * 8,
            "smoothing agreement {agree}/{}",
            majority.len()
        );
    }

    #[test]
    fn smoothing_without_data_is_none() {
        let p = Pipeline::new(PipelineConfig::default(), 300);
        assert!(p.smoothed_correct_states().is_none());
        assert!(p.state_history().is_empty());
    }

    #[test]
    fn classification_memo_matches_fresh_computation() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        p.process_trace(&trace);
        for id in p.sensor_ids() {
            let first = p.classify_with_confidence(id);
            // Second call must hit the memo and agree exactly.
            let second = p.classify_with_confidence(id);
            assert_eq!(first.0, second.0);
            assert_eq!(first.1.to_bits(), second.1.to_bits());
        }
        assert_eq!(p.network_attack(), p.network_attack());
    }

    #[test]
    fn recycled_outcomes_do_not_leak_old_alarms() {
        let (trace, period) = quiet_day_trace();
        let mut baseline = Pipeline::new(PipelineConfig::default(), period);
        let expected = baseline.process_trace(&trace);

        let mut pooled = Pipeline::new(PipelineConfig::default(), period);
        let mut seeded = WindowOutcome::blank();
        seeded.raw_alarms = vec![SensorId(7); 4];
        seeded.filtered_alarms = vec![SensorId(9); 4];
        pooled.recycle_outcome(seeded);
        let mut got = Vec::new();
        for (time, sensor, reading) in trace.delivered() {
            for outcome in pooled.push_reading(time, sensor, reading) {
                got.push(outcome.clone());
                pooled.recycle_outcome(outcome);
            }
        }
        for outcome in pooled.finalize() {
            got.push(outcome);
        }
        assert_eq!(got, expected);
    }
}
