//! The collector-node detection pipeline (paper Fig. 1).
//!
//! One [`Pipeline`] instance runs on the data collector (base station /
//! cluster head) and executes, per observation window:
//!
//! 1. **Windowing** (Eq. 1) — incremental, via [`crate::window::Windower`];
//! 2. **Model State Identification** — online clustering with merge and
//!    spawn ([`sentinet_cluster::ModelStates`]), bootstrapped from the
//!    first window by k-means when no historical states are given;
//! 3. **Observable / Correct State Identification** and per-sensor
//!    mapping (Eqs. 2–4);
//! 4. **Alarm Generation** — raw alarm for every sensor whose label
//!    disagrees with the correct state;
//! 5. **Alarm Filtering** — k-of-n or SPRT per sensor;
//! 6. **Error/Attack Track Management** — per-sensor tracks feeding the
//!    `M_CE` estimators with `e_i = l_j` or ⊥;
//! 7. **HMM estimation** — the global `M_CO` (correct → observable) and
//!    per-sensor `M_CE` (correct → error) models, plus the Markov
//!    models `M_C` and `M_O`;
//! 8. **Classification** on demand via [`Pipeline::classify`].

use crate::classify::{
    classify_network, classify_sensor, AttackType, Diagnosis, NetworkEvidence, SensorEvidence,
};
use crate::config::{FilterPolicy, PipelineConfig};
use crate::window::{identify_states, ObservationWindow, WindowStates, Windower};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_cluster::{kmeans, ModelStates, StateEvent};
use sentinet_filter::{AlarmFilter, KOfNFilter, Sprt, SprtAlarmFilter};
use sentinet_hmm::{MarkovChain, OnlineHmmEstimator, OnlineMarkovEstimator, StochasticMatrix};
use sentinet_sim::{Reading, SensorId, Timestamp, Trace};
use std::collections::BTreeMap;

/// Symbol index reserved for the fictitious ⊥ state of `M_CE`
/// (the sensor agrees with the correct state while its track is open).
pub const BOT_SYMBOL: usize = 0;

/// Summary of one processed observation window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutcome {
    /// Window index (0-based since stream start).
    pub index: u64,
    /// Window start time.
    pub start: Timestamp,
    /// Observable environment state `o_i`.
    pub observable: usize,
    /// Correct environment state `c_i`.
    pub correct: usize,
    /// Sensors whose window label disagreed with `c_i` (raw alarms).
    pub raw_alarms: Vec<SensorId>,
    /// Sensors whose filtered alarm is raised after this window.
    pub filtered_alarms: Vec<SensorId>,
    /// Structural clustering events (spawns/merges) this window.
    pub cluster_events: Vec<StateEvent>,
}

/// Open/close record of one error/attack track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackRecord {
    /// Window index at which the filtered alarm opened the track.
    pub opened: u64,
    /// Window index at which it cleared, if it has.
    pub closed: Option<u64>,
}

#[derive(Debug)]
struct SensorState {
    filter: Box<dyn AlarmFilter>,
    m_ce: OnlineHmmEstimator,
    track_open: bool,
    tracks: Vec<TrackRecord>,
    raw_history: Vec<(u64, bool)>,
    ever_alarmed: bool,
}

/// The full detection/diagnosis pipeline of the paper.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sentinet_core::{Pipeline, PipelineConfig};
/// use sentinet_sim::{gdi, simulate};
///
/// let cfg = gdi::day_config();
/// let trace = simulate(&cfg, &mut rand::rngs::StdRng::seed_from_u64(1));
/// let mut pipeline = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
/// let outcomes = pipeline.process_trace(&trace);
/// assert!(!outcomes.is_empty());
/// ```
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    windower: Windower,
    rng: StdRng,
    states: Option<ModelStates>,
    m_co: Option<OnlineHmmEstimator>,
    m_c: Option<OnlineMarkovEstimator>,
    m_o: Option<OnlineMarkovEstimator>,
    sensors: BTreeMap<SensorId, SensorState>,
    windows_processed: u64,
    bootstrap_points: Vec<Vec<f64>>,
    /// Per processed decisive window: (window index, correct state,
    /// observable state) — the `c_i`/`o_i` sequences of §3.
    state_history: Vec<(u64, usize, usize)>,
}

impl Pipeline {
    /// Creates a pipeline; `sample_period` is the sensor sampling period
    /// in seconds (window duration = `config.window_samples ×
    /// sample_period`, per Table 1's `w`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`PipelineConfig::validate`]) or `sample_period == 0`.
    pub fn new(config: PipelineConfig, sample_period: u64) -> Self {
        config.validate();
        assert!(sample_period > 0, "sample period must be positive");
        let windower = Windower::new(config.window_samples as u64 * sample_period);
        let rng = StdRng::seed_from_u64(config.seed);
        let mut pipeline = Self {
            config,
            windower,
            rng,
            states: None,
            m_co: None,
            m_c: None,
            m_o: None,
            sensors: BTreeMap::new(),
            windows_processed: 0,
            bootstrap_points: Vec::new(),
            state_history: Vec::new(),
        };
        if let Some(init) = pipeline.config.initial_states.clone() {
            pipeline.install_states(init);
        }
        pipeline
    }

    fn install_states(&mut self, centroids: Vec<Vec<f64>>) {
        let m = centroids.len();
        self.states = Some(ModelStates::new(centroids, self.config.cluster.clone()));
        self.m_co = Some(
            OnlineHmmEstimator::new(m, m, self.config.beta, self.config.gamma)
                .expect("validated learning factors"),
        );
        self.m_c = Some(
            OnlineMarkovEstimator::new(m, self.config.beta).expect("validated learning factors"),
        );
        self.m_o = Some(
            OnlineMarkovEstimator::new(m, self.config.beta).expect("validated learning factors"),
        );
    }

    fn make_filter(&self) -> Box<dyn AlarmFilter> {
        match self.config.filter {
            FilterPolicy::KOfN { k, n } => Box::new(KOfNFilter::new(k, n)),
            FilterPolicy::Sprt {
                p0,
                p1,
                alpha,
                beta,
            } => Box::new(SprtAlarmFilter::new(Sprt::new(p0, p1, alpha, beta))),
        }
    }

    /// Initial `M_CE` observation matrix: hidden state `i`'s identity
    /// prior sits on symbol `i + 1` (symbol 0 is ⊥).
    fn make_m_ce(&self, num_slots: usize) -> OnlineHmmEstimator {
        let rows: Vec<Vec<f64>> = (0..num_slots)
            .map(|i| {
                let mut r = vec![0.0; num_slots + 1];
                r[i + 1] = 1.0;
                r
            })
            .collect();
        let b = StochasticMatrix::from_rows(rows).expect("rows are one-hot");
        let a = StochasticMatrix::identity(num_slots).expect("num_slots > 0");
        OnlineHmmEstimator::with_initial(a, b, self.config.beta, self.config.gamma)
            .expect("validated learning factors")
    }

    /// Grows every estimator to match the current model-state slot
    /// count (no-op when nothing spawned).
    fn grow_estimators(&mut self) {
        let slots = match &self.states {
            Some(s) => s.num_slots(),
            None => return,
        };
        if let Some(m_co) = self.m_co.as_mut() {
            m_co.grow(slots, slots);
        }
        if let Some(m_c) = self.m_c.as_mut() {
            m_c.grow(slots);
        }
        if let Some(m_o) = self.m_o.as_mut() {
            m_o.grow(slots);
        }
        for s in self.sensors.values_mut() {
            s.m_ce.grow(slots, slots + 1);
        }
    }

    /// Feeds one delivered reading; returns outcomes for any windows
    /// completed by this reading.
    ///
    /// # Panics
    ///
    /// Panics if readings arrive out of time order.
    pub fn push_reading(
        &mut self,
        time: Timestamp,
        sensor: SensorId,
        reading: Reading,
    ) -> Vec<WindowOutcome> {
        let completed = self.windower.push(time, sensor, reading);
        completed
            .into_iter()
            .filter_map(|w| self.process_window(w))
            .collect()
    }

    /// Processes an entire trace (delivered records only — lost and
    /// malformed packets never reach the collector's analysis, as in
    /// the paper) and flushes the final partial window.
    pub fn process_trace(&mut self, trace: &Trace) -> Vec<WindowOutcome> {
        let mut outcomes = Vec::new();
        for (time, sensor, reading) in trace.delivered() {
            outcomes.extend(self.push_reading(time, sensor, reading.clone()));
        }
        outcomes.extend(self.finalize());
        outcomes
    }

    /// Flushes the in-progress window at end of stream.
    pub fn finalize(&mut self) -> Vec<WindowOutcome> {
        match self.windower.finish() {
            Some(w) => self.process_window(w).into_iter().collect(),
            None => Vec::new(),
        }
    }

    fn process_window(&mut self, window: ObservationWindow) -> Option<WindowOutcome> {
        if self.states.is_none() {
            // Bootstrap: accumulate sensor representatives until k-means
            // has enough points for the requested initial state count.
            self.bootstrap_points
                .extend(window.sensor_means().into_values());
            let k = self.config.num_initial_states;
            if self.bootstrap_points.len() < k.max(2) {
                return None;
            }
            let points = std::mem::take(&mut self.bootstrap_points);
            let init = kmeans(&points, k, 100, &mut self.rng).centroids;
            self.install_states(init);
            // One bootstrap window rarely spans the environment's full
            // range, so several of the k centroids land on top of each
            // other; run one clustering round immediately so the merge
            // pass collapses them before any state identification.
            self.states
                .as_mut()
                .expect("just installed")
                .update(&points);
        }

        // An attack can shift the window mean into a region no sensor
        // reading occupies; the observable state of Eq. 2 must still be
        // able to name it, so spawn a model state there when uncovered.
        if let Some(mean) = window.trimmed_mean(self.config.observable_trim) {
            if self
                .states
                .as_mut()
                .expect("installed above")
                .spawn_if_uncovered(&mean)
                .is_some()
            {
                self.grow_estimators();
            }
        }

        let ws: WindowStates = identify_states(
            &window,
            self.states.as_ref().expect("installed above"),
            self.config.observable_trim,
            self.config.majority_fraction,
        )?;

        if ws.decisive {
            self.state_history
                .push((self.windows_processed, ws.correct, ws.observable));
            // Update the global models.
            let m_co = self.m_co.as_mut().expect("installed with states");
            m_co.observe(ws.correct, ws.observable)
                .expect("states within estimator dims");
            self.m_c
                .as_mut()
                .expect("installed")
                .observe(ws.correct)
                .expect("state in range");
            self.m_o
                .as_mut()
                .expect("installed")
                .observe(ws.observable)
                .expect("state in range");
        }

        // Per-sensor alarms, filtering, tracks, M_CE updates.
        let window_index = self.windows_processed;
        let mut raw_alarms = Vec::new();
        let mut filtered_alarms = Vec::new();
        let num_slots = self.states.as_ref().expect("installed").num_slots();
        for (&id, &label) in ws.labels.iter().filter(|_| ws.decisive) {
            if !self.sensors.contains_key(&id) {
                let filter = self.make_filter();
                let m_ce = self.make_m_ce(num_slots);
                self.sensors.insert(
                    id,
                    SensorState {
                        filter,
                        m_ce,
                        track_open: false,
                        tracks: Vec::new(),
                        raw_history: Vec::new(),
                        ever_alarmed: false,
                    },
                );
            }
            let sensor = self.sensors.get_mut(&id).expect("inserted above");
            let raw = label != ws.correct;
            sensor.raw_history.push((window_index, raw));
            if raw {
                raw_alarms.push(id);
            }
            let filtered = sensor.filter.push(raw);
            if filtered {
                filtered_alarms.push(id);
                sensor.ever_alarmed = true;
            }
            match (sensor.track_open, filtered) {
                (false, true) => {
                    sensor.track_open = true;
                    sensor.tracks.push(TrackRecord {
                        opened: window_index,
                        closed: None,
                    });
                }
                (true, false) => {
                    sensor.track_open = false;
                    if let Some(t) = sensor.tracks.last_mut() {
                        t.closed = Some(window_index);
                    }
                }
                _ => {}
            }
            if sensor.track_open {
                let symbol = if raw { label + 1 } else { BOT_SYMBOL };
                sensor
                    .m_ce
                    .observe(ws.correct, symbol)
                    .expect("state and symbol within estimator dims");
            }
        }

        // Model-state maintenance (Eqs. 5–6 + merge/spawn), then grow
        // every estimator to the new slot count.
        let points: Vec<Vec<f64>> = ws.representatives.values().cloned().collect();
        let cluster_events = self.states.as_mut().expect("installed").update(&points);
        self.grow_estimators();

        self.windows_processed += 1;
        Some(WindowOutcome {
            index: window_index,
            start: window.start,
            observable: ws.observable,
            correct: ws.correct,
            raw_alarms,
            filtered_alarms,
            cluster_events,
        })
    }

    /// Number of windows fully processed (post-bootstrap).
    pub fn windows_processed(&self) -> u64 {
        self.windows_processed
    }

    /// The current model states, once bootstrapped.
    pub fn model_states(&self) -> Option<&ModelStates> {
        self.states.as_ref()
    }

    /// The global `M_CO` estimator, once bootstrapped.
    pub fn m_co(&self) -> Option<&OnlineHmmEstimator> {
        self.m_co.as_ref()
    }

    /// The per-sensor `M_CE` estimator.
    pub fn m_ce(&self, sensor: SensorId) -> Option<&OnlineHmmEstimator> {
        self.sensors.get(&sensor).map(|s| &s.m_ce)
    }

    /// The error/attack-free Markov model `M_C` of the environment —
    /// the pipeline's user-facing deliverable (paper Fig. 7).
    pub fn correct_model(&self) -> Option<MarkovChain> {
        self.m_c
            .as_ref()
            .map(|m| m.to_chain().expect("valid chain"))
    }

    /// The Markov model `M_O` of the observable states (useful for the
    /// random-noise discussion of §3.4).
    pub fn observable_model(&self) -> Option<MarkovChain> {
        self.m_o
            .as_ref()
            .map(|m| m.to_chain().expect("valid chain"))
    }

    /// Sensors seen so far.
    pub fn sensor_ids(&self) -> Vec<SensorId> {
        self.sensors.keys().copied().collect()
    }

    /// The raw-alarm history of a sensor as `(window, raw)` pairs
    /// (paper Fig. 12).
    pub fn raw_alarm_history(&self, sensor: SensorId) -> Option<&[(u64, bool)]> {
        self.sensors.get(&sensor).map(|s| s.raw_history.as_slice())
    }

    /// The error/attack tracks opened for a sensor.
    pub fn tracks(&self, sensor: SensorId) -> Option<&[TrackRecord]> {
        self.sensors.get(&sensor).map(|s| s.tracks.as_slice())
    }

    /// Whether a filtered alarm was ever raised for the sensor.
    pub fn ever_alarmed(&self, sensor: SensorId) -> bool {
        self.sensors
            .get(&sensor)
            .map(|s| s.ever_alarmed)
            .unwrap_or(false)
    }

    /// Centroids by slot (merged-away slots keep their last value).
    fn centroid_table(&self) -> Vec<Option<Vec<f64>>> {
        match &self.states {
            Some(states) => (0..states.num_slots())
                .map(|i| states.centroid_any(i).map(<[f64]>::to_vec))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Network-level evidence for classification.
    fn network_evidence(&self) -> Option<NetworkEvidence<'_>> {
        let m_co = self.m_co.as_ref()?;
        let active_rows: Vec<usize> = m_co
            .observation_evidence()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= self.config.min_state_evidence)
            .map(|(i, _)| i)
            .collect();
        Some(NetworkEvidence {
            b_co: m_co.observation(),
            active_rows,
            centroids: self.centroid_table(),
        })
    }

    /// Classifies the network-level situation: `Some(attack)` when the
    /// `M_CO` structure carries an attack signature.
    pub fn network_attack(&self) -> Option<AttackType> {
        let ev = self.network_evidence()?;
        classify_network(&ev, &self.config)
    }

    /// Classifies one sensor per the paper's Fig. 5 tree.
    ///
    /// A sensor that never raised a filtered alarm is
    /// [`Diagnosis::ErrorFree`]; if the network-level `M_CO` shows an
    /// attack signature, every alarmed sensor reports that attack;
    /// otherwise the sensor's own `M_CE` decides the error type.
    pub fn classify(&self, sensor: SensorId) -> Diagnosis {
        let Some(state) = self.sensors.get(&sensor) else {
            return Diagnosis::ErrorFree;
        };
        if !state.ever_alarmed {
            return Diagnosis::ErrorFree;
        }
        let Some(net) = self.network_evidence() else {
            return Diagnosis::ErrorFree;
        };
        if let Some(attack) = classify_network(&net, &self.config) {
            return Diagnosis::Attack(attack);
        }
        let active_rows: Vec<usize> = state
            .m_ce
            .observation_evidence()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= self.config.min_state_evidence)
            .map(|(i, _)| i)
            .collect();
        let ev = SensorEvidence {
            b_ce: state.m_ce.observation(),
            active_rows,
            alarmed: state.ever_alarmed,
        };
        classify_sensor(&net, &ev, &self.config)
    }

    /// Classifies one sensor and reports the confidence of the verdict
    /// — the normalized margin by which the deciding structural
    /// statistic cleared its threshold (see [`crate::confidence`]).
    pub fn classify_with_confidence(&self, sensor: SensorId) -> (Diagnosis, f64) {
        let diagnosis = self.classify(sensor);
        let Some(net) = self.network_evidence() else {
            return (diagnosis, 0.0);
        };
        let state = self.sensors.get(&sensor);
        let sensor_ev = state.map(|s| {
            let active_rows: Vec<usize> = s
                .m_ce
                .observation_evidence()
                .iter()
                .enumerate()
                .filter(|(_, &c)| c >= self.config.min_state_evidence)
                .map(|(i, _)| i)
                .collect();
            SensorEvidence {
                b_ce: s.m_ce.observation(),
                active_rows,
                alarmed: s.ever_alarmed,
            }
        });
        let confidence = crate::confidence::diagnosis_confidence(
            &net,
            sensor_ev.as_ref(),
            &diagnosis,
            self.windows_processed,
            &self.config,
        );
        (diagnosis, confidence)
    }

    /// Classifies every sensor seen so far.
    pub fn classify_all(&self) -> BTreeMap<SensorId, Diagnosis> {
        self.sensor_ids()
            .into_iter()
            .map(|id| (id, self.classify(id)))
            .collect()
    }

    /// The `(window, correct, observable)` state sequence of every
    /// decisive window — the paper's `c_i` and `o_i` series.
    pub fn state_history(&self) -> &[(u64, usize, usize)] {
        &self.state_history
    }

    /// The error signature of one sensor: for each hidden state with
    /// evidence (and not ⊥-dominated), the dominant error symbol of its
    /// `M_CE` row. Symbols are `slot + 1` indices (0 = ⊥), matching
    /// [`BOT_SYMBOL`].
    fn error_signature(&self, sensor: SensorId) -> BTreeMap<usize, usize> {
        let Some(state) = self.sensors.get(&sensor) else {
            return BTreeMap::new();
        };
        let b = state.m_ce.observation();
        state
            .m_ce
            .observation_evidence()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= self.config.min_state_evidence)
            .filter(|(i, _)| b[(*i, BOT_SYMBOL)] <= 0.5)
            .map(|(i, _)| {
                let row = b.row(i);
                let dominant = row
                    .iter()
                    .enumerate()
                    .skip(1) // never pick ⊥ as the signature symbol
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                    .map(|(k, _)| k)
                    .expect("rows are non-empty");
                (i, dominant)
            })
            .collect()
    }

    /// Groups the sensors that ever raised a filtered alarm by the
    /// similarity of their error behaviour: two sensors belong to the
    /// same group when their `M_CE` signatures (hidden state → dominant
    /// error symbol) agree on more than half of their shared hidden
    /// states.
    ///
    /// Coordination is the hallmark of the paper's attack model — an
    /// adversary reprograms *several* nodes to forge the same values —
    /// while independent faults produce idiosyncratic signatures. The
    /// grouping therefore separates attack participants from a sensor
    /// that merely happens to be faulty during an attack (which the
    /// Fig. 5 tree alone cannot; see `examples/server_farm.rs`).
    pub fn coordinated_groups(&self) -> Vec<Vec<SensorId>> {
        let alarmed: Vec<SensorId> = self
            .sensor_ids()
            .into_iter()
            .filter(|&id| self.ever_alarmed(id))
            .collect();
        let signatures: Vec<BTreeMap<usize, usize>> =
            alarmed.iter().map(|&id| self.error_signature(id)).collect();
        let similar = |a: &BTreeMap<usize, usize>, b: &BTreeMap<usize, usize>| -> bool {
            let shared: Vec<_> = a.keys().filter(|k| b.contains_key(k)).collect();
            if shared.is_empty() {
                return false;
            }
            let agree = shared.iter().filter(|&&&k| a[&k] == b[&k]).count();
            2 * agree >= shared.len()
        };
        // Greedy agglomeration: join the first group containing any
        // similar member (single-linkage).
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, sig) in signatures.iter().enumerate() {
            match groups
                .iter_mut()
                .find(|g| g.iter().any(|&j| similar(&signatures[j], sig)))
            {
                Some(g) => g.push(i),
                None => groups.push(vec![i]),
            }
        }
        groups
            .into_iter()
            .map(|g| g.into_iter().map(|i| alarmed[i]).collect())
            .collect()
    }

    /// Offline Viterbi smoothing: decodes the most likely hidden-state
    /// path for the recorded observable sequence under the learned
    /// `M_CO`. On clean data this agrees with the majority-voted
    /// correct states; large disagreements flag windows whose majority
    /// estimate the temporal model considers implausible.
    ///
    /// Returns `None` before bootstrap or when no decisive window has
    /// been processed; also `None` if the learned model assigns the
    /// observed sequence zero probability (possible after structural
    /// growth mid-stream).
    pub fn smoothed_correct_states(&self) -> Option<Vec<usize>> {
        let m_co = self.m_co.as_ref()?;
        if self.state_history.is_empty() {
            return None;
        }
        let observables: Vec<usize> = self.state_history.iter().map(|&(_, _, o)| o).collect();
        let hmm = m_co.to_hmm().ok()?;
        hmm.viterbi(&observables).ok().map(|v| v.states)
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use sentinet_sim::{gdi, simulate};

    fn quiet_day_trace() -> (Trace, u64) {
        let mut cfg = gdi::day_config();
        cfg.loss_prob = 0.0;
        cfg.malformed_prob = 0.0;
        (
            simulate(&cfg, &mut StdRng::seed_from_u64(11)),
            cfg.sample_period,
        )
    }

    #[test]
    fn clean_day_bootstraps_and_produces_windows() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        let outcomes = p.process_trace(&trace);
        // 24 one-hour windows; the first also seeds the bootstrap but is
        // still identified and processed.
        assert_eq!(outcomes.len(), 24, "{}", outcomes.len());
        assert!(p.model_states().is_some());
        assert!(p.m_co().is_some());
    }

    #[test]
    fn explicit_initial_states_skip_bootstrap() {
        let (trace, period) = quiet_day_trace();
        let cfg = PipelineConfig {
            initial_states: Some(vec![
                vec![12.0, 94.0],
                vec![17.0, 84.0],
                vec![24.0, 70.0],
                vec![31.0, 56.0],
            ]),
            ..Default::default()
        };
        let mut p = Pipeline::new(cfg, period);
        let outcomes = p.process_trace(&trace);
        assert_eq!(outcomes.len(), 24);
    }

    #[test]
    fn clean_trace_has_low_false_filtered_alarms() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        let outcomes = p.process_trace(&trace);
        let filtered: usize = outcomes.iter().map(|o| o.filtered_alarms.len()).sum();
        assert_eq!(filtered, 0, "clean data should raise no filtered alarms");
        for id in p.sensor_ids() {
            assert_eq!(p.classify(id), Diagnosis::ErrorFree);
        }
    }

    #[test]
    fn observable_equals_correct_on_clean_data() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        let outcomes = p.process_trace(&trace);
        // During a transition hour the overall-mean state can differ
        // from the majority state by one neighbor, so require agreement
        // in the large majority of windows rather than all of them.
        let mismatches = outcomes
            .iter()
            .filter(|o| o.observable != o.correct)
            .count();
        assert!(
            mismatches * 5 <= outcomes.len(),
            "{mismatches}/{} windows disagreed",
            outcomes.len()
        );
    }

    #[test]
    fn correct_model_is_available() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        p.process_trace(&trace);
        let mc = p.correct_model().unwrap();
        assert!(mc.num_states() >= 4);
        mc.transition().check(1e-6).unwrap();
    }

    #[test]
    fn raw_history_recorded_per_sensor() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        let outcomes = p.process_trace(&trace);
        let h = p.raw_alarm_history(SensorId(0)).unwrap();
        assert_eq!(h.len(), outcomes.len());
    }

    #[test]
    fn unknown_sensor_queries_are_none_or_default() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        p.process_trace(&trace);
        let ghost = SensorId(99);
        assert!(p.m_ce(ghost).is_none());
        assert!(p.raw_alarm_history(ghost).is_none());
        assert!(!p.ever_alarmed(ghost));
        assert_eq!(p.classify(ghost), Diagnosis::ErrorFree);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let mut p = Pipeline::new(PipelineConfig::default(), 300);
        let outcomes = p.process_trace(&Trace::new());
        assert!(outcomes.is_empty());
        assert!(p.model_states().is_none());
        assert!(p.correct_model().is_none());
        assert!(p.network_attack().is_none());
    }

    #[test]
    #[should_panic(expected = "sample period")]
    fn zero_sample_period_panics() {
        Pipeline::new(PipelineConfig::default(), 0);
    }

    #[test]
    fn state_history_covers_decisive_windows() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        let outcomes = p.process_trace(&trace);
        assert!(!p.state_history().is_empty());
        assert!(p.state_history().len() <= outcomes.len());
        for &(w, c, o) in p.state_history() {
            assert!(w < p.windows_processed());
            let slots = p.model_states().unwrap().num_slots();
            assert!(c < slots && o < slots);
        }
    }

    #[test]
    fn viterbi_smoothing_agrees_with_majority_on_clean_data() {
        let (trace, period) = quiet_day_trace();
        let mut p = Pipeline::new(PipelineConfig::default(), period);
        p.process_trace(&trace);
        let smoothed = p.smoothed_correct_states().expect("model available");
        let majority: Vec<usize> = p.state_history().iter().map(|&(_, c, _)| c).collect();
        assert_eq!(smoothed.len(), majority.len());
        let agree = smoothed
            .iter()
            .zip(&majority)
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            agree * 10 >= majority.len() * 8,
            "smoothing agreement {agree}/{}",
            majority.len()
        );
    }

    #[test]
    fn smoothing_without_data_is_none() {
        let p = Pipeline::new(PipelineConfig::default(), 300);
        assert!(p.smoothed_correct_states().is_none());
        assert!(p.state_history().is_empty());
    }
}
