//! Checkpoint snapshots of per-sensor pipeline state.
//!
//! The sharded engine's supervisor checkpoints every
//! [`SensorRuntime`](crate::SensorRuntime) at each window boundary so a
//! crashed shard can be respawned and replayed without losing model
//! state. A [`SensorSnapshot`] is plain data — the alarm filter's
//! [`FilterSnapshot`], the `M_CE` [`EstimatorState`] (which carries the
//! estimator's generation counter, keeping memo caches coherent across
//! a restore), and the track/alarm history — so it crosses thread
//! boundaries freely and can be serialized.
//!
//! The durable wire format is the hand-rolled text codec below
//! ([`encode_shard`]/[`decode_shard`]): floating-point fields are
//! written as the hexadecimal IEEE-754 bit pattern (`f64::to_bits`), so
//! a round-trip is bit-exact — the property the engine's kill-anywhere
//! determinism proof rests on. The `serde` derives on the snapshot
//! types are the workspace's usual offline marker stubs (see
//! `vendor/README.md`); they document intent but do no serialization.

use crate::runtime::TrackRecord;
use sentinet_filter::FilterSnapshot;
use sentinet_hmm::EstimatorState;
use sentinet_sim::SensorId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Plain-data image of one [`SensorRuntime`](crate::SensorRuntime),
/// produced by [`SensorRuntime::snapshot`](crate::SensorRuntime::snapshot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorSnapshot {
    /// Alarm-filter state.
    pub filter: FilterSnapshot,
    /// `M_CE` estimator state (includes its generation counter).
    pub m_ce: EstimatorState,
    /// Whether an error/attack track is currently open.
    pub track_open: bool,
    /// All tracks opened so far.
    pub tracks: Vec<TrackRecord>,
    /// Raw-alarm history as `(window, raw)` pairs.
    pub raw_history: Vec<(u64, bool)>,
    /// Whether a filtered alarm was ever raised.
    pub ever_alarmed: bool,
}

/// Error decoding or restoring a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint text failed to parse at `line`.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The checkpoint parsed but failed semantic re-validation.
    Invalid(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Malformed { line, reason } => {
                write!(f, "malformed checkpoint at line {line}: {reason}")
            }
            CheckpointError::Invalid(reason) => write!(f, "invalid checkpoint: {reason}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

const MAGIC: &str = "sentinet-checkpoint v1";

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn put_row(out: &mut String, tag: &str, row: &[f64]) {
    out.push_str(tag);
    for v in row {
        out.push(' ');
        out.push_str(&hex(*v));
    }
    out.push('\n');
}

/// Encodes one shard's sensors as durable checkpoint text.
pub fn encode_shard(sensors: &[(SensorId, SensorSnapshot)]) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    for (id, snap) in sensors {
        out.push_str(&format!("sensor {}\n", id.0));
        match &snap.filter {
            FilterSnapshot::KOfN { k, n, window } => {
                let bits: String = window.iter().map(|&b| if b { '1' } else { '0' }).collect();
                let bits = if bits.is_empty() { "-".into() } else { bits };
                out.push_str(&format!("filter kofn {k} {n} {bits}\n"));
            }
            FilterSnapshot::Sprt {
                llr_true,
                llr_false,
                upper,
                lower,
                llr,
                steps,
                raised,
            } => {
                out.push_str(&format!(
                    "filter sprt {} {} {} {} {} {steps} {}\n",
                    hex(*llr_true),
                    hex(*llr_false),
                    hex(*upper),
                    hex(*lower),
                    hex(*llr),
                    u8::from(*raised),
                ));
            }
        }
        let m = &snap.m_ce;
        let prev = m.prev_state.map_or("-".into(), |p| p.to_string());
        out.push_str(&format!(
            "mce {} {} {prev} {} {}\n",
            hex(m.beta),
            hex(m.gamma),
            m.steps,
            m.generation,
        ));
        for row in &m.a {
            put_row(&mut out, "a", row);
        }
        for row in &m.b {
            put_row(&mut out, "b", row);
        }
        let join = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        out.push_str(&format!(
            "counts {} {}\n",
            join(&m.state_counts),
            join(&m.obs_counts)
        ));
        out.push_str(&format!("track {}\n", u8::from(snap.track_open)));
        out.push_str("tracks");
        if snap.tracks.is_empty() {
            out.push_str(" -");
        }
        for t in &snap.tracks {
            let closed = t.closed.map_or("-".into(), |c| c.to_string());
            out.push_str(&format!(" {}:{closed}", t.opened));
        }
        out.push('\n');
        out.push_str("raw");
        if snap.raw_history.is_empty() {
            out.push_str(" -");
        }
        for (w, raw) in &snap.raw_history {
            out.push_str(&format!(" {w}:{}", u8::from(*raw)));
        }
        out.push('\n');
        out.push_str(&format!("alarmed {}\n", u8::from(snap.ever_alarmed)));
        out.push_str("end\n");
    }
    out
}

/// Cursor over checkpoint lines, tracking the 1-based position for
/// error reporting.
struct Lines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
    pos: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            iter: text.lines().enumerate(),
            pos: 0,
        }
    }

    fn next(&mut self) -> Option<&'a str> {
        let (i, line) = self.iter.next()?;
        self.pos = i + 1;
        Some(line)
    }

    fn fail<T>(&self, reason: impl Into<String>) -> Result<T, CheckpointError> {
        Err(CheckpointError::Malformed {
            line: self.pos,
            reason: reason.into(),
        })
    }
}

fn parse_hex(lines: &Lines<'_>, s: &str) -> Result<f64, CheckpointError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| CheckpointError::Malformed {
            line: lines.pos,
            reason: format!("bad hex float `{s}`: {e}"),
        })
}

fn parse_num<T: std::str::FromStr>(lines: &Lines<'_>, s: &str) -> Result<T, CheckpointError>
where
    T::Err: fmt::Display,
{
    s.parse().map_err(|e| CheckpointError::Malformed {
        line: lines.pos,
        reason: format!("bad number `{s}`: {e}"),
    })
}

fn parse_counts(lines: &Lines<'_>, s: &str) -> Result<Vec<u64>, CheckpointError> {
    if s.is_empty() {
        return lines.fail("empty count vector");
    }
    s.split(',').map(|c| parse_num(lines, c)).collect()
}

/// Decodes checkpoint text produced by [`encode_shard`].
///
/// # Errors
///
/// [`CheckpointError::Malformed`] on any syntax problem, with the
/// offending line. Semantic validation (stochastic rows etc.) happens
/// when the snapshot is restored into a runtime.
pub fn decode_shard(text: &str) -> Result<Vec<(SensorId, SensorSnapshot)>, CheckpointError> {
    let mut lines = Lines::new(text);
    match lines.next() {
        Some(MAGIC) => {}
        Some(other) => return lines.fail(format!("bad magic `{other}`")),
        None => return lines.fail("empty checkpoint"),
    }
    let mut sensors = Vec::new();
    while let Some(line) = lines.next() {
        if line.is_empty() {
            continue;
        }
        let Some(id) = line.strip_prefix("sensor ") else {
            return lines.fail(format!("expected `sensor <id>`, got `{line}`"));
        };
        let id = SensorId(parse_num(&lines, id)?);

        // Filter line.
        let Some(filter_line) = lines.next() else {
            return lines.fail("truncated: missing filter line");
        };
        let filter = if let Some(rest) = filter_line.strip_prefix("filter kofn ") {
            let parts: Vec<&str> = rest.split(' ').collect();
            if parts.len() != 3 {
                return lines.fail("filter kofn needs `k n bits`");
            }
            let window = if parts[2] == "-" {
                Vec::new()
            } else {
                parts[2]
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(false),
                        '1' => Ok(true),
                        other => Err(CheckpointError::Malformed {
                            line: lines.pos,
                            reason: format!("bad window bit `{other}`"),
                        }),
                    })
                    .collect::<Result<_, _>>()?
            };
            FilterSnapshot::KOfN {
                k: parse_num(&lines, parts[0])?,
                n: parse_num(&lines, parts[1])?,
                window,
            }
        } else if let Some(rest) = filter_line.strip_prefix("filter sprt ") {
            let parts: Vec<&str> = rest.split(' ').collect();
            if parts.len() != 7 {
                return lines.fail("filter sprt needs 7 fields");
            }
            FilterSnapshot::Sprt {
                llr_true: parse_hex(&lines, parts[0])?,
                llr_false: parse_hex(&lines, parts[1])?,
                upper: parse_hex(&lines, parts[2])?,
                lower: parse_hex(&lines, parts[3])?,
                llr: parse_hex(&lines, parts[4])?,
                steps: parse_num(&lines, parts[5])?,
                raised: parts[6] == "1",
            }
        } else {
            return lines.fail(format!("expected filter line, got `{filter_line}`"));
        };

        // Estimator header.
        let Some(mce_line) = lines.next() else {
            return lines.fail("truncated: missing mce line");
        };
        let Some(rest) = mce_line.strip_prefix("mce ") else {
            return lines.fail(format!("expected mce line, got `{mce_line}`"));
        };
        let parts: Vec<&str> = rest.split(' ').collect();
        if parts.len() != 5 {
            return lines.fail("mce needs `beta gamma prev steps generation`");
        }
        let beta = parse_hex(&lines, parts[0])?;
        let gamma = parse_hex(&lines, parts[1])?;
        let prev_state = if parts[2] == "-" {
            None
        } else {
            Some(parse_num(&lines, parts[2])?)
        };
        let steps = parse_num(&lines, parts[3])?;
        let generation = parse_num(&lines, parts[4])?;

        // Matrix rows, then counts.
        let mut a: Vec<Vec<f64>> = Vec::new();
        let mut b: Vec<Vec<f64>> = Vec::new();
        let (state_counts, obs_counts) = loop {
            let Some(row_line) = lines.next() else {
                return lines.fail("truncated: missing counts line");
            };
            if let Some(rest) = row_line.strip_prefix("a ") {
                let row = rest
                    .split(' ')
                    .map(|s| parse_hex(&lines, s))
                    .collect::<Result<Vec<f64>, _>>()?;
                a.push(row);
            } else if let Some(rest) = row_line.strip_prefix("b ") {
                let row = rest
                    .split(' ')
                    .map(|s| parse_hex(&lines, s))
                    .collect::<Result<Vec<f64>, _>>()?;
                b.push(row);
            } else if let Some(rest) = row_line.strip_prefix("counts ") {
                let parts: Vec<&str> = rest.split(' ').collect();
                if parts.len() != 2 {
                    return lines.fail("counts needs two vectors");
                }
                break (
                    parse_counts(&lines, parts[0])?,
                    parse_counts(&lines, parts[1])?,
                );
            } else {
                return lines.fail(format!("expected a/b/counts line, got `{row_line}`"));
            }
        };

        // Track flag, tracks, raw history, alarmed flag, end marker.
        let track_open = match lines.next() {
            Some("track 0") => false,
            Some("track 1") => true,
            _ => return lines.fail("expected `track 0|1`"),
        };
        let Some(tracks_line) = lines.next() else {
            return lines.fail("truncated: missing tracks line");
        };
        let Some(rest) = tracks_line.strip_prefix("tracks") else {
            return lines.fail(format!("expected tracks line, got `{tracks_line}`"));
        };
        let mut tracks = Vec::new();
        for item in rest.split_whitespace() {
            if item == "-" {
                continue;
            }
            let Some((opened, closed)) = item.split_once(':') else {
                return lines.fail(format!("bad track `{item}`"));
            };
            tracks.push(TrackRecord {
                opened: parse_num(&lines, opened)?,
                closed: if closed == "-" {
                    None
                } else {
                    Some(parse_num(&lines, closed)?)
                },
            });
        }
        let Some(raw_line) = lines.next() else {
            return lines.fail("truncated: missing raw line");
        };
        let Some(rest) = raw_line.strip_prefix("raw") else {
            return lines.fail(format!("expected raw line, got `{raw_line}`"));
        };
        let mut raw_history = Vec::new();
        for item in rest.split_whitespace() {
            if item == "-" {
                continue;
            }
            let Some((w, r)) = item.split_once(':') else {
                return lines.fail(format!("bad raw entry `{item}`"));
            };
            raw_history.push((parse_num(&lines, w)?, r == "1"));
        }
        let ever_alarmed = match lines.next() {
            Some("alarmed 0") => false,
            Some("alarmed 1") => true,
            _ => return lines.fail("expected `alarmed 0|1`"),
        };
        match lines.next() {
            Some("end") => {}
            _ => return lines.fail("expected `end`"),
        }

        sensors.push((
            id,
            SensorSnapshot {
                filter,
                m_ce: EstimatorState {
                    a,
                    b,
                    beta,
                    gamma,
                    prev_state,
                    state_counts,
                    obs_counts,
                    steps,
                    generation,
                },
                track_open,
                tracks,
                raw_history,
                ever_alarmed,
            },
        ));
    }
    Ok(sensors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilterPolicy, PipelineConfig};
    use crate::runtime::SensorRuntime;

    fn runtime_with_history(config: &PipelineConfig) -> SensorRuntime {
        let mut rt = SensorRuntime::new(config, 3);
        for w in 0..12u64 {
            // Disagreements on a burst so tracks open, close, reopen.
            let label = if (3..7).contains(&w) || w >= 10 { 2 } else { 1 };
            rt.step(w, label, 1);
        }
        rt
    }

    #[test]
    fn shard_codec_round_trips_kofn_and_sprt() {
        for filter in [
            FilterPolicy::KOfN { k: 2, n: 4 },
            FilterPolicy::Sprt {
                p0: 0.05,
                p1: 0.6,
                alpha: 0.01,
                beta: 0.01,
            },
        ] {
            let config = PipelineConfig {
                filter,
                ..PipelineConfig::default()
            };
            let shard = vec![
                (SensorId(0), runtime_with_history(&config).snapshot()),
                (SensorId(7), SensorRuntime::new(&config, 2).snapshot()),
            ];
            let decoded = decode_shard(&encode_shard(&shard)).expect("round trip");
            assert_eq!(decoded, shard);
        }
    }

    #[test]
    fn decode_reports_offending_line() {
        let config = PipelineConfig::default();
        let shard = vec![(SensorId(1), runtime_with_history(&config).snapshot())];
        let mut text = encode_shard(&shard);
        text = text.replace("alarmed", "alarme");
        let err = decode_shard(&text).expect_err("corrupted");
        match err {
            CheckpointError::Malformed { line, .. } => assert!(line > 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_bad_magic_and_empty() {
        assert!(decode_shard("").is_err());
        assert!(decode_shard("not a checkpoint\n").is_err());
    }

    #[test]
    fn restored_runtime_continues_bit_identically() {
        let config = PipelineConfig::default();
        let mut original = runtime_with_history(&config);
        let decoded =
            decode_shard(&encode_shard(&[(SensorId(0), original.snapshot())])).expect("round trip");
        let mut restored =
            SensorRuntime::from_snapshot(decoded[0].1.clone()).expect("valid snapshot");
        for w in 12..30u64 {
            let label = if w % 3 == 0 { 2 } else { 1 };
            assert_eq!(original.step(w, label, 1), restored.step(w, label, 1));
        }
        assert_eq!(original.m_ce(), restored.m_ce());
        assert_eq!(original.tracks(), restored.tracks());
    }
}
