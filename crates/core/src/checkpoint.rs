//! Checkpoint snapshots of per-sensor pipeline state.
//!
//! The sharded engine's supervisor checkpoints every
//! [`SensorRuntime`](crate::SensorRuntime) at each window boundary so a
//! crashed shard can be respawned and replayed without losing model
//! state. A [`SensorSnapshot`] is plain data — the alarm filter's
//! [`FilterSnapshot`], the `M_CE` [`EstimatorState`] (which carries the
//! estimator's generation counter, keeping memo caches coherent across
//! a restore), and the track/alarm history — so it crosses thread
//! boundaries freely and can be serialized.
//!
//! The durable wire format is the hand-rolled text codec below
//! ([`encode_shard`]/[`decode_shard`]): floating-point fields are
//! written as the hexadecimal IEEE-754 bit pattern (`f64::to_bits`), so
//! a round-trip is bit-exact — the property the engine's kill-anywhere
//! determinism proof rests on. The `serde` derives on the snapshot
//! types are the workspace's usual offline marker stubs (see
//! `vendor/README.md`); they document intent but do no serialization.

use crate::runtime::TrackRecord;
use sentinet_cluster::StatesSnapshot;
use sentinet_filter::FilterSnapshot;
use sentinet_hmm::{EstimatorState, MarkovState};
use sentinet_sim::SensorId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Plain-data image of one [`SensorRuntime`](crate::SensorRuntime),
/// produced by [`SensorRuntime::snapshot`](crate::SensorRuntime::snapshot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorSnapshot {
    /// Alarm-filter state.
    pub filter: FilterSnapshot,
    /// `M_CE` estimator state (includes its generation counter).
    pub m_ce: EstimatorState,
    /// Whether an error/attack track is currently open.
    pub track_open: bool,
    /// All tracks opened so far.
    pub tracks: Vec<TrackRecord>,
    /// Raw-alarm history as `(window, raw)` pairs.
    pub raw_history: Vec<(u64, bool)>,
    /// Whether a filtered alarm was ever raised.
    pub ever_alarmed: bool,
}

/// Plain-data image of the in-progress observation window, produced by
/// [`Windower::snapshot`](crate::Windower::snapshot). Only sensors with
/// at least one delivered reading appear, so a live windower (whose
/// recycled windows keep cleared per-sensor buffers around) and a
/// restored one encode identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowerSnapshot {
    /// Whether any reading has ever arrived.
    pub started: bool,
    /// Index of the in-progress window.
    pub index: u64,
    /// Start time of the in-progress window.
    pub start: u64,
    /// Per-sensor `(id, dims, flat row-major samples)` for every sensor
    /// with at least one reading in the in-progress window.
    pub readings: Vec<(SensorId, usize, Vec<f64>)>,
}

/// The bootstrapped portion of a [`GlobalSnapshot`]: the model states
/// and the three estimators that are installed together at bootstrap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalStates {
    /// The evolving model-state set.
    pub states: StatesSnapshot,
    /// The `M_CO` (correct → observable) estimator.
    pub m_co: EstimatorState,
    /// The `M_C` Markov model of the correct states.
    pub m_c: MarkovState,
    /// The `M_O` Markov model of the observable states.
    pub m_o: MarkovState,
}

/// Plain-data image of the [`GlobalModel`](crate::GlobalModel),
/// produced by [`GlobalModel::snapshot`](crate::GlobalModel::snapshot).
///
/// The model's RNG is deliberately *not* captured: it is consumed only
/// by the bootstrap k-means call that installs the states. Before
/// bootstrap it is still virgin (re-seeding from `config.seed` restores
/// it exactly); after bootstrap it is never drawn from again, so its
/// position is irrelevant to all future behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalSnapshot {
    /// Decisive windows processed so far.
    pub windows_processed: u64,
    /// The `(window, correct, observable)` decisive-window history.
    pub state_history: Vec<(u64, usize, usize)>,
    /// Window means accumulated toward the bootstrap k-means (empty
    /// once states are installed).
    pub bootstrap_points: Vec<Vec<f64>>,
    /// The bootstrapped state, once installed.
    pub states: Option<GlobalStates>,
}

/// Plain-data image of a whole [`Pipeline`](crate::Pipeline), produced
/// by [`Pipeline::snapshot`](crate::Pipeline::snapshot): the global
/// model, the in-progress window, and every per-sensor runtime.
/// Restoring with [`Pipeline::from_snapshot`](crate::Pipeline::from_snapshot)
/// yields a pipeline whose behaviour is bit-identical from this point
/// on — this is what turns the gateway checkpoint from a verification
/// fingerprint into a restore point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSnapshot {
    /// The coordinator-side global model.
    pub global: GlobalSnapshot,
    /// The in-progress observation window.
    pub windower: WindowerSnapshot,
    /// Every sensor's runtime, in ascending sensor order.
    pub sensors: Vec<(SensorId, SensorSnapshot)>,
}

/// Error decoding or restoring a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint text failed to parse at `line`.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The checkpoint parsed but failed semantic re-validation.
    Invalid(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Malformed { line, reason } => {
                write!(f, "malformed checkpoint at line {line}: {reason}")
            }
            CheckpointError::Invalid(reason) => write!(f, "invalid checkpoint: {reason}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

const MAGIC: &str = "sentinet-checkpoint v1";

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn put_row(out: &mut String, tag: &str, row: &[f64]) {
    out.push_str(tag);
    for v in row {
        out.push(' ');
        out.push_str(&hex(*v));
    }
    out.push('\n');
}

/// Encodes one shard's sensors as durable checkpoint text.
pub fn encode_shard(sensors: &[(SensorId, SensorSnapshot)]) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    for (id, snap) in sensors {
        out.push_str(&format!("sensor {}\n", id.0));
        match &snap.filter {
            FilterSnapshot::KOfN { k, n, window } => {
                let bits: String = window.iter().map(|&b| if b { '1' } else { '0' }).collect();
                let bits = if bits.is_empty() { "-".into() } else { bits };
                out.push_str(&format!("filter kofn {k} {n} {bits}\n"));
            }
            FilterSnapshot::Sprt {
                llr_true,
                llr_false,
                upper,
                lower,
                llr,
                steps,
                raised,
            } => {
                out.push_str(&format!(
                    "filter sprt {} {} {} {} {} {steps} {}\n",
                    hex(*llr_true),
                    hex(*llr_false),
                    hex(*upper),
                    hex(*lower),
                    hex(*llr),
                    u8::from(*raised),
                ));
            }
        }
        let m = &snap.m_ce;
        let prev = m.prev_state.map_or("-".into(), |p| p.to_string());
        out.push_str(&format!(
            "mce {} {} {prev} {} {}\n",
            hex(m.beta),
            hex(m.gamma),
            m.steps,
            m.generation,
        ));
        for row in &m.a {
            put_row(&mut out, "a", row);
        }
        for row in &m.b {
            put_row(&mut out, "b", row);
        }
        let join = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        out.push_str(&format!(
            "counts {} {}\n",
            join(&m.state_counts),
            join(&m.obs_counts)
        ));
        out.push_str(&format!("track {}\n", u8::from(snap.track_open)));
        out.push_str("tracks");
        if snap.tracks.is_empty() {
            out.push_str(" -");
        }
        for t in &snap.tracks {
            let closed = t.closed.map_or("-".into(), |c| c.to_string());
            out.push_str(&format!(" {}:{closed}", t.opened));
        }
        out.push('\n');
        out.push_str("raw");
        if snap.raw_history.is_empty() {
            out.push_str(" -");
        }
        for (w, raw) in &snap.raw_history {
            out.push_str(&format!(" {w}:{}", u8::from(*raw)));
        }
        out.push('\n');
        out.push_str(&format!("alarmed {}\n", u8::from(snap.ever_alarmed)));
        out.push_str("end\n");
    }
    out
}

/// Cursor over checkpoint lines, tracking the 1-based position for
/// error reporting.
struct Lines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
    pos: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            iter: text.lines().enumerate(),
            pos: 0,
        }
    }

    fn next(&mut self) -> Option<&'a str> {
        let (i, line) = self.iter.next()?;
        self.pos = i + 1;
        Some(line)
    }

    fn fail<T>(&self, reason: impl Into<String>) -> Result<T, CheckpointError> {
        Err(CheckpointError::Malformed {
            line: self.pos,
            reason: reason.into(),
        })
    }
}

fn parse_hex(lines: &Lines<'_>, s: &str) -> Result<f64, CheckpointError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| CheckpointError::Malformed {
            line: lines.pos,
            reason: format!("bad hex float `{s}`: {e}"),
        })
}

fn parse_num<T: std::str::FromStr>(lines: &Lines<'_>, s: &str) -> Result<T, CheckpointError>
where
    T::Err: fmt::Display,
{
    s.parse().map_err(|e| CheckpointError::Malformed {
        line: lines.pos,
        reason: format!("bad number `{s}`: {e}"),
    })
}

fn parse_counts(lines: &Lines<'_>, s: &str) -> Result<Vec<u64>, CheckpointError> {
    if s.is_empty() {
        return lines.fail("empty count vector");
    }
    s.split(',').map(|c| parse_num(lines, c)).collect()
}

/// Decodes checkpoint text produced by [`encode_shard`].
///
/// # Errors
///
/// [`CheckpointError::Malformed`] on any syntax problem, with the
/// offending line. Semantic validation (stochastic rows etc.) happens
/// when the snapshot is restored into a runtime.
pub fn decode_shard(text: &str) -> Result<Vec<(SensorId, SensorSnapshot)>, CheckpointError> {
    let mut lines = Lines::new(text);
    match lines.next() {
        Some(MAGIC) => {}
        Some(other) => return lines.fail(format!("bad magic `{other}`")),
        None => return lines.fail("empty checkpoint"),
    }
    let mut sensors = Vec::new();
    while let Some(line) = lines.next() {
        if line.is_empty() {
            continue;
        }
        let Some(id) = line.strip_prefix("sensor ") else {
            return lines.fail(format!("expected `sensor <id>`, got `{line}`"));
        };
        let id = SensorId(parse_num(&lines, id)?);

        // Filter line.
        let Some(filter_line) = lines.next() else {
            return lines.fail("truncated: missing filter line");
        };
        let filter = if let Some(rest) = filter_line.strip_prefix("filter kofn ") {
            let parts: Vec<&str> = rest.split(' ').collect();
            if parts.len() != 3 {
                return lines.fail("filter kofn needs `k n bits`");
            }
            let window = if parts[2] == "-" {
                Vec::new()
            } else {
                parts[2]
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(false),
                        '1' => Ok(true),
                        other => Err(CheckpointError::Malformed {
                            line: lines.pos,
                            reason: format!("bad window bit `{other}`"),
                        }),
                    })
                    .collect::<Result<_, _>>()?
            };
            FilterSnapshot::KOfN {
                k: parse_num(&lines, parts[0])?,
                n: parse_num(&lines, parts[1])?,
                window,
            }
        } else if let Some(rest) = filter_line.strip_prefix("filter sprt ") {
            let parts: Vec<&str> = rest.split(' ').collect();
            if parts.len() != 7 {
                return lines.fail("filter sprt needs 7 fields");
            }
            FilterSnapshot::Sprt {
                llr_true: parse_hex(&lines, parts[0])?,
                llr_false: parse_hex(&lines, parts[1])?,
                upper: parse_hex(&lines, parts[2])?,
                lower: parse_hex(&lines, parts[3])?,
                llr: parse_hex(&lines, parts[4])?,
                steps: parse_num(&lines, parts[5])?,
                raised: parts[6] == "1",
            }
        } else {
            return lines.fail(format!("expected filter line, got `{filter_line}`"));
        };

        // Estimator header.
        let Some(mce_line) = lines.next() else {
            return lines.fail("truncated: missing mce line");
        };
        let Some(rest) = mce_line.strip_prefix("mce ") else {
            return lines.fail(format!("expected mce line, got `{mce_line}`"));
        };
        let parts: Vec<&str> = rest.split(' ').collect();
        if parts.len() != 5 {
            return lines.fail("mce needs `beta gamma prev steps generation`");
        }
        let beta = parse_hex(&lines, parts[0])?;
        let gamma = parse_hex(&lines, parts[1])?;
        let prev_state = if parts[2] == "-" {
            None
        } else {
            Some(parse_num(&lines, parts[2])?)
        };
        let steps = parse_num(&lines, parts[3])?;
        let generation = parse_num(&lines, parts[4])?;

        // Matrix rows, then counts.
        let mut a: Vec<Vec<f64>> = Vec::new();
        let mut b: Vec<Vec<f64>> = Vec::new();
        let (state_counts, obs_counts) = loop {
            let Some(row_line) = lines.next() else {
                return lines.fail("truncated: missing counts line");
            };
            if let Some(rest) = row_line.strip_prefix("a ") {
                let row = rest
                    .split(' ')
                    .map(|s| parse_hex(&lines, s))
                    .collect::<Result<Vec<f64>, _>>()?;
                a.push(row);
            } else if let Some(rest) = row_line.strip_prefix("b ") {
                let row = rest
                    .split(' ')
                    .map(|s| parse_hex(&lines, s))
                    .collect::<Result<Vec<f64>, _>>()?;
                b.push(row);
            } else if let Some(rest) = row_line.strip_prefix("counts ") {
                let parts: Vec<&str> = rest.split(' ').collect();
                if parts.len() != 2 {
                    return lines.fail("counts needs two vectors");
                }
                break (
                    parse_counts(&lines, parts[0])?,
                    parse_counts(&lines, parts[1])?,
                );
            } else {
                return lines.fail(format!("expected a/b/counts line, got `{row_line}`"));
            }
        };

        // Track flag, tracks, raw history, alarmed flag, end marker.
        let track_open = match lines.next() {
            Some("track 0") => false,
            Some("track 1") => true,
            _ => return lines.fail("expected `track 0|1`"),
        };
        let Some(tracks_line) = lines.next() else {
            return lines.fail("truncated: missing tracks line");
        };
        let Some(rest) = tracks_line.strip_prefix("tracks") else {
            return lines.fail(format!("expected tracks line, got `{tracks_line}`"));
        };
        let mut tracks = Vec::new();
        for item in rest.split_whitespace() {
            if item == "-" {
                continue;
            }
            let Some((opened, closed)) = item.split_once(':') else {
                return lines.fail(format!("bad track `{item}`"));
            };
            tracks.push(TrackRecord {
                opened: parse_num(&lines, opened)?,
                closed: if closed == "-" {
                    None
                } else {
                    Some(parse_num(&lines, closed)?)
                },
            });
        }
        let Some(raw_line) = lines.next() else {
            return lines.fail("truncated: missing raw line");
        };
        let Some(rest) = raw_line.strip_prefix("raw") else {
            return lines.fail(format!("expected raw line, got `{raw_line}`"));
        };
        let mut raw_history = Vec::new();
        for item in rest.split_whitespace() {
            if item == "-" {
                continue;
            }
            let Some((w, r)) = item.split_once(':') else {
                return lines.fail(format!("bad raw entry `{item}`"));
            };
            raw_history.push((parse_num(&lines, w)?, r == "1"));
        }
        let ever_alarmed = match lines.next() {
            Some("alarmed 0") => false,
            Some("alarmed 1") => true,
            _ => return lines.fail("expected `alarmed 0|1`"),
        };
        match lines.next() {
            Some("end") => {}
            _ => return lines.fail("expected `end`"),
        }

        sensors.push((
            id,
            SensorSnapshot {
                filter,
                m_ce: EstimatorState {
                    a,
                    b,
                    beta,
                    gamma,
                    prev_state,
                    state_counts,
                    obs_counts,
                    steps,
                    generation,
                },
                track_open,
                tracks,
                raw_history,
                ever_alarmed,
            },
        ));
    }
    Ok(sensors)
}

const PIPELINE_MAGIC: &str = "sentinet-pipeline v1";

fn put_hex_row(out: &mut String, tag: &str, row: &[f64]) {
    out.push_str(tag);
    for v in row {
        out.push(' ');
        out.push_str(&hex(*v));
    }
    out.push('\n');
}

fn join_u64(v: &[u64]) -> String {
    v.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

fn put_estimator(out: &mut String, tag: &str, m: &EstimatorState) {
    let prev = m.prev_state.map_or("-".into(), |p| p.to_string());
    out.push_str(&format!(
        "{tag} {} {} {prev} {} {}\n",
        hex(m.beta),
        hex(m.gamma),
        m.steps,
        m.generation,
    ));
    for row in &m.a {
        put_hex_row(out, &format!("{tag}-a"), row);
    }
    for row in &m.b {
        put_hex_row(out, &format!("{tag}-b"), row);
    }
    out.push_str(&format!(
        "{tag}-counts {} {}\n",
        join_u64(&m.state_counts),
        join_u64(&m.obs_counts)
    ));
}

fn put_markov(out: &mut String, tag: &str, m: &MarkovState) {
    let prev = m.prev.map_or("-".into(), |p| p.to_string());
    out.push_str(&format!(
        "{tag} {} {prev} {}\n",
        hex(m.beta),
        join_u64(&m.visits)
    ));
    for row in &m.transition {
        put_hex_row(out, &format!("{tag}-row"), row);
    }
}

/// Encodes a whole pipeline's restore-point snapshot as durable
/// checkpoint text. Floating-point fields use the same IEEE-754
/// bit-pattern encoding as [`encode_shard`] (whose output forms the
/// final section), so a round-trip is bit-exact and the encoding of a
/// live pipeline equals the encoding of its restored twin.
pub fn encode_pipeline(snap: &PipelineSnapshot) -> String {
    let mut out = String::new();
    out.push_str(PIPELINE_MAGIC);
    out.push('\n');
    let g = &snap.global;
    out.push_str(&format!("windows {}\n", g.windows_processed));
    out.push_str("history");
    if g.state_history.is_empty() {
        out.push_str(" -");
    }
    for (w, c, o) in &g.state_history {
        out.push_str(&format!(" {w}:{c}:{o}"));
    }
    out.push('\n');
    out.push_str(&format!("bootstrap {}\n", g.bootstrap_points.len()));
    for point in &g.bootstrap_points {
        put_hex_row(&mut out, "bp", point);
    }
    match &g.states {
        None => out.push_str("states 0\n"),
        Some(gs) => {
            out.push_str("states 1\n");
            let s = &gs.states;
            out.push_str(&format!(
                "cluster {} {} {} {} {}\n",
                hex(s.config.alpha),
                hex(s.config.merge_threshold),
                hex(s.config.spawn_threshold),
                s.config.max_states,
                s.generation,
            ));
            for (centroid, active) in s.centroids.iter().zip(&s.active) {
                put_hex_row(&mut out, &format!("slot {}", u8::from(*active)), centroid);
            }
            put_estimator(&mut out, "mco", &gs.m_co);
            put_markov(&mut out, "mc", &gs.m_c);
            put_markov(&mut out, "mo", &gs.m_o);
        }
    }
    let w = &snap.windower;
    out.push_str(&format!(
        "windower {} {} {}\n",
        u8::from(w.started),
        w.index,
        w.start
    ));
    for (id, dims, data) in &w.readings {
        put_hex_row(&mut out, &format!("wsensor {} {dims}", id.0), data);
    }
    out.push_str("sensors\n");
    out.push_str(&encode_shard(&snap.sensors));
    out
}

/// Line cursor with single-line pushback, for the sections of the
/// pipeline codec whose row counts are discovered by lookahead.
struct Cursor<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            lines: text.lines().collect(),
            pos: 0,
        }
    }

    fn next(&mut self) -> Option<&'a str> {
        let line = self.lines.get(self.pos).copied();
        if line.is_some() {
            self.pos += 1;
        }
        line
    }

    fn peek(&self) -> Option<&'a str> {
        self.lines.get(self.pos).copied()
    }

    fn fail<T>(&self, reason: impl Into<String>) -> Result<T, CheckpointError> {
        Err(CheckpointError::Malformed {
            line: self.pos,
            reason: reason.into(),
        })
    }

    fn hexf(&self, s: &str) -> Result<f64, CheckpointError> {
        u64::from_str_radix(s, 16)
            .map(f64::from_bits)
            .map_err(|e| CheckpointError::Malformed {
                line: self.pos,
                reason: format!("bad hex float `{s}`: {e}"),
            })
    }

    fn num<T: std::str::FromStr>(&self, s: &str) -> Result<T, CheckpointError>
    where
        T::Err: fmt::Display,
    {
        s.parse().map_err(|e| CheckpointError::Malformed {
            line: self.pos,
            reason: format!("bad number `{s}`: {e}"),
        })
    }

    fn hex_row(&self, rest: &str) -> Result<Vec<f64>, CheckpointError> {
        rest.split_whitespace().map(|s| self.hexf(s)).collect()
    }

    fn u64s(&self, s: &str) -> Result<Vec<u64>, CheckpointError> {
        if s.is_empty() {
            return Err(CheckpointError::Malformed {
                line: self.pos,
                reason: "empty count vector".into(),
            });
        }
        s.split(',').map(|c| self.num(c)).collect()
    }

    /// Consumes `<tag>-<suffix> …` rows while they match.
    fn rows(&mut self, prefix: &str) -> Result<Vec<Vec<f64>>, CheckpointError> {
        let mut rows = Vec::new();
        while let Some(line) = self.peek() {
            let Some(rest) = line.strip_prefix(prefix) else {
                break;
            };
            self.pos += 1;
            rows.push(self.hex_row(rest)?);
        }
        Ok(rows)
    }
}

fn parse_estimator(cur: &mut Cursor<'_>, tag: &str) -> Result<EstimatorState, CheckpointError> {
    let Some(line) = cur.next() else {
        return cur.fail(format!("truncated: missing {tag} line"));
    };
    let Some(rest) = line.strip_prefix(&format!("{tag} ")) else {
        return cur.fail(format!("expected {tag} line, got `{line}`"));
    };
    let parts: Vec<&str> = rest.split(' ').collect();
    if parts.len() != 5 {
        return cur.fail(format!("{tag} needs `beta gamma prev steps generation`"));
    }
    let beta = cur.hexf(parts[0])?;
    let gamma = cur.hexf(parts[1])?;
    let prev_state = if parts[2] == "-" {
        None
    } else {
        Some(cur.num(parts[2])?)
    };
    let steps = cur.num(parts[3])?;
    let generation = cur.num(parts[4])?;
    let a = cur.rows(&format!("{tag}-a "))?;
    let b = cur.rows(&format!("{tag}-b "))?;
    let Some(counts_line) = cur.next() else {
        return cur.fail(format!("truncated: missing {tag}-counts line"));
    };
    let Some(rest) = counts_line.strip_prefix(&format!("{tag}-counts ")) else {
        return cur.fail(format!("expected {tag}-counts line, got `{counts_line}`"));
    };
    let parts: Vec<&str> = rest.split(' ').collect();
    if parts.len() != 2 {
        return cur.fail(format!("{tag}-counts needs two vectors"));
    }
    Ok(EstimatorState {
        a,
        b,
        beta,
        gamma,
        prev_state,
        state_counts: cur.u64s(parts[0])?,
        obs_counts: cur.u64s(parts[1])?,
        steps,
        generation,
    })
}

fn parse_markov(cur: &mut Cursor<'_>, tag: &str) -> Result<MarkovState, CheckpointError> {
    let Some(line) = cur.next() else {
        return cur.fail(format!("truncated: missing {tag} line"));
    };
    let Some(rest) = line.strip_prefix(&format!("{tag} ")) else {
        return cur.fail(format!("expected {tag} line, got `{line}`"));
    };
    let parts: Vec<&str> = rest.split(' ').collect();
    if parts.len() != 3 {
        return cur.fail(format!("{tag} needs `beta prev visits`"));
    }
    let beta = cur.hexf(parts[0])?;
    let prev = if parts[1] == "-" {
        None
    } else {
        Some(cur.num(parts[1])?)
    };
    let visits = cur.u64s(parts[2])?;
    let transition = cur.rows(&format!("{tag}-row "))?;
    Ok(MarkovState {
        transition,
        beta,
        prev,
        visits,
    })
}

/// Decodes checkpoint text produced by [`encode_pipeline`].
///
/// # Errors
///
/// [`CheckpointError::Malformed`] on any syntax problem. Semantic
/// validation (stochastic rows, structural invariants) happens when the
/// snapshot is restored into a pipeline.
pub fn decode_pipeline(text: &str) -> Result<PipelineSnapshot, CheckpointError> {
    let Some((head, shard_text)) = text.split_once("\nsensors\n") else {
        return Err(CheckpointError::Malformed {
            line: 1,
            reason: "missing `sensors` section".into(),
        });
    };
    let mut cur = Cursor::new(head);
    match cur.next() {
        Some(PIPELINE_MAGIC) => {}
        Some(other) => return cur.fail(format!("bad pipeline magic `{other}`")),
        None => return cur.fail("empty pipeline snapshot"),
    }

    let windows_processed = match cur.next().and_then(|l| l.strip_prefix("windows ")) {
        Some(n) => cur.num(n)?,
        None => return cur.fail("expected `windows <n>`"),
    };
    let Some(history_line) = cur.next().and_then(|l| l.strip_prefix("history")) else {
        return cur.fail("expected history line");
    };
    let mut state_history = Vec::new();
    for item in history_line.split_whitespace() {
        if item == "-" {
            continue;
        }
        let mut it = item.split(':');
        let (Some(w), Some(c), Some(o), None) = (it.next(), it.next(), it.next(), it.next()) else {
            return cur.fail(format!("bad history entry `{item}`"));
        };
        state_history.push((cur.num(w)?, cur.num(c)?, cur.num(o)?));
    }
    let bootstrap_count: usize = match cur.next().and_then(|l| l.strip_prefix("bootstrap ")) {
        Some(n) => cur.num(n)?,
        None => return cur.fail("expected `bootstrap <n>`"),
    };
    let mut bootstrap_points = Vec::with_capacity(bootstrap_count);
    for _ in 0..bootstrap_count {
        match cur.next().and_then(|l| l.strip_prefix("bp ")) {
            Some(rest) => bootstrap_points.push(cur.hex_row(rest)?),
            None => return cur.fail("truncated bootstrap points"),
        }
    }

    let states = match cur.next() {
        Some("states 0") => None,
        Some("states 1") => {
            let Some(rest) = cur.next().and_then(|l| l.strip_prefix("cluster ")) else {
                return cur.fail("expected cluster line");
            };
            let parts: Vec<&str> = rest.split(' ').collect();
            if parts.len() != 5 {
                return cur.fail("cluster needs `alpha merge spawn max generation`");
            }
            let config = sentinet_cluster::ClusterConfig {
                alpha: cur.hexf(parts[0])?,
                merge_threshold: cur.hexf(parts[1])?,
                spawn_threshold: cur.hexf(parts[2])?,
                max_states: cur.num(parts[3])?,
            };
            let generation = cur.num(parts[4])?;
            let mut centroids = Vec::new();
            let mut active = Vec::new();
            while let Some(line) = cur.peek() {
                let Some(rest) = line.strip_prefix("slot ") else {
                    break;
                };
                cur.pos += 1;
                let (flag, row) = match rest.split_once(' ') {
                    Some((f, r)) => (f, r),
                    None => (rest, ""),
                };
                active.push(match flag {
                    "0" => false,
                    "1" => true,
                    other => return cur.fail(format!("bad slot flag `{other}`")),
                });
                centroids.push(cur.hex_row(row)?);
            }
            let m_co = parse_estimator(&mut cur, "mco")?;
            let m_c = parse_markov(&mut cur, "mc")?;
            let m_o = parse_markov(&mut cur, "mo")?;
            Some(GlobalStates {
                states: StatesSnapshot {
                    centroids,
                    active,
                    config,
                    generation,
                },
                m_co,
                m_c,
                m_o,
            })
        }
        _ => return cur.fail("expected `states 0|1`"),
    };

    let Some(rest) = cur.next().and_then(|l| l.strip_prefix("windower ")) else {
        return cur.fail("expected windower line");
    };
    let parts: Vec<&str> = rest.split(' ').collect();
    if parts.len() != 3 {
        return cur.fail("windower needs `started index start`");
    }
    let started = match parts[0] {
        "0" => false,
        "1" => true,
        other => return cur.fail(format!("bad windower started flag `{other}`")),
    };
    let index = cur.num(parts[1])?;
    let start = cur.num(parts[2])?;
    let mut readings = Vec::new();
    while let Some(line) = cur.next() {
        let Some(rest) = line.strip_prefix("wsensor ") else {
            return cur.fail(format!("expected wsensor line, got `{line}`"));
        };
        let mut it = rest.splitn(3, ' ');
        let (Some(id), Some(dims)) = (it.next(), it.next()) else {
            return cur.fail("wsensor needs `id dims values…`");
        };
        let id = SensorId(cur.num(id)?);
        let dims: usize = cur.num(dims)?;
        let data = cur.hex_row(it.next().unwrap_or(""))?;
        if dims == 0 || !data.len().is_multiple_of(dims) {
            return cur.fail(format!(
                "wsensor data length {} not a multiple of dims {dims}",
                data.len()
            ));
        }
        readings.push((id, dims, data));
    }

    let sensors = decode_shard(shard_text)?;
    Ok(PipelineSnapshot {
        global: GlobalSnapshot {
            windows_processed,
            state_history,
            bootstrap_points,
            states,
        },
        windower: WindowerSnapshot {
            started,
            index,
            start,
            readings,
        },
        sensors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilterPolicy, PipelineConfig};
    use crate::runtime::SensorRuntime;

    fn runtime_with_history(config: &PipelineConfig) -> SensorRuntime {
        let mut rt = SensorRuntime::new(config, 3);
        for w in 0..12u64 {
            // Disagreements on a burst so tracks open, close, reopen.
            let label = if (3..7).contains(&w) || w >= 10 { 2 } else { 1 };
            rt.step(w, label, 1);
        }
        rt
    }

    #[test]
    fn shard_codec_round_trips_kofn_and_sprt() {
        for filter in [
            FilterPolicy::KOfN { k: 2, n: 4 },
            FilterPolicy::Sprt {
                p0: 0.05,
                p1: 0.6,
                alpha: 0.01,
                beta: 0.01,
            },
        ] {
            let config = PipelineConfig {
                filter,
                ..PipelineConfig::default()
            };
            let shard = vec![
                (SensorId(0), runtime_with_history(&config).snapshot()),
                (SensorId(7), SensorRuntime::new(&config, 2).snapshot()),
            ];
            let decoded = decode_shard(&encode_shard(&shard)).expect("round trip");
            assert_eq!(decoded, shard);
        }
    }

    #[test]
    fn decode_reports_offending_line() {
        let config = PipelineConfig::default();
        let shard = vec![(SensorId(1), runtime_with_history(&config).snapshot())];
        let mut text = encode_shard(&shard);
        text = text.replace("alarmed", "alarme");
        let err = decode_shard(&text).expect_err("corrupted");
        match err {
            CheckpointError::Malformed { line, .. } => assert!(line > 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_bad_magic_and_empty() {
        assert!(decode_shard("").is_err());
        assert!(decode_shard("not a checkpoint\n").is_err());
    }

    fn sample_pipeline_snapshot(with_states: bool) -> PipelineSnapshot {
        let config = PipelineConfig::default();
        let states = with_states.then(|| GlobalStates {
            states: StatesSnapshot {
                centroids: vec![vec![1.5, -2.25], vec![0.125, 7.75], vec![0.0, 0.0]],
                active: vec![true, true, false],
                config: sentinet_cluster::ClusterConfig::default(),
                generation: 4,
            },
            m_co: {
                let mut est = sentinet_hmm::OnlineHmmEstimator::new(3, 3, 0.9, 0.9).unwrap();
                est.observe(0, 1).unwrap();
                est.observe(1, 1).unwrap();
                est.export_state()
            },
            m_c: {
                let mut m = sentinet_hmm::OnlineMarkovEstimator::new(3, 0.9).unwrap();
                m.observe(0).unwrap();
                m.observe(2).unwrap();
                m.export_state()
            },
            m_o: sentinet_hmm::OnlineMarkovEstimator::new(3, 0.9)
                .unwrap()
                .export_state(),
        });
        PipelineSnapshot {
            global: GlobalSnapshot {
                windows_processed: 17,
                state_history: vec![(3, 2, 2), (4, 3, 2)],
                bootstrap_points: vec![vec![1.0, 2.0], vec![-0.5, f64::MIN_POSITIVE]],
                states,
            },
            windower: WindowerSnapshot {
                started: true,
                index: 17,
                start: 17 * 3600,
                readings: vec![(SensorId(0), 2, vec![20.5, 50.0, 21.0, 49.5])],
            },
            sensors: vec![
                (SensorId(0), runtime_with_history(&config).snapshot()),
                (SensorId(3), SensorRuntime::new(&config, 2).snapshot()),
            ],
        }
    }

    #[test]
    fn pipeline_codec_round_trips_with_and_without_states() {
        for with_states in [false, true] {
            let snap = sample_pipeline_snapshot(with_states);
            let decoded = decode_pipeline(&encode_pipeline(&snap)).expect("round trip");
            assert_eq!(decoded, snap);
        }
    }

    #[test]
    fn pipeline_decode_rejects_malformed() {
        let snap = sample_pipeline_snapshot(true);
        let text = encode_pipeline(&snap);
        assert!(decode_pipeline("").is_err());
        assert!(decode_pipeline("bad magic\nsensors\n").is_err());
        assert!(decode_pipeline(&text.replace("\nsensors\n", "\n")).is_err());
        assert!(decode_pipeline(&text.replace("windower 1", "windower 2")).is_err());
        assert!(decode_pipeline(&text.replace("mco-counts", "mco-count")).is_err());
        let err = decode_pipeline(&text.replace("cluster ", "clutter ")).expect_err("corrupt");
        match err {
            CheckpointError::Malformed { line, .. } => assert!(line > 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn restored_runtime_continues_bit_identically() {
        let config = PipelineConfig::default();
        let mut original = runtime_with_history(&config);
        let decoded =
            decode_shard(&encode_shard(&[(SensorId(0), original.snapshot())])).expect("round trip");
        let mut restored =
            SensorRuntime::from_snapshot(decoded[0].1.clone()).expect("valid snapshot");
        for w in 12..30u64 {
            let label = if w % 3 == 0 { 2 } else { 1 };
            assert_eq!(original.step(w, label, 1), restored.step(w, label, 1));
        }
        assert_eq!(original.m_ce(), restored.m_ce());
        assert_eq!(original.tracks(), restored.tracks());
    }
}
