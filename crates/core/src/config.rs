//! Pipeline configuration (paper Table 1 plus implementation knobs).

use sentinet_cluster::ClusterConfig;
use sentinet_hmm::structure::OrthoTolerance;
use serde::{Deserialize, Serialize};

/// Alarm-filter policy selection for the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FilterPolicy {
    /// The paper's simple k-of-n filter.
    KOfN {
        /// Raw alarms required within the window.
        k: usize,
        /// Window length in pipeline steps.
        n: usize,
    },
    /// Wald SPRT on the raw-alarm rate.
    Sprt {
        /// Healthy raw-alarm probability.
        p0: f64,
        /// Faulty raw-alarm probability.
        p1: f64,
        /// Type-I error rate.
        alpha: f64,
        /// Type-II error rate.
        beta: f64,
    },
}

impl Default for FilterPolicy {
    fn default() -> Self {
        FilterPolicy::KOfN { k: 6, n: 10 }
    }
}

/// Configuration of the full detection/classification pipeline.
///
/// Defaults reproduce the paper's Table 1: `K = 10` sensors (implied by
/// the trace), `M = 6` initial model states, `w = 12` samples per
/// observation window, `α = 0.10`, `β = 0.90`, `γ = 0.90`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Samples per observation window (`w` in Table 1).
    pub window_samples: u32,
    /// Number of initial model states (`M` in Table 1), used when
    /// `initial_states` is `None` and the pipeline bootstraps by
    /// clustering its first window.
    pub num_initial_states: usize,
    /// Explicit initial model states (e.g. from offline k-means over
    /// historical data, as in §4.1). Overrides `num_initial_states`.
    pub initial_states: Option<Vec<Vec<f64>>>,
    /// Online clustering parameters; `alpha` is Table 1's `α`.
    pub cluster: ClusterConfig,
    /// Transition-matrix learning factor: the weight of the *newest*
    /// transition in the exponential update. The paper's Table 1 lists
    /// `β = 0.90`; its published matrices (stable 0.33/0.67 and
    /// 0.35/0.65 splits) are only producible when 0.90 is read as the
    /// *retention* weight, i.e. a new-sample weight of 0.10 — which is
    /// this field's default.
    pub beta: f64,
    /// Observation-matrix learning factor (new-sample weight; see
    /// `beta` for the Table 1 interpretation).
    pub gamma: f64,
    /// Alarm filter policy.
    pub filter: FilterPolicy,
    /// Orthogonality tolerances for classification.
    pub ortho: OrthoTolerance,
    /// Minimum per-row mass for the Eq. 7 stuck-at column test.
    pub stuck_at_threshold: f64,
    /// Minimum per-row mass for a one-to-one association (Eq. 8).
    pub association_threshold: f64,
    /// Fraction of reporting sensors the winning label must exceed for
    /// a window to be *decisive* (Eq. 4's majority assumption). The ⅔
    /// default keeps state-boundary windows — where honest sensors
    /// split across two states — from training the models with
    /// ambiguous correct states.
    pub majority_fraction: f64,
    /// Coefficient-of-variation bound below which per-attribute ratios
    /// or differences count as "constant" (calibration vs additive).
    pub constancy_cv: f64,
    /// Minimum associated-state pairs required before attempting the
    /// calibration/additive distinction.
    pub min_association_pairs: usize,
    /// Minimum evidence (update count) before a hidden state's row in
    /// **B** participates in structural analysis.
    pub min_state_evidence: u64,
    /// Minimum occupancy for a state to appear in the user-facing
    /// Markov model `M_C` (the paper drops its (16, 27) fluctuation
    /// state this way).
    pub key_state_occupancy: f64,
    /// Trim fraction for the robust observable-state mean (Eq. 2):
    /// `0` reproduces the paper's plain mean; the default `0.15` keeps
    /// one wildly faulty sensor of ten from dragging the observable
    /// state while coordinated ⅓-attacks still shift it.
    pub observable_trim: f64,
    /// Seed for the pipeline's internal RNG (bootstrap clustering).
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            window_samples: 12,
            num_initial_states: 6,
            initial_states: None,
            cluster: ClusterConfig::default(),
            beta: 0.10,
            gamma: 0.10,
            filter: FilterPolicy::default(),
            ortho: OrthoTolerance::default(),
            stuck_at_threshold: 0.5,
            association_threshold: 0.4,
            majority_fraction: 0.65,
            constancy_cv: 0.15,
            min_association_pairs: 2,
            min_state_evidence: 3,
            key_state_occupancy: 0.02,
            observable_trim: 0.15,
            seed: 0xD51_2006,
        }
    }
}

impl PipelineConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range learning factors, thresholds, or an empty
    /// window — configs are construction-time values.
    pub fn validate(&self) {
        assert!(
            self.window_samples > 0,
            "window must hold at least one sample"
        );
        assert!(
            self.beta > 0.0 && self.beta < 1.0 && self.gamma > 0.0 && self.gamma < 1.0,
            "learning factors must be in (0, 1)"
        );
        assert!(
            self.num_initial_states > 0 || self.initial_states.is_some(),
            "need initial states"
        );
        if let Some(init) = &self.initial_states {
            assert!(
                !init.is_empty(),
                "explicit initial states must be non-empty"
            );
        }
        assert!(
            (0.0..=1.0).contains(&self.stuck_at_threshold)
                && (0.0..=1.0).contains(&self.association_threshold),
            "thresholds must be probabilities"
        );
        assert!(self.constancy_cv > 0.0, "constancy CV must be positive");
        assert!(
            (0.5..1.0).contains(&self.majority_fraction),
            "majority fraction must be in [0.5, 1)"
        );
        assert!(
            (0.0..0.5).contains(&self.observable_trim),
            "observable trim must be in [0, 0.5)"
        );
        match &self.filter {
            FilterPolicy::KOfN { k, n } => {
                assert!(*k >= 1 && k <= n, "k-of-n requires 1 <= k <= n")
            }
            FilterPolicy::Sprt {
                p0,
                p1,
                alpha,
                beta,
            } => {
                assert!(
                    0.0 < *p0 && p0 < p1 && *p1 < 1.0,
                    "SPRT needs 0 < p0 < p1 < 1"
                );
                assert!(
                    *alpha > 0.0 && *alpha < 0.5 && *beta > 0.0 && *beta < 0.5,
                    "SPRT error rates in (0, 0.5)"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table1() {
        let c = PipelineConfig::default();
        assert_eq!(c.window_samples, 12);
        assert_eq!(c.num_initial_states, 6);
        assert!((c.cluster.alpha - 0.10).abs() < 1e-12);
        // Table 1's 0.90 is the retention weight: 1 − new-sample weight.
        assert!((1.0 - c.beta - 0.90).abs() < 1e-12);
        assert!((1.0 - c.gamma - 0.90).abs() < 1e-12);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "learning factors")]
    fn bad_beta_panics() {
        let c = PipelineConfig {
            beta: 1.0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let c = PipelineConfig {
            window_samples: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "k-of-n")]
    fn bad_filter_panics() {
        let c = PipelineConfig {
            filter: FilterPolicy::KOfN { k: 5, n: 2 },
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    fn sprt_policy_validates() {
        let c = PipelineConfig {
            filter: FilterPolicy::Sprt {
                p0: 0.05,
                p1: 0.6,
                alpha: 0.01,
                beta: 0.01,
            },
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "explicit initial states")]
    fn empty_explicit_states_panics() {
        let c = PipelineConfig {
            initial_states: Some(vec![]),
            ..Default::default()
        };
        c.validate();
    }
}
