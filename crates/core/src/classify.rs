//! Error-versus-attack classification (paper §3.4, Fig. 5).
//!
//! The classifier never looks at raw readings: it inspects the
//! *structure* of the observation matrices of the two HMMs.
//!
//! ```text
//! malfunction detected (filtered alarm on sensor j)
//! ├─ B^CO rows ⊥ AND columns ⊥ ?
//! │   ├─ no → ATTACK:
//! │   │   ├─ only column pairs non-⊥ → Dynamic Creation
//! │   │   ├─ only row pairs non-⊥    → Dynamic Deletion
//! │   │   └─ both                    → Mixed
//! │   └─ yes →
//! │       ├─ correct↔observable association non-identity,
//! │       │  attributes differ on every dimension → Dynamic Change
//! │       └─ identity → ERROR — inspect sensor j's B^CE (⊥ dropped):
//! │           ├─ single dominant column (Eq. 7)  → Stuck-at(state)
//! │           ├─ one-to-one association (Eq. 8):
//! │           │   ├─ ratio  x^c/x^e const per dim → Calibration
//! │           │   ├─ diff   x^c−x^e const per dim → Additive
//! │           │   └─ attrs all differ, 1-1        → Dynamic Change
//! │           └─ otherwise                        → Unknown
//! ```

use crate::config::PipelineConfig;
use sentinet_hmm::structure::{
    mean_var, one_to_one_association, stuck_at_column, OrthogonalityReport,
};

/// Minimum observable-symbol mass a hidden state must spread onto an
/// unclaimed column before it counts as a Dynamic Creation signature.
/// Below this, stray mass is indistinguishable from one or two windows
/// of estimation noise.
pub const CREATION_SPREAD_FLOOR: f64 = 0.15;
use sentinet_hmm::StochasticMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The specific accidental-error type (paper §3.3 fault model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ErrorType {
    /// Sensor constantly reports one model state (the stuck state's
    /// slot index is attached).
    StuckAt {
        /// Model-state slot the sensor is stuck reporting.
        state: usize,
    },
    /// Multiplicative mis-calibration; per-attribute estimated gains
    /// `x^c / x^e` inverted to `x^e / x^c` for readability.
    Calibration {
        /// Estimated per-attribute gain of the faulty sensor.
        gains: Vec<f64>,
    },
    /// Additive offset; per-attribute estimated offsets `x^e − x^c`.
    Additive {
        /// Estimated per-attribute offset of the faulty sensor.
        offsets: Vec<f64>,
    },
    /// Anomalous but matching no known model (the paper's Unknown
    /// Error; random-noise faults usually land here or go undetected).
    Unknown,
}

/// The specific attack type (paper §3.3 attack model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttackType {
    /// The adversary fabricated spurious environment state(s): the
    /// observable-state columns that absorb mass from a shared hidden
    /// state are attached.
    DynamicCreation {
        /// Observable states involved in the creation signature.
        created: Vec<usize>,
    },
    /// The adversary suppressed environment state(s): the hidden-state
    /// rows that collapse onto a shared observable state are attached.
    DynamicDeletion {
        /// Hidden states involved in the deletion signature.
        deleted: Vec<usize>,
    },
    /// The adversary remapped state attributes without changing the
    /// temporal structure; the non-identity hidden→observable pairs are
    /// attached.
    DynamicChange {
        /// `(correct state, observable state)` pairs, all non-identity.
        pairs: Vec<(usize, usize)>,
    },
    /// Creation and deletion signatures present simultaneously.
    Mixed,
}

/// Overall diagnosis for one sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Diagnosis {
    /// No filtered alarm was ever raised for the sensor.
    ErrorFree,
    /// Accidental error of the given type.
    Error(ErrorType),
    /// Malicious attack of the given type.
    Attack(AttackType),
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnosis::ErrorFree => write!(f, "error/attack-free"),
            Diagnosis::Error(ErrorType::StuckAt { state }) => {
                write!(f, "error: stuck-at state {state}")
            }
            Diagnosis::Error(ErrorType::Calibration { gains }) => {
                write!(f, "error: calibration, gains {gains:?}")
            }
            Diagnosis::Error(ErrorType::Additive { offsets }) => {
                write!(f, "error: additive, offsets {offsets:?}")
            }
            Diagnosis::Error(ErrorType::Unknown) => write!(f, "error: unknown type"),
            Diagnosis::Attack(AttackType::DynamicCreation { created }) => {
                write!(f, "attack: dynamic creation of states {created:?}")
            }
            Diagnosis::Attack(AttackType::DynamicDeletion { deleted }) => {
                write!(f, "attack: dynamic deletion of states {deleted:?}")
            }
            Diagnosis::Attack(AttackType::DynamicChange { pairs }) => {
                write!(f, "attack: dynamic change over pairs {pairs:?}")
            }
            Diagnosis::Attack(AttackType::Mixed) => write!(f, "attack: mixed"),
        }
    }
}

/// Everything the classifier needs about the network-level model
/// `M_CO`, precomputed once per classification round.
#[derive(Debug, Clone)]
pub struct NetworkEvidence<'a> {
    /// `B^CO`: observation matrix of the network HMM.
    pub b_co: &'a StochasticMatrix,
    /// Hidden-state rows of `B^CO` with enough evidence to analyze.
    pub active_rows: Vec<usize>,
    /// Current model-state centroids by slot (inactive slots `None`).
    pub centroids: Vec<Option<Vec<f64>>>,
}

/// Per-sensor evidence: the sensor's `M_CE` observation matrix.
#[derive(Debug, Clone)]
pub struct SensorEvidence<'a> {
    /// `B^CE` for the sensor, *including* the ⊥ column at index 0.
    pub b_ce: &'a StochasticMatrix,
    /// Hidden-state rows of `B^CE` with enough evidence.
    pub active_rows: Vec<usize>,
    /// Whether a filtered alarm was ever raised for the sensor.
    pub alarmed: bool,
}

/// Classifies the network-level matrix: is an attack reshaping the
/// hidden↔observable correspondence?
///
/// Returns `Some(attack)` when `B^CO` carries an attack signature,
/// `None` when it is structurally clean (error path applies).
pub fn classify_network(
    evidence: &NetworkEvidence<'_>,
    config: &PipelineConfig,
) -> Option<AttackType> {
    let report =
        OrthogonalityReport::analyze(evidence.b_co, config.ortho, Some(&evidence.active_rows));
    classify_network_with_report(evidence, &report, config)
}

/// [`classify_network`] with a precomputed orthogonality report for
/// `evidence.b_co` (restricted to `evidence.active_rows`). Callers that
/// memoize the report — it only changes when `M_CO` does — skip the
/// `O(m²·n)` Gram analysis on repeated classification queries.
pub fn classify_network_with_report(
    evidence: &NetworkEvidence<'_>,
    report: &OrthogonalityReport,
    _config: &PipelineConfig,
) -> Option<AttackType> {
    // Each active hidden row is summarized by its *substantial*
    // emissions (mass ≥ the spread floor). Hidden states and observable
    // symbols share the model-state space, so three shapes arise:
    //
    // - row emits only its own column           → clean;
    // - row emits exactly one foreign column    → change-pair candidate
    //   (the adversary remapped the state's attributes);
    // - row splits over ≥ 2 substantial columns → the foreign,
    //   *unclaimed* ones (states never serving as correct states — the
    //   paper's Table 7 state (25, 69) is exactly such a column) are
    //   fabricated: Dynamic Creation. Splits onto columns claimed by
    //   other hidden states are boundary/deletion artifacts, which the
    //   row-pair orthogonality test catches instead.
    let claimed: &[usize] = &evidence.active_rows;
    let mut created: Vec<usize> = Vec::new();
    let mut change_pairs: Vec<(usize, usize)> = Vec::new();
    for &r in &evidence.active_rows {
        let substantial: Vec<usize> = evidence
            .b_co
            .row(r)
            .iter()
            .enumerate()
            .filter(|(_, &m)| m >= CREATION_SPREAD_FLOOR)
            .map(|(c, _)| c)
            .collect();
        match substantial.as_slice() {
            [only] if *only == r => {}
            [only] => change_pairs.push((r, *only)),
            many => {
                for &col in many {
                    if col != r && !claimed.contains(&col) {
                        created.push(col);
                    }
                }
            }
        }
    }
    created.sort_unstable();
    created.dedup();
    let creation = !created.is_empty();
    let deletion = !report.row_violations.is_empty();
    match (creation, deletion) {
        (true, true) => Some(AttackType::Mixed),
        (true, false) => Some(AttackType::DynamicCreation { created }),
        (false, true) => {
            let mut deleted: Vec<usize> = report
                .row_violations
                .iter()
                .flat_map(|v| [v.first, v.second])
                .collect();
            deleted.sort_unstable();
            deleted.dedup();
            Some(AttackType::DynamicDeletion { deleted })
        }
        (false, false) => {
            if change_pairs.is_empty() {
                return None;
            }
            // Dynamic Change: one-to-one non-identity remapping whose
            // state attributes differ in every dimension (the paper's
            // ∀i: x_i^c ≠ x_i^o condition).
            let all_dims_differ = change_pairs.iter().all(|&(c, o)| {
                match (&evidence.centroids[c], &evidence.centroids[o]) {
                    (Some(cc), Some(oc)) => {
                        cc.iter().zip(oc).all(|(a, b)| (a - b).abs() > f64::EPSILON)
                    }
                    _ => false,
                }
            });
            if all_dims_differ {
                Some(AttackType::DynamicChange {
                    pairs: change_pairs,
                })
            } else {
                None
            }
        }
    }
}

/// Classifies one sensor's error type from its `M_CE` evidence, given
/// that the network-level matrix showed no attack signature.
pub fn classify_sensor(
    network: &NetworkEvidence<'_>,
    sensor: &SensorEvidence<'_>,
    config: &PipelineConfig,
) -> Diagnosis {
    if !sensor.alarmed {
        return Diagnosis::ErrorFree;
    }
    // Drop the ⊥ column (index 0) as the paper prescribes; remaining
    // column k corresponds to model-state slot k − 1 ... after dropping,
    // column indices shift down by one. Rows whose mass sits mostly on
    // ⊥ describe windows where the tracked sensor *agreed* with the
    // correct state — they carry no error signal, and renormalizing
    // their residue would fabricate one, so they are excluded from the
    // analysis along with the ⊥ column itself.
    let b = match sensor.b_ce.drop_columns(&[0]) {
        Ok(b) => b,
        Err(_) => return Diagnosis::Error(ErrorType::Unknown),
    };
    let active: Vec<usize> = sensor
        .active_rows
        .iter()
        .copied()
        .filter(|&i| sensor.b_ce[(i, 0)] <= 0.5)
        .collect();
    let sensor = SensorEvidence {
        b_ce: sensor.b_ce,
        active_rows: active,
        alarmed: sensor.alarmed,
    };
    let sensor = &sensor;

    // Eq. 7: stuck-at — one column dominates every active row.
    if let Some(col) = stuck_at_column(&b, config.stuck_at_threshold, Some(&sensor.active_rows)) {
        return Diagnosis::Error(ErrorType::StuckAt { state: col });
    }

    // Eq. 8: one-to-one correct↔error association.
    let assoc =
        match one_to_one_association(&b, config.association_threshold, Some(&sensor.active_rows)) {
            Some(a) => a,
            None => return Diagnosis::Error(ErrorType::Unknown),
        };

    // Resolve centroids: hidden row i ↔ slot i; error column k ↔ slot k
    // (the ⊥ drop re-aligned columns with slots).
    let pairs: Vec<(&[f64], &[f64])> = assoc
        .iter()
        .filter_map(
            |&(c, e)| match (&network.centroids.get(c), &network.centroids.get(e)) {
                (Some(Some(cc)), Some(Some(ec))) => Some((cc.as_slice(), ec.as_slice())),
                _ => None,
            },
        )
        .collect();
    if pairs.len() < config.min_association_pairs {
        return Diagnosis::Error(ErrorType::Unknown);
    }
    let dims = pairs[0].0.len();

    // Ratio constancy (per attribute): x^c / x^e ≈ const ⇒ calibration.
    let ratio_const = (0..dims).all(|d| {
        let ratios: Vec<f64> = pairs
            .iter()
            .filter(|(_, e)| e[d].abs() > 1e-9)
            .map(|(c, e)| c[d] / e[d])
            .collect();
        if ratios.len() < config.min_association_pairs {
            return false;
        }
        // sentinet-allow(expect-used): windows handed to mean_var are non-empty by construction
        let mv = mean_var(&ratios).expect("non-empty");
        mv.var.sqrt() <= config.constancy_cv * mv.mean.abs().max(1e-9)
    });
    // Difference constancy: x^c − x^e ≈ const ⇒ additive. The spread
    // is judged relative to max(|mean|, state spacing): an attribute
    // the fault leaves untouched has a ≈ 0 mean difference, and its
    // centroid-estimation noise must not fail the test.
    let diff_scale = config.cluster.spawn_threshold.max(1.0);
    let diff_stats: Vec<_> = (0..dims)
        .map(|d| {
            let diffs: Vec<f64> = pairs.iter().map(|(c, e)| c[d] - e[d]).collect();
            // sentinet-allow(expect-used): windows handed to mean_var are non-empty by construction
            mean_var(&diffs).expect("non-empty")
        })
        .collect();
    let diff_const = diff_stats
        .iter()
        .all(|mv| mv.var.sqrt() <= config.constancy_cv * mv.mean.abs().max(diff_scale));

    // When both tests pass (e.g. a pure shift over nearly collinear
    // states), prefer the model with the tighter relative spread on the
    // dominant attribute — matching the paper's procedure of comparing
    // the two variances.
    if ratio_const && !diff_const {
        return Diagnosis::Error(ErrorType::Calibration {
            gains: estimate_gains(&pairs, dims),
        });
    }
    if diff_const && !ratio_const {
        return Diagnosis::Error(ErrorType::Additive {
            offsets: diff_stats.iter().map(|mv| -mv.mean).collect(),
        });
    }
    if ratio_const && diff_const {
        let ratio_cv = max_cv(&pairs, dims, true);
        let diff_cv = max_cv(&pairs, dims, false);
        return if ratio_cv <= diff_cv {
            Diagnosis::Error(ErrorType::Calibration {
                gains: estimate_gains(&pairs, dims),
            })
        } else {
            Diagnosis::Error(ErrorType::Additive {
                offsets: diff_stats.iter().map(|mv| -mv.mean).collect(),
            })
        };
    }

    // Neither constant: the paper then re-checks for a Dynamic Change
    // attack; at the network level that was already excluded, so if the
    // sensor disagrees with every known error shape, report Unknown.
    Diagnosis::Error(ErrorType::Unknown)
}

fn estimate_gains(pairs: &[(&[f64], &[f64])], dims: usize) -> Vec<f64> {
    // Gain of the faulty sensor = x^e / x^c averaged over pairs.
    (0..dims)
        .map(|d| {
            let gains: Vec<f64> = pairs
                .iter()
                .filter(|(c, _)| c[d].abs() > 1e-9)
                .map(|(c, e)| e[d] / c[d])
                .collect();
            if gains.is_empty() {
                1.0
            } else {
                gains.iter().sum::<f64>() / gains.len() as f64
            }
        })
        .collect()
}

fn max_cv(pairs: &[(&[f64], &[f64])], dims: usize, ratio: bool) -> f64 {
    (0..dims)
        .map(|d| {
            let xs: Vec<f64> = pairs
                .iter()
                .filter(|(_, e)| !ratio || e[d].abs() > 1e-9)
                .map(|(c, e)| if ratio { c[d] / e[d] } else { c[d] - e[d] })
                .collect();
            match mean_var(&xs) {
                Some(mv) => mv.var.sqrt() / mv.mean.abs().max(1.0),
                None => f64::INFINITY,
            }
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PipelineConfig {
        PipelineConfig::default()
    }

    fn centroids() -> Vec<Option<Vec<f64>>> {
        vec![
            Some(vec![12.0, 94.0]),
            Some(vec![17.0, 84.0]),
            Some(vec![24.0, 70.0]),
            Some(vec![31.0, 56.0]),
            Some(vec![15.0, 1.0]),
        ]
    }

    fn identity_b(n: usize) -> StochasticMatrix {
        StochasticMatrix::identity(n).unwrap()
    }

    #[test]
    fn clean_network_classifies_none() {
        let b = identity_b(5);
        let ev = NetworkEvidence {
            b_co: &b,
            active_rows: vec![0, 1, 2, 3],
            centroids: centroids(),
        };
        assert_eq!(classify_network(&ev, &cfg()), None);
    }

    #[test]
    fn creation_signature() {
        // Hidden state 0 splits over observables 0 and 4.
        let b = StochasticMatrix::from_rows(vec![
            vec![0.35, 0.0, 0.0, 0.0, 0.65],
            vec![0.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        let ev = NetworkEvidence {
            b_co: &b,
            active_rows: vec![0, 1, 2, 3],
            centroids: centroids(),
        };
        match classify_network(&ev, &cfg()) {
            Some(AttackType::DynamicCreation { created }) => {
                // Only the fabricated state (col 4) is reported; col 0
                // is hidden state 0's own (claimed) emission.
                assert_eq!(created, vec![4]);
            }
            other => panic!("expected creation, got {other:?}"),
        }
    }

    #[test]
    fn deletion_signature() {
        // Hidden states 2 and 3 both emit observable 2.
        let b = StochasticMatrix::from_rows(vec![
            vec![1.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.999, 0.001, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        let ev = NetworkEvidence {
            b_co: &b,
            active_rows: vec![0, 1, 2, 3],
            centroids: centroids(),
        };
        match classify_network(&ev, &cfg()) {
            Some(AttackType::DynamicDeletion { deleted }) => {
                assert_eq!(deleted, vec![2, 3])
            }
            other => panic!("expected deletion, got {other:?}"),
        }
    }

    #[test]
    fn mixed_signature() {
        let b = StochasticMatrix::from_rows(vec![
            vec![0.4, 0.0, 0.0, 0.0, 0.6], // creation: row splits
            vec![0.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0, 0.0], // deletion: shares col 1
            vec![0.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        let ev = NetworkEvidence {
            b_co: &b,
            active_rows: vec![0, 1, 2, 3],
            centroids: centroids(),
        };
        assert_eq!(classify_network(&ev, &cfg()), Some(AttackType::Mixed));
    }

    #[test]
    fn change_signature() {
        // Orthogonal but permuted: state 2 observed as 3, 3 as 2.
        let b = StochasticMatrix::from_rows(vec![
            vec![1.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        let ev = NetworkEvidence {
            b_co: &b,
            active_rows: vec![0, 1, 2, 3],
            centroids: centroids(),
        };
        match classify_network(&ev, &cfg()) {
            Some(AttackType::DynamicChange { pairs }) => {
                assert_eq!(pairs, vec![(2, 3), (3, 2)])
            }
            other => panic!("expected change, got {other:?}"),
        }
    }

    fn bce(rows: Vec<Vec<f64>>) -> StochasticMatrix {
        StochasticMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn unalarmed_sensor_is_error_free() {
        let b_co = identity_b(5);
        let net = NetworkEvidence {
            b_co: &b_co,
            active_rows: vec![0, 1, 2, 3],
            centroids: centroids(),
        };
        let b = identity_b(6);
        let sens = SensorEvidence {
            b_ce: &b,
            active_rows: vec![],
            alarmed: false,
        };
        assert_eq!(classify_sensor(&net, &sens, &cfg()), Diagnosis::ErrorFree);
    }

    #[test]
    fn stuck_at_classification_matches_paper_table3() {
        let b_co = identity_b(5);
        let net = NetworkEvidence {
            b_co: &b_co,
            active_rows: vec![0, 1, 2, 3],
            centroids: centroids(),
        };
        // Columns: [⊥, slot0, slot1, slot2, slot3, slot4]; all mass on
        // slot 4 = the (15, 1) stuck state (paper Table 3 shape).
        let b = bce(vec![
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            vec![0.1, 0.0, 0.0, 0.0, 0.0, 0.9],
            vec![0.0, 0.0, 0.0, 0.33, 0.0, 0.67],
            vec![0.0, 0.01, 0.0, 0.0, 0.0, 0.99],
        ]);
        let sens = SensorEvidence {
            b_ce: &b,
            active_rows: vec![0, 1, 2, 3, 4],
            alarmed: true,
        };
        assert_eq!(
            classify_sensor(&net, &sens, &cfg()),
            Diagnosis::Error(ErrorType::StuckAt { state: 4 })
        );
    }

    #[test]
    fn calibration_classification() {
        let b_co = identity_b(4);
        // Centroids on a ray: state k ≈ 1.2 × state k−1 per attribute.
        let cents = vec![
            Some(vec![10.0, 50.0]),
            Some(vec![12.0, 60.0]),
            Some(vec![14.4, 72.0]),
            Some(vec![17.28, 86.4]),
        ];
        let net = NetworkEvidence {
            b_co: &b_co,
            active_rows: vec![0, 1, 2, 3],
            centroids: cents,
        };
        // Sensor reports state k+1 whenever the environment is in state
        // k: constant ratio x^c/x^e = 1/1.2.
        let b = bce(vec![
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0, 0.0, 0.0], // top state maps to ⊥ (agrees)
        ]);
        let sens = SensorEvidence {
            b_ce: &b,
            active_rows: vec![0, 1, 2],
            alarmed: true,
        };
        match classify_sensor(&net, &sens, &cfg()) {
            Diagnosis::Error(ErrorType::Calibration { gains }) => {
                assert!((gains[0] - 1.2).abs() < 1e-9, "gains {gains:?}");
            }
            other => panic!("expected calibration, got {other}"),
        }
    }

    #[test]
    fn additive_classification() {
        let b_co = identity_b(4);
        // States spaced unevenly; sensor reports state k+1 where the
        // *difference* is constant (+5, +25) but the ratio varies a lot.
        let cents = vec![
            Some(vec![5.0, 20.0]),
            Some(vec![10.0, 45.0]),
            Some(vec![15.0, 70.0]),
            Some(vec![20.0, 95.0]),
        ];
        let net = NetworkEvidence {
            b_co: &b_co,
            active_rows: vec![0, 1, 2, 3],
            centroids: cents,
        };
        let b = bce(vec![
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0, 0.0, 0.0],
        ]);
        let sens = SensorEvidence {
            b_ce: &b,
            active_rows: vec![0, 1, 2],
            alarmed: true,
        };
        match classify_sensor(&net, &sens, &cfg()) {
            Diagnosis::Error(ErrorType::Additive { offsets }) => {
                assert!((offsets[0] - 5.0).abs() < 1e-9, "offsets {offsets:?}");
                assert!((offsets[1] - 25.0).abs() < 1e-9, "offsets {offsets:?}");
            }
            other => panic!("expected additive, got {other}"),
        }
    }

    #[test]
    fn scattered_bce_is_unknown() {
        let b_co = identity_b(4);
        let net = NetworkEvidence {
            b_co: &b_co,
            active_rows: vec![0, 1, 2, 3],
            centroids: centroids()[..4].to_vec(),
        };
        // Every hidden state scatters over many error states: no stuck
        // column, no one-to-one map.
        let b = bce(vec![
            vec![0.1, 0.3, 0.2, 0.2, 0.2],
            vec![0.1, 0.2, 0.3, 0.2, 0.2],
            vec![0.1, 0.2, 0.2, 0.3, 0.2],
            vec![0.1, 0.2, 0.2, 0.2, 0.3],
        ]);
        let sens = SensorEvidence {
            b_ce: &b,
            active_rows: vec![0, 1, 2, 3],
            alarmed: true,
        };
        assert_eq!(
            classify_sensor(&net, &sens, &cfg()),
            Diagnosis::Error(ErrorType::Unknown)
        );
    }

    #[test]
    fn single_active_row_is_stuck_at() {
        // With one active hidden state, a single dominant column is by
        // definition the stuck-at signature (Eq. 7 holds trivially).
        let b_co = identity_b(3);
        let net = NetworkEvidence {
            b_co: &b_co,
            active_rows: vec![0, 1, 2],
            centroids: centroids()[..3].to_vec(),
        };
        let b = bce(vec![
            vec![0.0, 0.0, 1.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
        ]);
        let sens = SensorEvidence {
            b_ce: &b,
            active_rows: vec![0],
            alarmed: true,
        };
        assert_eq!(
            classify_sensor(&net, &sens, &cfg()),
            Diagnosis::Error(ErrorType::StuckAt { state: 1 })
        );
    }

    #[test]
    fn diagnosis_display() {
        assert_eq!(Diagnosis::ErrorFree.to_string(), "error/attack-free");
        assert!(Diagnosis::Error(ErrorType::StuckAt { state: 4 })
            .to_string()
            .contains("stuck-at state 4"));
        assert!(Diagnosis::Attack(AttackType::Mixed)
            .to_string()
            .contains("mixed"));
    }
}
