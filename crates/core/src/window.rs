//! Observation windowing (paper Eq. 1) and per-window state
//! identification (Eqs. 2–4).
//!
//! The collector groups delivered readings into windows of `w` sampling
//! instants. Within a window, each sensor contributes up to `w` readings
//! (GDI: `w = 12` five-minute samples ⇒ one-hour windows holding ≈ 100
//! usable readings of 120 sent — matching the paper's accounting).
//!
//! Per-window quantities:
//!
//! - the **observable state** `o_i` — the model state nearest the mean
//!   of *all* delivered readings (Eq. 2);
//! - per-sensor **state labels** `l_j` — each sensor's window-mean
//!   reading mapped to its nearest model state (Eq. 3, applied to the
//!   sensor's representative so a faulty sensor casts one vote, not
//!   `w`);
//! - the **correct state** `c_i` — the label shared by the largest
//!   group of sensors (Eq. 4), valid while a majority of sensors is
//!   uncompromised.
//!
//! Storage is allocation-conscious: windows hold each sensor's samples
//! in one flat `f64` buffer, the [`Windower`] recycles completed
//! windows, and the aggregate statistics can run entirely out of a
//! caller-owned [`WindowScratch`]. A pipeline in steady state performs
//! no per-reading or per-window heap allocation.

use crate::checkpoint::{CheckpointError, WindowerSnapshot};
use sentinet_cluster::ModelStates;
use sentinet_sim::{SensorId, Timestamp};
use std::collections::BTreeMap;

/// One sensor's delivered readings within a window, stored flat
/// (`len() × dims()` values) so a recycled window refills without
/// per-reading allocation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SensorSamples {
    dims: usize,
    data: Vec<f64>,
}

impl SensorSamples {
    /// Number of readings stored.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dims).unwrap_or(0)
    }

    /// True when the sensor delivered nothing this window.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Attribute dimensionality (0 until the first push).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Appends one reading's attribute values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or disagrees with the dimensionality
    /// of readings already stored.
    pub fn push(&mut self, values: &[f64]) {
        assert!(
            !values.is_empty(),
            "readings must have at least one attribute"
        );
        if self.data.is_empty() {
            self.dims = values.len();
        }
        assert_eq!(values.len(), self.dims, "inconsistent reading dimensions");
        self.data.extend_from_slice(values);
    }

    /// Iterates the stored readings as value slices, in arrival order.
    pub fn iter(&self) -> std::slice::ChunksExact<'_, f64> {
        self.data.chunks_exact(self.dims.max(1))
    }

    /// All values, flat (`len() × dims()`, row-major by arrival order).
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Clears stored readings, retaining capacity for reuse.
    fn clear(&mut self) {
        self.data.clear();
    }
}

/// All delivered readings of one observation window, grouped by sensor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObservationWindow {
    /// Window index `i` (0-based).
    pub index: u64,
    /// Start time of the window (inclusive).
    pub start: Timestamp,
    /// Delivered samples per sensor. Recycled windows keep per-sensor
    /// buffers around (cleared), so consumers must skip empty entries —
    /// [`ObservationWindow::sensors`] does.
    readings: BTreeMap<SensorId, SensorSamples>,
}

impl ObservationWindow {
    /// Appends one reading's values for `sensor`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or disagrees with the sensor's prior
    /// readings in this window.
    pub fn push(&mut self, sensor: SensorId, values: &[f64]) {
        self.readings.entry(sensor).or_default().push(values);
    }

    /// Per-sensor samples with at least one delivered reading, in
    /// ascending sensor order.
    pub fn sensors(&self) -> impl Iterator<Item = (SensorId, &SensorSamples)> {
        self.readings
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(&id, s)| (id, s))
    }

    /// Total delivered readings in the window.
    pub fn num_readings(&self) -> usize {
        self.readings.values().map(SensorSamples::len).sum()
    }

    /// True when no sensor delivered anything.
    pub fn is_empty(&self) -> bool {
        self.readings.values().all(SensorSamples::is_empty)
    }

    /// Clears all samples (keeping buffers) so the window can be
    /// refilled without allocating.
    fn reset(&mut self) {
        for s in self.readings.values_mut() {
            s.clear();
        }
    }

    /// Mean of all delivered readings (the Eq. 2 aggregate), `None` for
    /// an empty window.
    pub fn overall_mean(&self) -> Option<Vec<f64>> {
        let mut sum: Option<Vec<f64>> = None;
        let mut count = 0.0;
        for (_, samples) in self.sensors() {
            for values in samples.iter() {
                let s = sum.get_or_insert_with(|| vec![0.0; values.len()]);
                for (acc, &v) in s.iter_mut().zip(values) {
                    *acc += v;
                }
                count += 1.0;
            }
        }
        sum.map(|mut s| {
            s.iter_mut().for_each(|x| *x /= count);
            s
        })
    }

    /// Robust variant of [`ObservationWindow::overall_mean`]: drops the
    /// `trim` fraction of readings farthest (Euclidean) from the
    /// coordinate-wise median before averaging.
    ///
    /// With `trim = 0` this is exactly the paper's Eq. 2 aggregate. A
    /// positive trim keeps a *single* wildly faulty sensor (≈ 1/K of
    /// the readings) from dragging the observable state off the correct
    /// one, while a coordinated attack on ⅓ of the sensors still
    /// shifts the mean — see `DESIGN.md` for the analysis.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ trim < 0.5`.
    pub fn trimmed_mean(&self, trim: f64) -> Option<Vec<f64>> {
        let mut scratch = WindowScratch::default();
        self.trimmed_mean_with(trim, &mut scratch)
            .map(<[f64]>::to_vec)
    }

    /// Allocation-free [`ObservationWindow::trimmed_mean`]: all
    /// intermediates live in `scratch`, and the returned slice borrows
    /// `scratch.mean`. Bit-for-bit identical to the allocating path.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ trim < 0.5`.
    pub fn trimmed_mean_with<'a>(
        &self,
        trim: f64,
        scratch: &'a mut WindowScratch,
    ) -> Option<&'a [f64]> {
        assert!((0.0..0.5).contains(&trim), "trim must be in [0, 0.5)");
        // Flatten in canonical order: ascending sensor id, arrival order.
        scratch.flat.clear();
        let mut dims = 0;
        for (_, samples) in self.sensors() {
            if dims == 0 {
                dims = samples.dims();
            }
            scratch.flat.extend_from_slice(samples.as_flat());
        }
        if scratch.flat.is_empty() {
            return None;
        }
        let n = scratch.flat.len() / dims;
        scratch.mean.clear();
        scratch.mean.resize(dims, 0.0);
        // sentinet-allow(float-eq): exact zero selects the untrimmed
        // fast path; any positive trim takes the median path below.
        if trim == 0.0 {
            for point in scratch.flat.chunks_exact(dims) {
                for (m, &v) in scratch.mean.iter_mut().zip(point) {
                    *m += v;
                }
            }
            for m in &mut scratch.mean {
                *m /= n as f64;
            }
            return Some(&scratch.mean);
        }
        // Coordinate-wise median: selection finds the same element a
        // full sort would place at index len/2.
        scratch.median.clear();
        for d in 0..dims {
            scratch.column.clear();
            scratch
                .column
                .extend(scratch.flat.iter().skip(d).step_by(dims));
            let mid = scratch.column.len() / 2;
            let (_, &mut med, _) = scratch
                .column
                .select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
            scratch.median.push(med);
        }
        // Distance from the median per reading; keep the nearest `keep`.
        // Tie-breaking on the arrival index reproduces the stable order
        // a full stable sort over distances would yield.
        scratch.order.clear();
        for (i, point) in scratch.flat.chunks_exact(dims).enumerate() {
            let d2: f64 = point
                .iter()
                .zip(&scratch.median)
                .map(|(x, m)| (x - m) * (x - m))
                .sum();
            scratch.order.push((d2.sqrt(), i as u32));
        }
        let keep = ((n as f64) * (1.0 - trim)).ceil().max(1.0) as usize;
        let keep = keep.min(n);
        let cmp = |a: &(f64, u32), b: &(f64, u32)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
        if keep < n {
            scratch.order.select_nth_unstable_by(keep, cmp);
        }
        // Summation order matters for float reproducibility: sum the
        // kept readings in (distance, arrival) order, as the previous
        // sort-based implementation did.
        let kept = &mut scratch.order[..keep];
        kept.sort_unstable_by(cmp);
        for &(_, i) in kept.iter() {
            let point = &scratch.flat[i as usize * dims..(i as usize + 1) * dims];
            for (m, &v) in scratch.mean.iter_mut().zip(point) {
                *m += v;
            }
        }
        for m in &mut scratch.mean {
            *m /= keep as f64;
        }
        Some(&scratch.mean)
    }

    /// Per-sensor window-mean readings (each sensor's representative).
    pub fn sensor_means(&self) -> BTreeMap<SensorId, Vec<f64>> {
        self.sensors()
            .map(|(id, samples)| {
                let dims = samples.dims();
                let mut m = vec![0.0; dims];
                for values in samples.iter() {
                    for (acc, &v) in m.iter_mut().zip(values) {
                        *acc += v;
                    }
                }
                m.iter_mut().for_each(|x| *x /= samples.len() as f64);
                (id, m)
            })
            .collect()
    }
}

/// Reusable intermediates for the window aggregate statistics. One
/// instance per pipeline; contents are meaningless between calls.
#[derive(Debug, Clone, Default)]
pub struct WindowScratch {
    /// All window readings, flattened in canonical order.
    flat: Vec<f64>,
    /// One attribute column, for median selection.
    column: Vec<f64>,
    /// Coordinate-wise median of the window readings.
    median: Vec<f64>,
    /// (distance-from-median, arrival index) per reading.
    order: Vec<(f64, u32)>,
    /// The resulting mean — borrowed by `trimmed_mean_with`'s return.
    mean: Vec<f64>,
}

impl WindowScratch {
    /// Creates empty scratch buffers (they size themselves on use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Incremental windower: feed `(time, sensor, values)` in time order,
/// receive completed [`ObservationWindow`]s.
///
/// Completed windows can be handed back via [`Windower::recycle`]; the
/// windower then reuses their buffers instead of allocating fresh ones.
#[derive(Debug, Clone)]
pub struct Windower {
    window_duration: u64,
    current: ObservationWindow,
    started: bool,
    spare: Vec<ObservationWindow>,
}

/// How many recycled windows the windower keeps around. The serial
/// pipeline needs one; a small cushion covers bursts where a stream
/// jump completes several windows at once.
const MAX_SPARE_WINDOWS: usize = 8;

impl Windower {
    /// Creates a windower with windows of `window_duration` seconds
    /// (`w · sample_period`).
    ///
    /// # Panics
    ///
    /// Panics if `window_duration == 0`.
    pub fn new(window_duration: u64) -> Self {
        assert!(window_duration > 0, "window duration must be positive");
        Self {
            window_duration,
            current: ObservationWindow::default(),
            started: false,
            spare: Vec::new(),
        }
    }

    /// Window length in seconds.
    pub fn window_duration(&self) -> u64 {
        self.window_duration
    }

    /// Returns a processed window's buffers for reuse.
    pub fn recycle(&mut self, window: ObservationWindow) {
        if self.spare.len() < MAX_SPARE_WINDOWS {
            self.spare.push(window);
        }
    }

    /// Swaps in a cleared window for `index`, returning the finished one.
    fn roll_to(&mut self, index: u64) -> ObservationWindow {
        let mut fresh = self.spare.pop().unwrap_or_default();
        fresh.reset();
        fresh.index = index;
        fresh.start = index * self.window_duration;
        std::mem::replace(&mut self.current, fresh)
    }

    /// Feeds one delivered reading's values. Returns completed windows
    /// (possibly more than one if the stream jumps over empty windows).
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the current window (records must
    /// arrive in time order, as [`sentinet_sim::Trace`] guarantees).
    pub fn push(
        &mut self,
        time: Timestamp,
        sensor: SensorId,
        values: &[f64],
    ) -> Vec<ObservationWindow> {
        let target_index = time / self.window_duration;
        if !self.started {
            self.started = true;
            self.current.index = target_index;
            self.current.start = target_index * self.window_duration;
        }
        assert!(
            target_index >= self.current.index,
            "reading at t={time} precedes current window {}",
            self.current.index
        );
        let mut completed = Vec::new();
        while target_index > self.current.index {
            let done = self.roll_to(self.current.index + 1);
            // Skip emitting windows in which nothing arrived at all;
            // they carry no information (the paper requires w "large
            // enough to create nonempty sets").
            if done.is_empty() {
                self.recycle(done);
            } else {
                completed.push(done);
            }
        }
        self.current.index = target_index;
        self.current.start = target_index * self.window_duration;
        self.current.push(sensor, values);
        completed
    }

    /// Captures the in-progress window as a restore-point
    /// [`WindowerSnapshot`]. Only sensors with delivered readings are
    /// recorded, so a live windower (whose recycled windows keep
    /// cleared per-sensor buffers around) and its restored twin
    /// snapshot identically.
    pub fn snapshot(&self) -> WindowerSnapshot {
        WindowerSnapshot {
            started: self.started,
            index: self.current.index,
            start: self.current.start,
            readings: self
                .current
                .sensors()
                .map(|(id, s)| (id, s.dims(), s.as_flat().to_vec()))
                .collect(),
        }
    }

    /// Rebuilds a windower mid-window from a [`WindowerSnapshot`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Invalid`] when a sensor's flat sample buffer
    /// disagrees with its recorded dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `window_duration == 0` (as [`Windower::new`]).
    pub fn from_snapshot(
        window_duration: u64,
        snapshot: &WindowerSnapshot,
    ) -> Result<Self, CheckpointError> {
        let mut w = Self::new(window_duration);
        w.started = snapshot.started;
        w.current.index = snapshot.index;
        w.current.start = snapshot.start;
        for (id, dims, data) in &snapshot.readings {
            if *dims == 0 || !data.len().is_multiple_of(*dims) || data.is_empty() {
                return Err(CheckpointError::Invalid(format!(
                    "windower sensor {}: {} samples do not divide into dims {dims}",
                    id.0,
                    data.len()
                )));
            }
            for values in data.chunks_exact(*dims) {
                w.current.push(*id, values);
            }
        }
        Ok(w)
    }

    /// Flushes the in-progress window (end of stream).
    pub fn finish(&mut self) -> Option<ObservationWindow> {
        if self.current.is_empty() {
            None
        } else {
            let done = self.roll_to(self.current.index + 1);
            Some(done)
        }
    }
}

/// The per-window state-identification outcome (Eqs. 2–4).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStates {
    /// The observable environment state `o_i` (Eq. 2).
    pub observable: usize,
    /// The correct environment state `c_i` (Eq. 4).
    pub correct: usize,
    /// Per-sensor labels `l_j` (Eq. 3) over window-mean readings.
    pub labels: BTreeMap<SensorId, usize>,
    /// The per-sensor representatives used for labeling, for clustering
    /// updates downstream.
    pub representatives: BTreeMap<SensorId, Vec<f64>>,
    /// Whether the winning label holds a *strict majority* of the
    /// reporting sensors. Eq. 4 is only valid under the paper's
    /// majority assumption; windows without a strict majority (e.g. an
    /// honest split across a state boundary plus compromised sensors)
    /// are ambiguous and should not train models or drive alarms.
    pub decisive: bool,
}

/// Computes Eqs. 2–4 for `window` against the current model states.
///
/// `trim` is the robust-mean trim fraction for the observable state
/// (`0` = the paper's exact Eq. 2; see
/// [`ObservationWindow::trimmed_mean`]).
///
/// Returns `None` for an empty window.
///
/// # Panics
///
/// Panics unless `0 ≤ trim < 0.5`.
pub fn identify_states(
    window: &ObservationWindow,
    states: &ModelStates,
    trim: f64,
    majority_fraction: f64,
) -> Option<WindowStates> {
    let overall = window.trimmed_mean(trim)?;
    identify_states_with(window, states, &overall, majority_fraction)
}

/// [`identify_states`] with the window aggregate (Eq. 2 robust mean)
/// already computed — callers that also need the mean for coverage
/// checks avoid computing it twice.
pub fn identify_states_with(
    window: &ObservationWindow,
    states: &ModelStates,
    overall: &[f64],
    majority_fraction: f64,
) -> Option<WindowStates> {
    let observable = states.nearest(overall)?.0;
    let representatives = window.sensor_means();
    let mut labels = BTreeMap::new();
    for (&id, mean) in &representatives {
        let l = states.nearest(mean)?.0;
        labels.insert(id, l);
    }
    let (correct, decisive) = majority_vote(&labels, majority_fraction)?;
    Some(WindowStates {
        observable,
        correct,
        labels,
        representatives,
        decisive,
    })
}

/// Eq. 4: elects the state backed by the most sensor labels. Ties
/// break toward the lower state index (deterministic). Returns the
/// winner and whether it holds the required strict majority; `None`
/// when no sensor voted.
///
/// Shared by [`identify_states_with`] and the sharded engine's
/// coordinator so both vote identically.
pub fn majority_vote(
    labels: &BTreeMap<SensorId, usize>,
    majority_fraction: f64,
) -> Option<(usize, bool)> {
    let mut votes: BTreeMap<usize, usize> = BTreeMap::new();
    for &l in labels.values() {
        *votes.entry(l).or_insert(0) += 1;
    }
    let (&correct, &max_votes) = votes
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))?;
    let decisive = max_votes as f64 > majority_fraction * labels.len() as f64;
    Some((correct, decisive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinet_cluster::ClusterConfig;
    use sentinet_sim::Reading;

    fn states2() -> ModelStates {
        ModelStates::new(
            vec![vec![0.0, 0.0], vec![10.0, 10.0]],
            ClusterConfig {
                alpha: 0.1,
                merge_threshold: 1.0,
                spawn_threshold: 50.0,
                max_states: 8,
            },
        )
    }

    fn win(readings: &[(u16, Vec<f64>)]) -> ObservationWindow {
        let mut w = ObservationWindow::default();
        for (s, v) in readings {
            w.push(SensorId(*s), v);
        }
        w
    }

    #[test]
    fn windower_groups_by_duration() {
        let mut w = Windower::new(3_600);
        assert!(w.push(0, SensorId(0), &[1.0]).is_empty());
        assert!(w.push(300, SensorId(1), &[2.0]).is_empty());
        let done = w.push(3_600, SensorId(0), &[3.0]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].index, 0);
        assert_eq!(done[0].num_readings(), 2);
        let tail = w.finish().unwrap();
        assert_eq!(tail.index, 1);
        assert_eq!(tail.num_readings(), 1);
    }

    #[test]
    fn windower_skips_empty_gaps() {
        let mut w = Windower::new(100);
        w.push(0, SensorId(0), &[1.0]);
        let done = w.push(1_000, SensorId(0), &[2.0]);
        // Only the non-empty window 0 is emitted; windows 1..9 had no data.
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].index, 0);
    }

    #[test]
    #[should_panic(expected = "precedes current window")]
    fn out_of_order_panics() {
        let mut w = Windower::new(100);
        w.push(500, SensorId(0), &[1.0]);
        w.push(100, SensorId(0), &[1.0]);
    }

    #[test]
    fn windower_starts_at_first_reading_window() {
        let mut w = Windower::new(100);
        let done = w.push(550, SensorId(0), &[1.0]);
        assert!(done.is_empty());
        let tail = w.finish().unwrap();
        assert_eq!(tail.index, 5);
        assert_eq!(tail.start, 500);
    }

    #[test]
    fn finish_on_empty_is_none() {
        let mut w = Windower::new(100);
        assert!(w.finish().is_none());
    }

    #[test]
    fn recycled_windows_reuse_buffers_and_stay_equivalent() {
        let mut w = Windower::new(100);
        w.push(0, SensorId(3), &[1.0]);
        let done = w.push(100, SensorId(3), &[2.0]).remove(0);
        assert_eq!(done.num_readings(), 1);
        w.recycle(done);
        // The reading at t=100 opened window 1; completing that rolls
        // to window 2, which is backed by the recycled window-0
        // buffers. Stale sensor entries must not leak through.
        let mid = w.push(250, SensorId(7), &[4.0]).remove(0);
        assert_eq!(mid.index, 1);
        assert_eq!(mid.num_readings(), 1);
        w.recycle(mid);
        let next = w.push(300, SensorId(7), &[5.0]).remove(0);
        assert_eq!(next.index, 2);
        assert_eq!(next.num_readings(), 1);
        assert_eq!(next.sensors().count(), 1);
        assert_eq!(next.sensor_means()[&SensorId(7)], vec![4.0]);
        assert_eq!(next.overall_mean().unwrap(), vec![4.0]);
    }

    #[test]
    fn windower_snapshot_round_trips_mid_window() {
        let mut w = Windower::new(100);
        w.push(0, SensorId(0), &[1.0, 2.0]);
        w.push(250, SensorId(1), &[3.0, 4.0]);
        w.push(260, SensorId(1), &[5.0, 6.0]);
        let snap = w.snapshot();
        let mut restored = Windower::from_snapshot(100, &snap).expect("restore");
        // Both continue identically: same completed window on the next
        // roll, byte-equal re-snapshot.
        assert_eq!(restored.snapshot(), snap);
        let a = w.push(300, SensorId(0), &[7.0]).remove(0);
        let b = restored.push(300, SensorId(0), &[7.0]).remove(0);
        assert_eq!(a, b);
        assert_eq!(a.index, 2);

        // A never-started windower round-trips too.
        let empty = Windower::new(100);
        let snap = empty.snapshot();
        assert!(!snap.started);
        assert_eq!(
            Windower::from_snapshot(100, &snap).unwrap().snapshot(),
            snap
        );

        // Corrupt dims are rejected.
        let mut bad = w.snapshot();
        bad.readings[0].1 = 3;
        assert!(Windower::from_snapshot(100, &bad).is_err());
    }

    #[test]
    fn overall_mean_and_sensor_means() {
        let w = win(&[
            (0, vec![1.0, 2.0]),
            (0, vec![3.0, 4.0]),
            (1, vec![10.0, 10.0]),
        ]);
        assert_eq!(w.overall_mean().unwrap(), vec![14.0 / 3.0, 16.0 / 3.0]);
        let means = w.sensor_means();
        assert_eq!(means[&SensorId(0)], vec![2.0, 3.0]);
        assert_eq!(means[&SensorId(1)], vec![10.0, 10.0]);
    }

    #[test]
    fn trimmed_mean_matches_sort_based_reference() {
        // Reference implementation: full stable sort by distance from
        // the coordinate-wise median, as the original code did.
        fn reference(points: &[Vec<f64>], trim: f64) -> Vec<f64> {
            let dims = points[0].len();
            let mut median = Vec::new();
            for d in 0..dims {
                let mut xs: Vec<f64> = points.iter().map(|p| p[d]).collect();
                xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
                median.push(xs[xs.len() / 2]);
            }
            let dist = |p: &[f64]| {
                p.iter()
                    .zip(&median)
                    .map(|(x, m)| (x - m) * (x - m))
                    .sum::<f64>()
                    .sqrt()
            };
            let mut by_dist: Vec<&Vec<f64>> = points.iter().collect();
            by_dist.sort_by(|a, b| dist(a).partial_cmp(&dist(b)).unwrap());
            let keep = (points.len() as f64 * (1.0 - trim)).ceil().max(1.0) as usize;
            let kept = &by_dist[..keep.min(by_dist.len())];
            let mut mean = vec![0.0; dims];
            for p in kept {
                for (m, &v) in mean.iter_mut().zip(p.iter()) {
                    *m += v;
                }
            }
            mean.iter_mut().for_each(|m| *m /= kept.len() as f64);
            mean
        }

        // Includes exact distance ties (mirror-image points) to pin the
        // stable tie-breaking behavior.
        let pts = vec![
            vec![1.0, 2.0],
            vec![-1.0, 2.0],
            vec![3.0, -4.0],
            vec![-3.0, 8.0],
            vec![0.5, 2.0],
            vec![100.0, -50.0],
            vec![0.6, 1.9],
        ];
        let w = win(&pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u16, p.clone()))
            .collect::<Vec<_>>());
        for trim in [0.1, 0.15, 0.3, 0.49] {
            let got = w.trimmed_mean(trim).unwrap();
            let want = reference(&pts, trim);
            for (g, e) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), e.to_bits(), "trim {trim}");
            }
        }
    }

    #[test]
    fn trimmed_mean_with_reuses_scratch() {
        let w = win(&[(0, vec![1.0]), (1, vec![2.0]), (2, vec![50.0])]);
        let mut scratch = WindowScratch::new();
        let a = w.trimmed_mean_with(0.34, &mut scratch).unwrap().to_vec();
        let b = w.trimmed_mean(0.34).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, vec![1.5], "the outlier at 50 is trimmed");
        // Second query through the same scratch gives the same answer.
        let c = w.trimmed_mean_with(0.34, &mut scratch).unwrap().to_vec();
        assert_eq!(a, c);
    }

    #[test]
    fn empty_window_mean_is_none() {
        let w = ObservationWindow::default();
        assert!(w.overall_mean().is_none());
        assert!(identify_states(&w, &states2(), 0.0, 0.5).is_none());
    }

    #[test]
    fn identify_states_majority_vote() {
        // Three sensors near state 0, one outlier near state 1.
        let w = win(&[
            (0, vec![0.1, 0.2]),
            (1, vec![-0.3, 0.1]),
            (2, vec![0.2, -0.1]),
            (3, vec![9.5, 10.2]),
        ]);
        let s = identify_states(&w, &states2(), 0.0, 0.5).unwrap();
        assert_eq!(s.correct, 0);
        assert_eq!(s.labels[&SensorId(3)], 1);
        assert_eq!(s.labels[&SensorId(0)], 0);
        // Overall mean is dragged toward the outlier but stays nearer 0.
        assert_eq!(s.observable, 0);
    }

    #[test]
    fn observable_can_differ_from_correct() {
        // Two honest at state 0, two attackers pushing hard: the mean
        // crosses to state 1's basin while the majority label stays 0;
        // with 2-2 votes, tie-breaking favors the lower index.
        let w = win(&[
            (0, vec![0.0, 0.0]),
            (1, vec![0.5, 0.5]),
            (2, vec![20.0, 20.0]),
            (3, vec![20.0, 20.0]),
        ]);
        let s = identify_states(&w, &states2(), 0.0, 0.5).unwrap();
        assert_eq!(s.observable, 1, "mean (10.1, 10.1) is nearer state 1");
        assert_eq!(s.correct, 0, "tie breaks to lower state index");
    }

    #[test]
    fn single_sensor_window() {
        let w = win(&[(5, vec![9.0, 9.0])]);
        let s = identify_states(&w, &states2(), 0.0, 0.5).unwrap();
        assert_eq!(s.correct, 1);
        assert_eq!(s.observable, 1);
        assert_eq!(s.representatives.len(), 1);
    }

    #[test]
    fn sensor_samples_reject_dimension_mixups() {
        let mut s = SensorSamples::default();
        s.push(&[1.0, 2.0]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.dims(), 2);
        let result = std::panic::catch_unwind(move || {
            let mut s = s;
            s.push(&[1.0]);
        });
        assert!(result.is_err());
    }

    // Keep the Reading type in scope for API parity checks: the
    // pipeline feeds `Reading::values()` straight into `push`.
    #[test]
    fn push_accepts_reading_values() {
        let mut w = ObservationWindow::default();
        let r = Reading::new(vec![1.0, 2.0]);
        w.push(SensorId(0), r.values());
        assert_eq!(w.num_readings(), 1);
    }
}
