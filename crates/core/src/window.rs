//! Observation windowing (paper Eq. 1) and per-window state
//! identification (Eqs. 2–4).
//!
//! The collector groups delivered readings into windows of `w` sampling
//! instants. Within a window, each sensor contributes up to `w` readings
//! (GDI: `w = 12` five-minute samples ⇒ one-hour windows holding ≈ 100
//! usable readings of 120 sent — matching the paper's accounting).
//!
//! Per-window quantities:
//!
//! - the **observable state** `o_i` — the model state nearest the mean
//!   of *all* delivered readings (Eq. 2);
//! - per-sensor **state labels** `l_j` — each sensor's window-mean
//!   reading mapped to its nearest model state (Eq. 3, applied to the
//!   sensor's representative so a faulty sensor casts one vote, not
//!   `w`);
//! - the **correct state** `c_i` — the label shared by the largest
//!   group of sensors (Eq. 4), valid while a majority of sensors is
//!   uncompromised.

use sentinet_cluster::ModelStates;
use sentinet_sim::{Reading, SensorId, Timestamp};
use std::collections::BTreeMap;

/// All delivered readings of one observation window, grouped by sensor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObservationWindow {
    /// Window index `i` (0-based).
    pub index: u64,
    /// Start time of the window (inclusive).
    pub start: Timestamp,
    /// Delivered readings per sensor, in arrival order.
    pub readings: BTreeMap<SensorId, Vec<Reading>>,
}

impl ObservationWindow {
    /// Total delivered readings in the window.
    pub fn num_readings(&self) -> usize {
        self.readings.values().map(Vec::len).sum()
    }

    /// True when no sensor delivered anything.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// Mean of all delivered readings (the Eq. 2 aggregate), `None` for
    /// an empty window.
    pub fn overall_mean(&self) -> Option<Vec<f64>> {
        let mut sum: Option<Vec<f64>> = None;
        let mut count = 0.0;
        for r in self.readings.values().flatten() {
            let s = sum.get_or_insert_with(|| vec![0.0; r.dims()]);
            for (acc, &v) in s.iter_mut().zip(r.values()) {
                *acc += v;
            }
            count += 1.0;
        }
        sum.map(|mut s| {
            s.iter_mut().for_each(|x| *x /= count);
            s
        })
    }

    /// Robust variant of [`ObservationWindow::overall_mean`]: drops the
    /// `trim` fraction of readings farthest (Euclidean) from the
    /// coordinate-wise median before averaging.
    ///
    /// With `trim = 0` this is exactly the paper's Eq. 2 aggregate. A
    /// positive trim keeps a *single* wildly faulty sensor (≈ 1/K of
    /// the readings) from dragging the observable state off the correct
    /// one, while a coordinated attack on ⅓ of the sensors still
    /// shifts the mean — see `DESIGN.md` for the analysis.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ trim < 0.5`.
    pub fn trimmed_mean(&self, trim: f64) -> Option<Vec<f64>> {
        assert!((0.0..0.5).contains(&trim), "trim must be in [0, 0.5)");
        if trim == 0.0 {
            return self.overall_mean();
        }
        let all: Vec<&Reading> = self.readings.values().flatten().collect();
        if all.is_empty() {
            return None;
        }
        let dims = all[0].dims();
        // Coordinate-wise median.
        let mut median = Vec::with_capacity(dims);
        for d in 0..dims {
            let mut xs: Vec<f64> = all.iter().map(|r| r.values()[d]).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).expect("readings are finite"));
            median.push(xs[xs.len() / 2]);
        }
        // Sort by distance from the median, drop the tail.
        let mut by_dist: Vec<(f64, &Reading)> =
            all.iter().map(|r| (r.distance(&median), *r)).collect();
        by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
        let keep = (all.len() as f64 * (1.0 - trim)).ceil().max(1.0) as usize;
        let kept = &by_dist[..keep.min(by_dist.len())];
        let mut mean = vec![0.0; dims];
        for (_, r) in kept {
            for (m, &v) in mean.iter_mut().zip(r.values()) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= kept.len() as f64);
        Some(mean)
    }

    /// Per-sensor window-mean readings (each sensor's representative).
    pub fn sensor_means(&self) -> BTreeMap<SensorId, Vec<f64>> {
        self.readings
            .iter()
            .filter(|(_, rs)| !rs.is_empty())
            .map(|(&id, rs)| {
                let dims = rs[0].dims();
                let mut m = vec![0.0; dims];
                for r in rs {
                    for (acc, &v) in m.iter_mut().zip(r.values()) {
                        *acc += v;
                    }
                }
                m.iter_mut().for_each(|x| *x /= rs.len() as f64);
                (id, m)
            })
            .collect()
    }
}

/// Incremental windower: feed `(time, sensor, reading)` in time order,
/// receive completed [`ObservationWindow`]s.
#[derive(Debug, Clone)]
pub struct Windower {
    window_duration: u64,
    current: ObservationWindow,
    started: bool,
}

impl Windower {
    /// Creates a windower with windows of `window_duration` seconds
    /// (`w · sample_period`).
    ///
    /// # Panics
    ///
    /// Panics if `window_duration == 0`.
    pub fn new(window_duration: u64) -> Self {
        assert!(window_duration > 0, "window duration must be positive");
        Self {
            window_duration,
            current: ObservationWindow::default(),
            started: false,
        }
    }

    /// Window length in seconds.
    pub fn window_duration(&self) -> u64 {
        self.window_duration
    }

    /// Feeds one delivered reading. Returns completed windows (possibly
    /// more than one if the stream jumps over empty windows).
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the current window (records must
    /// arrive in time order, as [`sentinet_sim::Trace`] guarantees).
    pub fn push(
        &mut self,
        time: Timestamp,
        sensor: SensorId,
        reading: Reading,
    ) -> Vec<ObservationWindow> {
        let target_index = time / self.window_duration;
        if !self.started {
            self.started = true;
            self.current.index = target_index;
            self.current.start = target_index * self.window_duration;
        }
        assert!(
            target_index >= self.current.index,
            "reading at t={time} precedes current window {}",
            self.current.index
        );
        let mut completed = Vec::new();
        while target_index > self.current.index {
            let next_index = self.current.index + 1;
            let done = std::mem::take(&mut self.current);
            // Skip emitting windows in which nothing arrived at all;
            // they carry no information (the paper requires w "large
            // enough to create nonempty sets").
            if !done.is_empty() {
                completed.push(done);
            }
            self.current.index = next_index;
            self.current.start = next_index * self.window_duration;
        }
        self.current.index = target_index;
        self.current.start = target_index * self.window_duration;
        self.current
            .readings
            .entry(sensor)
            .or_default()
            .push(reading);
        completed
    }

    /// Flushes the in-progress window (end of stream).
    pub fn finish(&mut self) -> Option<ObservationWindow> {
        if self.current.is_empty() {
            None
        } else {
            let done = std::mem::take(&mut self.current);
            self.current.index = done.index + 1;
            self.current.start = self.current.index * self.window_duration;
            Some(done)
        }
    }
}

/// The per-window state-identification outcome (Eqs. 2–4).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStates {
    /// The observable environment state `o_i` (Eq. 2).
    pub observable: usize,
    /// The correct environment state `c_i` (Eq. 4).
    pub correct: usize,
    /// Per-sensor labels `l_j` (Eq. 3) over window-mean readings.
    pub labels: BTreeMap<SensorId, usize>,
    /// The per-sensor representatives used for labeling, for clustering
    /// updates downstream.
    pub representatives: BTreeMap<SensorId, Vec<f64>>,
    /// Whether the winning label holds a *strict majority* of the
    /// reporting sensors. Eq. 4 is only valid under the paper's
    /// majority assumption; windows without a strict majority (e.g. an
    /// honest split across a state boundary plus compromised sensors)
    /// are ambiguous and should not train models or drive alarms.
    pub decisive: bool,
}

/// Computes Eqs. 2–4 for `window` against the current model states.
///
/// `trim` is the robust-mean trim fraction for the observable state
/// (`0` = the paper's exact Eq. 2; see
/// [`ObservationWindow::trimmed_mean`]).
///
/// Returns `None` for an empty window.
///
/// # Panics
///
/// Panics unless `0 ≤ trim < 0.5`.
pub fn identify_states(
    window: &ObservationWindow,
    states: &ModelStates,
    trim: f64,
    majority_fraction: f64,
) -> Option<WindowStates> {
    let overall = window.trimmed_mean(trim)?;
    let observable = states.nearest(&overall)?.0;
    let representatives = window.sensor_means();
    let mut labels = BTreeMap::new();
    let mut votes: BTreeMap<usize, usize> = BTreeMap::new();
    for (&id, mean) in &representatives {
        let l = states.nearest(mean)?.0;
        labels.insert(id, l);
        *votes.entry(l).or_insert(0) += 1;
    }
    // Eq. 4: the state backed by the most sensors. Ties break toward
    // the lower state index (deterministic).
    let (&correct, &max_votes) = votes
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))?;
    let decisive = max_votes as f64 > majority_fraction * labels.len() as f64;
    Some(WindowStates {
        observable,
        correct,
        labels,
        representatives,
        decisive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinet_cluster::ClusterConfig;

    fn states2() -> ModelStates {
        ModelStates::new(
            vec![vec![0.0, 0.0], vec![10.0, 10.0]],
            ClusterConfig {
                alpha: 0.1,
                merge_threshold: 1.0,
                spawn_threshold: 50.0,
                max_states: 8,
            },
        )
    }

    fn win(readings: &[(u16, Vec<f64>)]) -> ObservationWindow {
        let mut w = ObservationWindow::default();
        for (s, v) in readings {
            w.readings
                .entry(SensorId(*s))
                .or_default()
                .push(Reading::new(v.clone()));
        }
        w
    }

    #[test]
    fn windower_groups_by_duration() {
        let mut w = Windower::new(3_600);
        assert!(w.push(0, SensorId(0), Reading::new(vec![1.0])).is_empty());
        assert!(w.push(300, SensorId(1), Reading::new(vec![2.0])).is_empty());
        let done = w.push(3_600, SensorId(0), Reading::new(vec![3.0]));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].index, 0);
        assert_eq!(done[0].num_readings(), 2);
        let tail = w.finish().unwrap();
        assert_eq!(tail.index, 1);
        assert_eq!(tail.num_readings(), 1);
    }

    #[test]
    fn windower_skips_empty_gaps() {
        let mut w = Windower::new(100);
        w.push(0, SensorId(0), Reading::new(vec![1.0]));
        let done = w.push(1_000, SensorId(0), Reading::new(vec![2.0]));
        // Only the non-empty window 0 is emitted; windows 1..9 had no data.
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].index, 0);
    }

    #[test]
    #[should_panic(expected = "precedes current window")]
    fn out_of_order_panics() {
        let mut w = Windower::new(100);
        w.push(500, SensorId(0), Reading::new(vec![1.0]));
        w.push(100, SensorId(0), Reading::new(vec![1.0]));
    }

    #[test]
    fn windower_starts_at_first_reading_window() {
        let mut w = Windower::new(100);
        let done = w.push(550, SensorId(0), Reading::new(vec![1.0]));
        assert!(done.is_empty());
        let tail = w.finish().unwrap();
        assert_eq!(tail.index, 5);
        assert_eq!(tail.start, 500);
    }

    #[test]
    fn finish_on_empty_is_none() {
        let mut w = Windower::new(100);
        assert!(w.finish().is_none());
    }

    #[test]
    fn overall_mean_and_sensor_means() {
        let w = win(&[
            (0, vec![1.0, 2.0]),
            (0, vec![3.0, 4.0]),
            (1, vec![10.0, 10.0]),
        ]);
        assert_eq!(w.overall_mean().unwrap(), vec![14.0 / 3.0, 16.0 / 3.0]);
        let means = w.sensor_means();
        assert_eq!(means[&SensorId(0)], vec![2.0, 3.0]);
        assert_eq!(means[&SensorId(1)], vec![10.0, 10.0]);
    }

    #[test]
    fn empty_window_mean_is_none() {
        let w = ObservationWindow::default();
        assert!(w.overall_mean().is_none());
        assert!(identify_states(&w, &states2(), 0.0, 0.5).is_none());
    }

    #[test]
    fn identify_states_majority_vote() {
        // Three sensors near state 0, one outlier near state 1.
        let w = win(&[
            (0, vec![0.1, 0.2]),
            (1, vec![-0.3, 0.1]),
            (2, vec![0.2, -0.1]),
            (3, vec![9.5, 10.2]),
        ]);
        let s = identify_states(&w, &states2(), 0.0, 0.5).unwrap();
        assert_eq!(s.correct, 0);
        assert_eq!(s.labels[&SensorId(3)], 1);
        assert_eq!(s.labels[&SensorId(0)], 0);
        // Overall mean is dragged toward the outlier but stays nearer 0.
        assert_eq!(s.observable, 0);
    }

    #[test]
    fn observable_can_differ_from_correct() {
        // Two honest at state 0, two attackers pushing hard: the mean
        // crosses to state 1's basin while the majority label stays 0...
        // with 2-2 votes, tie-breaking favors the lower index.
        let w = win(&[
            (0, vec![0.0, 0.0]),
            (1, vec![0.5, 0.5]),
            (2, vec![20.0, 20.0]),
            (3, vec![20.0, 20.0]),
        ]);
        let s = identify_states(&w, &states2(), 0.0, 0.5).unwrap();
        assert_eq!(s.observable, 1, "mean (10.1, 10.1) is nearer state 1");
        assert_eq!(s.correct, 0, "tie breaks to lower state index");
    }

    #[test]
    fn single_sensor_window() {
        let w = win(&[(5, vec![9.0, 9.0])]);
        let s = identify_states(&w, &states2(), 0.0, 0.5).unwrap();
        assert_eq!(s.correct, 1);
        assert_eq!(s.observable, 1);
        assert_eq!(s.representatives.len(), 1);
    }
}
