//! Shared building blocks of the detection pipeline, split along the
//! parallelization boundary.
//!
//! The paper's per-window computation factors into two halves:
//!
//! - **per-sensor** work — alarm filtering, track management, `M_CE`
//!   estimation — which touches only one sensor's state and can run on
//!   any shard ([`SensorRuntime`]);
//! - **global** work — clustering, observable/correct state
//!   identification, `M_CO`/`M_C`/`M_O` estimation, majority voting,
//!   network-level classification — which needs *all* sensors' votes
//!   and must run on a single coordinator ([`GlobalModel`]).
//!
//! [`Pipeline`](crate::Pipeline) composes the two serially; the sharded
//! engine (`sentinet-engine`) runs `SensorRuntime`s on worker threads
//! and the `GlobalModel` on its coordinator. Both drive this exact code
//! in the same order, which is what makes the engine's output
//! bit-for-bit identical to the serial pipeline's.
//!
//! Classification queries are memoized: structural analyses are cached
//! behind the estimators' update generations (see
//! [`OnlineHmmEstimator::generation`]), so repeated
//! `classify`/`network_attack`/confidence calls after unchanged windows
//! are O(1).

use crate::classify::{
    classify_network_with_report, classify_sensor, AttackType, Diagnosis, NetworkEvidence,
    SensorEvidence,
};
use crate::config::{FilterPolicy, PipelineConfig};
use crate::window::ObservationWindow;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_cluster::{kmeans, ModelStates, StateEvent};
use sentinet_filter::{AlarmFilter, KOfNFilter, Sprt, SprtAlarmFilter};
use sentinet_hmm::structure::StructureCache;
use sentinet_hmm::{MarkovChain, OnlineHmmEstimator, OnlineMarkovEstimator, StochasticMatrix};
use std::cell::RefCell;

/// Symbol index reserved for the fictitious ⊥ state of `M_CE`
/// (the sensor agrees with the correct state while its track is open).
pub const BOT_SYMBOL: usize = 0;

/// Open/close record of one error/attack track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackRecord {
    /// Window index at which the filtered alarm opened the track.
    pub opened: u64,
    /// Window index at which it cleared, if it has.
    pub closed: Option<u64>,
}

/// What one [`SensorRuntime::step`] produced for the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorStep {
    /// The sensor's label disagreed with the correct state.
    pub raw: bool,
    /// The filtered alarm is raised after this window.
    pub filtered: bool,
}

/// Cache key for a sensor's memoized diagnosis: invalidated whenever
/// its `M_CE`, the network model, or the window count changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MemoKey {
    m_ce_generation: u64,
    network_stamp: (u64, u64),
    windows_processed: u64,
}

#[derive(Debug, Clone)]
struct DiagnosisMemo {
    key: MemoKey,
    diagnosis: Diagnosis,
    confidence: Option<f64>,
}

/// Per-sensor pipeline state: alarm filter, error/attack tracks, and
/// the sensor's `M_CE` estimator.
///
/// A `SensorRuntime` touches no global state — every method depends
/// only on its own fields and the per-window inputs — so disjoint sets
/// of sensors can safely step on different threads.
#[derive(Debug)]
pub struct SensorRuntime {
    filter: Box<dyn AlarmFilter>,
    m_ce: OnlineHmmEstimator,
    track_open: bool,
    tracks: Vec<TrackRecord>,
    raw_history: Vec<(u64, bool)>,
    ever_alarmed: bool,
    memo: RefCell<Option<DiagnosisMemo>>,
}

impl SensorRuntime {
    /// Creates the runtime for a newly seen sensor with `num_slots`
    /// current model-state slots.
    pub fn new(config: &PipelineConfig, num_slots: usize) -> Self {
        let filter: Box<dyn AlarmFilter> = match config.filter {
            FilterPolicy::KOfN { k, n } => Box::new(KOfNFilter::new(k, n)),
            FilterPolicy::Sprt {
                p0,
                p1,
                alpha,
                beta,
            } => Box::new(SprtAlarmFilter::new(Sprt::new(p0, p1, alpha, beta))),
        };
        Self {
            filter,
            m_ce: make_m_ce(config, num_slots),
            track_open: false,
            tracks: Vec::new(),
            raw_history: Vec::new(),
            ever_alarmed: false,
            memo: RefCell::new(None),
        }
    }

    /// Grows the `M_CE` estimator to `num_slots` model-state slots
    /// (no-op when nothing spawned).
    pub fn grow(&mut self, num_slots: usize) {
        self.m_ce.grow(num_slots, num_slots + 1);
    }

    /// One per-sensor step for a *decisive* window: records the raw
    /// alarm, runs the filter, manages the error/attack track, and
    /// feeds `M_CE` while a track is open.
    pub fn step(&mut self, window_index: u64, label: usize, correct: usize) -> SensorStep {
        let raw = label != correct;
        self.raw_history.push((window_index, raw));
        let filtered = self.filter.push(raw);
        if filtered {
            self.ever_alarmed = true;
        }
        match (self.track_open, filtered) {
            (false, true) => {
                self.track_open = true;
                self.tracks.push(TrackRecord {
                    opened: window_index,
                    closed: None,
                });
            }
            (true, false) => {
                self.track_open = false;
                if let Some(t) = self.tracks.last_mut() {
                    t.closed = Some(window_index);
                }
            }
            _ => {}
        }
        if self.track_open {
            let symbol = if raw { label + 1 } else { BOT_SYMBOL };
            self.m_ce
                .observe(correct, symbol)
                // sentinet-allow(expect-used): symbol and state counts are sized by grow before observe runs
                .expect("state and symbol within estimator dims");
        }
        SensorStep { raw, filtered }
    }

    /// Captures the complete per-sensor state for checkpointing. The
    /// snapshot is plain data (see [`crate::checkpoint`]); restoring it
    /// with [`SensorRuntime::from_snapshot`] yields a runtime whose
    /// behaviour — filter outputs, `M_CE` updates, diagnoses — is
    /// bit-identical from this point on. The diagnosis memo is not
    /// captured: it is a cache keyed on generation counters and
    /// rebuilds on first use.
    pub fn snapshot(&self) -> crate::checkpoint::SensorSnapshot {
        crate::checkpoint::SensorSnapshot {
            filter: self.filter.snapshot(),
            m_ce: self.m_ce.export_state(),
            track_open: self.track_open,
            tracks: self.tracks.clone(),
            raw_history: self.raw_history.clone(),
            ever_alarmed: self.ever_alarmed,
        }
    }

    /// Rebuilds a runtime from a checkpoint snapshot.
    ///
    /// # Errors
    ///
    /// [`crate::checkpoint::CheckpointError::Invalid`] if the embedded
    /// estimator state fails re-validation (corrupt checkpoint).
    pub fn from_snapshot(
        snapshot: crate::checkpoint::SensorSnapshot,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        let m_ce = OnlineHmmEstimator::import_state(snapshot.m_ce)
            .map_err(|e| crate::checkpoint::CheckpointError::Invalid(e.to_string()))?;
        Ok(Self {
            filter: snapshot.filter.restore(),
            m_ce,
            track_open: snapshot.track_open,
            tracks: snapshot.tracks,
            raw_history: snapshot.raw_history,
            ever_alarmed: snapshot.ever_alarmed,
            memo: RefCell::new(None),
        })
    }

    /// The sensor's `M_CE` estimator.
    pub fn m_ce(&self) -> &OnlineHmmEstimator {
        &self.m_ce
    }

    /// The raw-alarm history as `(window, raw)` pairs.
    pub fn raw_history(&self) -> &[(u64, bool)] {
        &self.raw_history
    }

    /// The error/attack tracks opened for this sensor.
    pub fn tracks(&self) -> &[TrackRecord] {
        &self.tracks
    }

    /// Whether a filtered alarm was ever raised.
    pub fn ever_alarmed(&self) -> bool {
        self.ever_alarmed
    }
}

/// Initial `M_CE` observation matrix: hidden state `i`'s identity
/// prior sits on symbol `i + 1` (symbol 0 is ⊥).
fn make_m_ce(config: &PipelineConfig, num_slots: usize) -> OnlineHmmEstimator {
    let rows: Vec<Vec<f64>> = (0..num_slots)
        .map(|i| {
            let mut r = vec![0.0; num_slots + 1];
            r[i + 1] = 1.0;
            r
        })
        .collect();
    // sentinet-allow(expect-used): one-hot rows are stochastic by construction
    let b = StochasticMatrix::from_rows(rows).expect("rows are one-hot");
    // sentinet-allow(expect-used): num_slots >= 1 is asserted at bootstrap
    let a = StochasticMatrix::identity(num_slots).expect("num_slots > 0");
    OnlineHmmEstimator::with_initial(a, b, config.beta, config.gamma)
        // sentinet-allow(expect-used): learning factors were validated by PipelineConfig::validate
        .expect("validated learning factors")
}

/// Memoized network-level products, keyed on the `(M_CO, model states)`
/// generation pair.
#[derive(Debug)]
struct NetMemo {
    stamp: (u64, u64),
    active_rows: Vec<usize>,
    centroids: Vec<Option<Vec<f64>>>,
    verdict: Option<AttackType>,
    structure: StructureCache,
}

/// The global (coordinator-side) half of the pipeline: model states,
/// bootstrap accumulation, the `M_CO`/`M_C`/`M_O` estimators, the
/// decisive-window history, and memoized network classification.
#[derive(Debug)]
pub struct GlobalModel {
    config: PipelineConfig,
    rng: StdRng,
    states: Option<ModelStates>,
    m_co: Option<OnlineHmmEstimator>,
    m_c: Option<OnlineMarkovEstimator>,
    m_o: Option<OnlineMarkovEstimator>,
    bootstrap_points: Vec<Vec<f64>>,
    windows_processed: u64,
    /// Per processed decisive window: (window index, correct state,
    /// observable state) — the `c_i`/`o_i` sequences of §3.
    state_history: Vec<(u64, usize, usize)>,
    net_memo: RefCell<Option<NetMemo>>,
}

impl GlobalModel {
    /// Creates the global model; installs `config.initial_states` when
    /// given, otherwise waits for bootstrap.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`PipelineConfig::validate`]).
    pub fn new(config: PipelineConfig) -> Self {
        config.validate();
        let rng = StdRng::seed_from_u64(config.seed);
        let mut model = Self {
            config,
            rng,
            states: None,
            m_co: None,
            m_c: None,
            m_o: None,
            bootstrap_points: Vec::new(),
            windows_processed: 0,
            state_history: Vec::new(),
            net_memo: RefCell::new(None),
        };
        if let Some(init) = model.config.initial_states.clone() {
            model.install_states(init);
        }
        model
    }

    fn install_states(&mut self, centroids: Vec<Vec<f64>>) {
        let m = centroids.len();
        self.states = Some(ModelStates::new(centroids, self.config.cluster.clone()));
        self.m_co = Some(
            OnlineHmmEstimator::new(m, m, self.config.beta, self.config.gamma)
                // sentinet-allow(expect-used): learning factors were validated by PipelineConfig::validate
                .expect("validated learning factors"),
        );
        self.m_c = Some(
            // sentinet-allow(expect-used): learning factors were validated by PipelineConfig::validate
            OnlineMarkovEstimator::new(m, self.config.beta).expect("validated learning factors"),
        );
        self.m_o = Some(
            // sentinet-allow(expect-used): learning factors were validated by PipelineConfig::validate
            OnlineMarkovEstimator::new(m, self.config.beta).expect("validated learning factors"),
        );
    }

    /// Grows the global estimators to the current model-state slot
    /// count (no-op when nothing spawned).
    fn grow_global(&mut self) {
        let slots = match &self.states {
            Some(s) => s.num_slots(),
            None => return,
        };
        if let Some(m_co) = self.m_co.as_mut() {
            m_co.grow(slots, slots);
        }
        if let Some(m_c) = self.m_c.as_mut() {
            m_c.grow(slots);
        }
        if let Some(m_o) = self.m_o.as_mut() {
            m_o.grow(slots);
        }
    }

    /// Feeds a window into the bootstrap accumulator when the model
    /// states are not yet installed. Returns `true` once states exist
    /// (so the window should be processed), `false` while still
    /// accumulating (the window is consumed by the bootstrap only).
    pub fn absorb_bootstrap(&mut self, window: &ObservationWindow) -> bool {
        if self.states.is_some() {
            return true;
        }
        // Bootstrap: accumulate sensor representatives until k-means
        // has enough points for the requested initial state count.
        self.bootstrap_points
            .extend(window.sensor_means().into_values());
        let k = self.config.num_initial_states;
        if self.bootstrap_points.len() < k.max(2) {
            return false;
        }
        let points = std::mem::take(&mut self.bootstrap_points);
        let init = kmeans(&points, k, 100, &mut self.rng).centroids;
        self.install_states(init);
        // One bootstrap window rarely spans the environment's full
        // range, so several of the k centroids land on top of each
        // other; run one clustering round immediately so the merge
        // pass collapses them before any state identification.
        self.states
            .as_mut()
            // sentinet-allow(expect-used): the global stages install states at bootstrap, before any decisive window
            .expect("just installed")
            .update(&points);
        true
    }

    /// Spawns a model state at the window mean when no existing state
    /// covers it (an attack can shift the mean into a region no sensor
    /// reading occupies; Eq. 2 must still be able to name it). Returns
    /// `true` when a state spawned — the caller must then grow every
    /// [`SensorRuntime`] to [`GlobalModel::num_slots`].
    pub fn cover_window_mean(&mut self, mean: Option<&[f64]>) -> bool {
        let Some(mean) = mean else {
            return false;
        };
        let spawned = self
            .states
            .as_mut()
            // sentinet-allow(expect-used): the global stages install states at bootstrap, before any decisive window
            .expect("bootstrapped before covering")
            .spawn_if_uncovered(mean)
            .is_some();
        if spawned {
            self.grow_global();
        }
        spawned
    }

    /// Records a decisive window's state pair into the history and the
    /// global `M_CO`/`M_C`/`M_O` estimators.
    pub fn record_decisive(&mut self, correct: usize, observable: usize) {
        self.state_history
            .push((self.windows_processed, correct, observable));
        self.m_co
            .as_mut()
            // sentinet-allow(expect-used): estimators are installed at bootstrap, before any decisive window
            .expect("installed with states")
            .observe(correct, observable)
            // sentinet-allow(expect-used): slots are grown in lockstep with the state set
            .expect("states within estimator dims");
        self.m_c
            .as_mut()
            // sentinet-allow(expect-used): estimators are installed at bootstrap, before any decisive window
            .expect("installed")
            .observe(correct)
            // sentinet-allow(expect-used): slots are grown in lockstep with the state set
            .expect("state in range");
        self.m_o
            .as_mut()
            // sentinet-allow(expect-used): estimators are installed at bootstrap, before any decisive window
            .expect("installed")
            .observe(observable)
            // sentinet-allow(expect-used): slots are grown in lockstep with the state set
            .expect("state in range");
    }

    /// Ends the window: one clustering round over the sensor
    /// representatives (Eqs. 5–6 + merge/spawn), growth of the global
    /// estimators, and the window counter. Returns the clustering
    /// events and whether the slot count grew — the caller must then
    /// grow every [`SensorRuntime`] to [`GlobalModel::num_slots`].
    pub fn finish_window(&mut self, points: &[Vec<f64>]) -> (Vec<StateEvent>, bool) {
        let before = self.num_slots();
        let events = self
            .states
            .as_mut()
            // sentinet-allow(expect-used): estimators are installed at bootstrap, before any decisive window
            .expect("bootstrapped before finishing")
            .update(points);
        self.grow_global();
        self.windows_processed += 1;
        (events, self.num_slots() != before)
    }

    /// The current model states, once bootstrapped.
    pub fn states(&self) -> Option<&ModelStates> {
        self.states.as_ref()
    }

    /// Current model-state slot count (0 before bootstrap).
    pub fn num_slots(&self) -> usize {
        self.states.as_ref().map_or(0, ModelStates::num_slots)
    }

    /// Number of windows fully processed (post-bootstrap).
    pub fn windows_processed(&self) -> u64 {
        self.windows_processed
    }

    /// The global `M_CO` estimator, once bootstrapped.
    pub fn m_co(&self) -> Option<&OnlineHmmEstimator> {
        self.m_co.as_ref()
    }

    /// The error/attack-free Markov model `M_C` of the environment.
    pub fn correct_model(&self) -> Option<MarkovChain> {
        self.m_c
            .as_ref()
            // sentinet-allow(expect-used): online estimator rows stay row-stochastic, so to_chain cannot fail
            .map(|m| m.to_chain().expect("valid chain"))
    }

    /// The Markov model `M_O` of the observable states.
    pub fn observable_model(&self) -> Option<MarkovChain> {
        self.m_o
            .as_ref()
            // sentinet-allow(expect-used): online estimator rows stay row-stochastic, so to_chain cannot fail
            .map(|m| m.to_chain().expect("valid chain"))
    }

    /// The `(window, correct, observable)` sequence of every decisive
    /// window.
    pub fn state_history(&self) -> &[(u64, usize, usize)] {
        &self.state_history
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Captures the coordinator-side state for checkpointing: the
    /// bootstrap accumulator, decisive-window history, and — once
    /// bootstrapped — the model states with all three global
    /// estimators. The classification memo is a generation-keyed cache
    /// and rebuilds on first use; the RNG is not captured because it is
    /// consumed only by the bootstrap k-means, which by construction
    /// has already run iff `states` is `Some` (and a restored
    /// pre-bootstrap model re-seeds from `config.seed`, replaying the
    /// identical draw sequence).
    pub fn snapshot(&self) -> crate::checkpoint::GlobalSnapshot {
        let states = match (&self.states, &self.m_co, &self.m_c, &self.m_o) {
            (Some(s), Some(m_co), Some(m_c), Some(m_o)) => Some(crate::checkpoint::GlobalStates {
                states: s.snapshot(),
                m_co: m_co.export_state(),
                m_c: m_c.export_state(),
                m_o: m_o.export_state(),
            }),
            _ => None,
        };
        crate::checkpoint::GlobalSnapshot {
            windows_processed: self.windows_processed,
            state_history: self.state_history.clone(),
            bootstrap_points: self.bootstrap_points.clone(),
            states,
        }
    }

    /// Rebuilds the global model from a checkpoint snapshot taken
    /// under the same `config`. The restored model continues
    /// bit-identically: every captured field is a deterministic
    /// function of the processed window sequence, and the only
    /// stochastic component (the bootstrap k-means RNG) is re-seeded
    /// from `config.seed` exactly as [`GlobalModel::new`] does.
    ///
    /// # Errors
    ///
    /// [`crate::checkpoint::CheckpointError::Invalid`] if an embedded
    /// model state fails re-validation (corrupt checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (as [`GlobalModel::new`]).
    pub fn from_snapshot(
        config: PipelineConfig,
        snapshot: crate::checkpoint::GlobalSnapshot,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        config.validate();
        let invalid = crate::checkpoint::CheckpointError::Invalid;
        let (states, m_co, m_c, m_o) = match snapshot.states {
            None => (None, None, None, None),
            Some(gs) => (
                Some(ModelStates::from_snapshot(gs.states).map_err(invalid)?),
                Some(
                    OnlineHmmEstimator::import_state(gs.m_co)
                        .map_err(|e| invalid(e.to_string()))?,
                ),
                Some(
                    OnlineMarkovEstimator::import_state(gs.m_c)
                        .map_err(|e| invalid(e.to_string()))?,
                ),
                Some(
                    OnlineMarkovEstimator::import_state(gs.m_o)
                        .map_err(|e| invalid(e.to_string()))?,
                ),
            ),
        };
        let rng = StdRng::seed_from_u64(config.seed);
        Ok(Self {
            config,
            rng,
            states,
            m_co,
            m_c,
            m_o,
            bootstrap_points: snapshot.bootstrap_points,
            windows_processed: snapshot.windows_processed,
            state_history: snapshot.state_history,
            net_memo: RefCell::new(None),
        })
    }

    /// Identity of the current network model: changes exactly when
    /// `M_CO` or the model states change.
    fn network_stamp(&self) -> Option<(u64, u64)> {
        Some((
            self.m_co.as_ref()?.generation(),
            self.states.as_ref()?.generation(),
        ))
    }

    /// Runs `f` against the up-to-date network memo. Recomputes the
    /// active rows, centroid table, orthogonality report, and network
    /// verdict only when the network stamp moved.
    fn with_net_memo<'a, R>(
        &'a self,
        f: impl FnOnce(&NetMemo, &'a OnlineHmmEstimator) -> R,
    ) -> Option<R> {
        let m_co = self.m_co.as_ref()?;
        let states = self.states.as_ref()?;
        let stamp = (m_co.generation(), states.generation());
        let mut memo = self.net_memo.borrow_mut();
        if !matches!(memo.as_ref(), Some(m) if m.stamp == stamp) {
            let active_rows: Vec<usize> = m_co
                .observation_evidence()
                .iter()
                .enumerate()
                .filter(|(_, &c)| c >= self.config.min_state_evidence)
                .map(|(i, _)| i)
                .collect();
            let centroids: Vec<Option<Vec<f64>>> = (0..states.num_slots())
                .map(|i| states.centroid_any(i).map(<[f64]>::to_vec))
                .collect();
            // Keep the structure cache across refreshes: the Gram
            // analysis stays valid when only the cluster generation
            // moved (centroid drift without an M_CO update).
            let mut structure = memo.take().map(|m| m.structure).unwrap_or_default();
            let report = structure
                .orthogonality(
                    m_co.generation(),
                    m_co.observation(),
                    self.config.ortho,
                    Some(&active_rows),
                )
                .clone();
            let evidence = NetworkEvidence {
                b_co: m_co.observation(),
                active_rows: active_rows.clone(),
                centroids: centroids.clone(),
            };
            let verdict = classify_network_with_report(&evidence, &report, &self.config);
            *memo = Some(NetMemo {
                stamp,
                active_rows,
                centroids,
                verdict,
                structure,
            });
        }
        // sentinet-allow(expect-used): the memo entry is filled on the line above
        Some(f(memo.as_ref().expect("just filled"), m_co))
    }

    /// Network-level evidence for classification, from the memo.
    pub fn network_evidence(&self) -> Option<NetworkEvidence<'_>> {
        self.with_net_memo(|memo, m_co| NetworkEvidence {
            b_co: m_co.observation(),
            active_rows: memo.active_rows.clone(),
            centroids: memo.centroids.clone(),
        })
    }

    /// The memoized network-level verdict: `Some(attack)` when the
    /// `M_CO` structure carries an attack signature.
    pub fn network_attack(&self) -> Option<AttackType> {
        self.with_net_memo(|memo, _| memo.verdict.clone())?
    }

    /// Assembles the sensor-level classification evidence.
    pub fn sensor_evidence<'a>(&self, runtime: &'a SensorRuntime) -> SensorEvidence<'a> {
        let active_rows: Vec<usize> = runtime
            .m_ce
            .observation_evidence()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= self.config.min_state_evidence)
            .map(|(i, _)| i)
            .collect();
        SensorEvidence {
            b_ce: runtime.m_ce.observation(),
            active_rows,
            alarmed: runtime.ever_alarmed,
        }
    }

    fn memo_key(&self, runtime: &SensorRuntime) -> Option<MemoKey> {
        Some(MemoKey {
            m_ce_generation: runtime.m_ce.generation(),
            network_stamp: self.network_stamp()?,
            windows_processed: self.windows_processed,
        })
    }

    /// Classifies one sensor per the paper's Fig. 5 tree, memoized on
    /// the `(M_CE, network, window)` generations.
    ///
    /// `None` — a sensor never seen — is [`Diagnosis::ErrorFree`].
    pub fn classify(&self, runtime: Option<&SensorRuntime>) -> Diagnosis {
        let Some(rt) = runtime else {
            return Diagnosis::ErrorFree;
        };
        if !rt.ever_alarmed {
            return Diagnosis::ErrorFree;
        }
        let Some(key) = self.memo_key(rt) else {
            return Diagnosis::ErrorFree;
        };
        if let Some(memo) = rt.memo.borrow().as_ref() {
            if memo.key == key {
                return memo.diagnosis.clone();
            }
        }
        let diagnosis = match self.network_attack() {
            Some(attack) => Diagnosis::Attack(attack),
            None => {
                // sentinet-allow(expect-used): the generation stamp check guarantees the evidence entry exists
                let net = self.network_evidence().expect("stamp checked");
                let ev = self.sensor_evidence(rt);
                classify_sensor(&net, &ev, &self.config)
            }
        };
        *rt.memo.borrow_mut() = Some(DiagnosisMemo {
            key,
            diagnosis: diagnosis.clone(),
            confidence: None,
        });
        diagnosis
    }

    /// [`GlobalModel::classify`] plus the verdict's confidence (see
    /// [`crate::confidence`]), memoized alongside the diagnosis.
    pub fn classify_with_confidence(&self, runtime: Option<&SensorRuntime>) -> (Diagnosis, f64) {
        let diagnosis = self.classify(runtime);
        let key = runtime.and_then(|rt| self.memo_key(rt));
        if let (Some(rt), Some(key)) = (runtime, key) {
            if let Some(memo) = rt.memo.borrow().as_ref() {
                if memo.key == key {
                    if let Some(confidence) = memo.confidence {
                        return (memo.diagnosis.clone(), confidence);
                    }
                }
            }
        }
        let Some(net) = self.network_evidence() else {
            return (diagnosis, 0.0);
        };
        let sensor_ev = runtime.map(|rt| self.sensor_evidence(rt));
        let confidence = crate::confidence::diagnosis_confidence(
            &net,
            sensor_ev.as_ref(),
            &diagnosis,
            self.windows_processed,
            &self.config,
        );
        if let (Some(rt), Some(key)) = (runtime, key) {
            *rt.memo.borrow_mut() = Some(DiagnosisMemo {
                key,
                diagnosis: diagnosis.clone(),
                confidence: Some(confidence),
            });
        }
        (diagnosis, confidence)
    }

    /// Offline Viterbi smoothing of the recorded observable sequence
    /// under the learned `M_CO` (see
    /// [`Pipeline::smoothed_correct_states`](crate::Pipeline::smoothed_correct_states)).
    pub fn smoothed_correct_states(&self) -> Option<Vec<usize>> {
        let m_co = self.m_co.as_ref()?;
        if self.state_history.is_empty() {
            return None;
        }
        let observables: Vec<usize> = self.state_history.iter().map(|&(_, _, o)| o).collect();
        let hmm = m_co.to_hmm().ok()?;
        hmm.viterbi(&observables).ok().map(|v| v.states)
    }
}
