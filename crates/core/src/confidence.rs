//! Confidence quantification for structural diagnoses.
//!
//! The Fig. 5 tree thresholds continuous statistics (Gram masses,
//! column dominance, coefficients of variation) into hard labels. The
//! distance between the measured statistic and its decision threshold
//! is free information: a verdict whose deciding statistic barely
//! cleared its threshold deserves less trust than one far past it.
//! [`Pipeline::classify_with_confidence`](crate::Pipeline::classify_with_confidence)
//! reports that margin, normalized into `[0, 1]`.

use crate::classify::{AttackType, Diagnosis, ErrorType, NetworkEvidence, SensorEvidence};
use crate::config::PipelineConfig;
use sentinet_hmm::structure::{stuck_at_column, OrthogonalityReport};

/// Clamps a raw margin ratio into `[0, 1]`.
fn unit(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Confidence in a network-level attack verdict: how far past the
/// orthogonality tolerance the strongest deciding violation sits.
pub fn network_confidence(
    evidence: &NetworkEvidence<'_>,
    verdict: &AttackType,
    config: &PipelineConfig,
) -> f64 {
    let report =
        OrthogonalityReport::analyze(evidence.b_co, config.ortho, Some(&evidence.active_rows));
    let tol = config.ortho.max_offdiag;
    let margin_of = |mass: f64| unit((mass - tol) / (1.0 - tol));
    match verdict {
        AttackType::DynamicDeletion { .. } | AttackType::Mixed => report
            .row_violations
            .iter()
            .map(|v| margin_of(v.mass))
            .fold(0.0, f64::max),
        AttackType::DynamicCreation { created } => {
            // Strength = the largest mass any active row places on a
            // created column.
            let mut best: f64 = 0.0;
            for &r in &evidence.active_rows {
                for &c in created {
                    if c < evidence.b_co.num_cols() {
                        best = best.max(evidence.b_co[(r, c)]);
                    }
                }
            }
            unit(best)
        }
        AttackType::DynamicChange { pairs } => {
            // Strength = the weakest of the remapped associations.
            pairs
                .iter()
                .map(|&(c, o)| evidence.b_co[(c, o)])
                .fold(1.0, f64::min)
        }
    }
}

/// Confidence in a per-sensor error verdict.
pub fn sensor_confidence(
    sensor: &SensorEvidence<'_>,
    verdict: &ErrorType,
    config: &PipelineConfig,
) -> f64 {
    let Ok(b) = sensor.b_ce.drop_columns(&[0]) else {
        return 0.0;
    };
    let active: Vec<usize> = sensor
        .active_rows
        .iter()
        .copied()
        .filter(|&i| sensor.b_ce[(i, 0)] <= 0.5)
        .collect();
    match verdict {
        ErrorType::StuckAt { state } => {
            // Margin of the weakest row's mass on the stuck column over
            // the threshold.
            if active.is_empty() || *state >= b.num_cols() {
                return 0.0;
            }
            let min_mass = active.iter().map(|&i| b[(i, *state)]).fold(1.0, f64::min);
            let thr = config.stuck_at_threshold;
            // Consistency: the test must actually fire for this column.
            if stuck_at_column(&b, thr, Some(&active)) != Some(*state) {
                return 0.0;
            }
            unit((min_mass - thr) / (1.0 - thr))
        }
        ErrorType::Calibration { .. } | ErrorType::Additive { .. } => {
            // Margin of the weakest association row over the threshold,
            // scaled by the evidence breadth (pairs beyond the minimum).
            if active.is_empty() {
                return 0.0;
            }
            let thr = config.association_threshold;
            let weakest = active
                .iter()
                .map(|&i| b.row(i).iter().cloned().fold(0.0, f64::max))
                .fold(1.0, f64::min);
            let breadth = unit(
                (active.len() as f64 - config.min_association_pairs as f64 + 1.0)
                    / (config.min_association_pairs as f64 + 1.0),
            );
            unit((weakest - thr) / (1.0 - thr)) * (0.5 + 0.5 * breadth)
        }
        ErrorType::Unknown => 0.0,
    }
}

/// Confidence in an `ErrorFree` verdict: how far below the tolerances
/// the network matrix sits, damped when the pipeline has processed only
/// a few windows.
pub fn clean_confidence(
    evidence: &NetworkEvidence<'_>,
    windows_processed: u64,
    config: &PipelineConfig,
) -> f64 {
    if evidence.active_rows.is_empty() {
        return 0.0;
    }
    let report =
        OrthogonalityReport::analyze(evidence.b_co, config.ortho, Some(&evidence.active_rows));
    let g = evidence.b_co.row_gram();
    let mut max_off: f64 = 0.0;
    for &i in &evidence.active_rows {
        for &j in &evidence.active_rows {
            if j > i {
                max_off = max_off.max(g[i][j]);
            }
        }
    }
    let margin = unit((config.ortho.max_offdiag - max_off) / config.ortho.max_offdiag);
    let maturity = unit(windows_processed as f64 / 48.0);
    if report.is_orthogonal() {
        margin * maturity
    } else {
        0.0
    }
}

/// Combined accessor used by the pipeline.
pub fn diagnosis_confidence(
    network: &NetworkEvidence<'_>,
    sensor: Option<&SensorEvidence<'_>>,
    diagnosis: &Diagnosis,
    windows_processed: u64,
    config: &PipelineConfig,
) -> f64 {
    match diagnosis {
        Diagnosis::ErrorFree => clean_confidence(network, windows_processed, config),
        Diagnosis::Attack(a) => network_confidence(network, a, config),
        Diagnosis::Error(e) => sensor
            .map(|s| sensor_confidence(s, e, config))
            .unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinet_hmm::StochasticMatrix;

    fn cfg() -> PipelineConfig {
        PipelineConfig::default()
    }

    fn net(b: &StochasticMatrix, rows: Vec<usize>) -> NetworkEvidence<'_> {
        NetworkEvidence {
            b_co: b,
            active_rows: rows,
            centroids: vec![Some(vec![0.0, 0.0]); b.num_rows()],
        }
    }

    #[test]
    fn hard_deletion_is_high_confidence() {
        let b = StochasticMatrix::from_rows(vec![
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0], // both states emit col 0
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let ev = net(&b, vec![0, 1, 2]);
        let c = network_confidence(
            &ev,
            &AttackType::DynamicDeletion {
                deleted: vec![0, 1],
            },
            &cfg(),
        );
        assert!(c > 0.95, "confidence {c}");
    }

    #[test]
    fn marginal_deletion_is_low_confidence() {
        let b = StochasticMatrix::from_rows(vec![
            vec![0.75, 0.25, 0.0],
            vec![0.9, 0.1, 0.0], // shared mass 0.7 — just over tolerance
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let ev = net(&b, vec![0, 1, 2]);
        let c = network_confidence(
            &ev,
            &AttackType::DynamicDeletion {
                deleted: vec![0, 1],
            },
            &cfg(),
        );
        let hard = 0.95;
        assert!(c < hard, "marginal case must score below hard case: {c}");
    }

    #[test]
    fn stuck_at_confidence_tracks_column_mass() {
        let strong =
            StochasticMatrix::from_rows(vec![vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 1.0]]).unwrap();
        let weak =
            StochasticMatrix::from_rows(vec![vec![0.0, 0.4, 0.6], vec![0.0, 0.45, 0.55]]).unwrap();
        fn mk(b: &StochasticMatrix) -> SensorEvidence<'_> {
            SensorEvidence {
                b_ce: b,
                active_rows: vec![0, 1],
                alarmed: true,
            }
        }
        let c_strong = sensor_confidence(&mk(&strong), &ErrorType::StuckAt { state: 1 }, &cfg());
        let c_weak = sensor_confidence(&mk(&weak), &ErrorType::StuckAt { state: 1 }, &cfg());
        assert!(c_strong > 0.9, "{c_strong}");
        assert!(c_weak < c_strong, "{c_weak} vs {c_strong}");
    }

    #[test]
    fn unknown_is_zero_confidence() {
        let b = StochasticMatrix::uniform(2, 3).unwrap();
        let ev = SensorEvidence {
            b_ce: &b,
            active_rows: vec![0, 1],
            alarmed: true,
        };
        assert_eq!(sensor_confidence(&ev, &ErrorType::Unknown, &cfg()), 0.0);
    }

    #[test]
    fn clean_confidence_needs_maturity_and_orthogonality() {
        let b = StochasticMatrix::identity(3).unwrap();
        let ev = net(&b, vec![0, 1, 2]);
        let young = clean_confidence(&ev, 2, &cfg());
        let mature = clean_confidence(&ev, 200, &cfg());
        assert!(mature > 0.9, "{mature}");
        assert!(young < 0.1, "{young}");
        // Non-orthogonal matrix: zero clean confidence.
        let bad = StochasticMatrix::from_rows(vec![vec![1.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let ev_bad = net(&bad, vec![0, 1]);
        assert_eq!(clean_confidence(&ev_bad, 200, &cfg()), 0.0);
    }

    #[test]
    fn mismatched_stuck_state_scores_zero() {
        // Claiming the wrong column must not earn confidence.
        let b =
            StochasticMatrix::from_rows(vec![vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 1.0]]).unwrap();
        let ev = SensorEvidence {
            b_ce: &b,
            active_rows: vec![0, 1],
            alarmed: true,
        };
        assert_eq!(
            sensor_confidence(&ev, &ErrorType::StuckAt { state: 0 }, &cfg()),
            0.0
        );
    }
}
