//! Operator-facing summary reports.
//!
//! [`Pipeline::report`](crate::Pipeline::report) condenses everything
//! the methodology produces — the environment model `M_C`, the
//! network-level attack verdict, and per-sensor diagnoses with track
//! timelines — into one serializable structure with a human-readable
//! `Display`, so deployments can log or ship the collector's view
//! without poking at individual accessors.

use crate::classify::{AttackType, Diagnosis};
use crate::pipeline::{Pipeline, TrackRecord};
use sentinet_sim::SensorId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One model state in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSummary {
    /// Slot index.
    pub slot: usize,
    /// Centroid attribute values.
    pub centroid: Vec<f64>,
    /// Occupancy in the correct-state sequence.
    pub occupancy: f64,
}

/// One sensor's entry in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorSummary {
    /// The sensor.
    pub sensor: SensorId,
    /// Structural diagnosis.
    pub diagnosis: Diagnosis,
    /// Fraction of processed windows with a raw alarm.
    pub raw_alarm_rate: f64,
    /// Error/attack track timeline (window indices).
    pub tracks: Vec<(u64, Option<u64>)>,
}

/// Snapshot of everything the pipeline currently believes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Windows fully processed.
    pub windows_processed: u64,
    /// Key environment states (occupancy above the configured floor).
    pub key_states: Vec<StateSummary>,
    /// Network-level attack verdict, if any.
    pub network_attack: Option<AttackType>,
    /// Per-sensor summaries, ordered by sensor id.
    pub sensors: Vec<SensorSummary>,
    /// Degraded-mode report from a supervised sharded run: `Some` only
    /// when shards were quarantined. Always `None` for the serial
    /// pipeline and for sharded runs that recovered fully, so healthy
    /// reports stay comparable across execution modes.
    pub degraded: Option<crate::recovery::DegradedStatus>,
}

impl PipelineReport {
    /// Sensors whose diagnosis is not error/attack-free.
    pub fn flagged(&self) -> impl Iterator<Item = &SensorSummary> {
        self.sensors
            .iter()
            .filter(|s| s.diagnosis != Diagnosis::ErrorFree)
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sentinet report after {} windows",
            self.windows_processed
        )?;
        writeln!(f, "environment states:")?;
        for s in &self.key_states {
            write!(f, "  state {}: (", s.slot)?;
            for (i, v) in s.centroid.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.1}")?;
            }
            writeln!(f, ") occupancy {:.2}", s.occupancy)?;
        }
        match &self.network_attack {
            Some(a) => writeln!(
                f,
                "network attack signature: {}",
                Diagnosis::Attack(a.clone())
            )?,
            None => writeln!(f, "network attack signature: none")?,
        }
        if let Some(degraded) = &self.degraded {
            writeln!(f, "{degraded}")?;
        }
        for s in &self.sensors {
            writeln!(
                f,
                "  {}: {} (raw alarms {:.1}%, {} track(s))",
                s.sensor,
                s.diagnosis,
                100.0 * s.raw_alarm_rate,
                s.tracks.len()
            )?;
        }
        Ok(())
    }
}

impl Pipeline {
    /// Builds the operator-facing snapshot of the pipeline's findings.
    pub fn report(&self) -> PipelineReport {
        let key_states = match (self.model_states(), self.correct_model()) {
            (Some(states), Some(m_c)) => m_c
                .key_states(self.config().key_state_occupancy)
                .into_iter()
                .filter_map(|slot| {
                    states.centroid_any(slot).map(|c| StateSummary {
                        slot,
                        centroid: c.to_vec(),
                        occupancy: m_c.occupancy()[slot],
                    })
                })
                .collect(),
            _ => Vec::new(),
        };
        let sensors = self
            .sensor_ids()
            .into_iter()
            .map(|id| {
                let hist = self.raw_alarm_history(id).unwrap_or(&[]);
                let raw_alarm_rate = if hist.is_empty() {
                    0.0
                } else {
                    hist.iter().filter(|(_, r)| *r).count() as f64 / hist.len() as f64
                };
                SensorSummary {
                    sensor: id,
                    diagnosis: self.classify(id),
                    raw_alarm_rate,
                    tracks: self
                        .tracks(id)
                        .unwrap_or(&[])
                        .iter()
                        .map(|t: &TrackRecord| (t.opened, t.closed))
                        .collect(),
                }
            })
            .collect();
        PipelineReport {
            windows_processed: self.windows_processed(),
            key_states,
            network_attack: self.network_attack(),
            sensors,
            degraded: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sentinet_sim::{gdi, simulate};

    fn reported() -> PipelineReport {
        let mut cfg = gdi::day_config();
        cfg.loss_prob = 0.0;
        cfg.malformed_prob = 0.0;
        let trace = simulate(&cfg, &mut StdRng::seed_from_u64(5));
        let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
        p.process_trace(&trace);
        p.report()
    }

    #[test]
    fn report_reflects_clean_run() {
        let r = reported();
        assert_eq!(r.windows_processed, 24);
        assert!(!r.key_states.is_empty());
        assert_eq!(r.network_attack, None);
        assert_eq!(r.sensors.len(), 10);
        assert_eq!(r.flagged().count(), 0);
        for s in &r.sensors {
            assert!(s.raw_alarm_rate < 0.2, "{:?}", s);
            assert!(s.tracks.is_empty());
        }
    }

    #[test]
    fn report_display_mentions_everything() {
        let r = reported();
        let text = r.to_string();
        assert!(text.contains("sentinet report after 24 windows"));
        assert!(text.contains("network attack signature: none"));
        assert!(text.contains("sensor9"));
        assert!(text.contains("occupancy"));
    }

    #[test]
    fn empty_pipeline_report_is_empty() {
        let p = Pipeline::new(PipelineConfig::default(), 300);
        let r = p.report();
        assert_eq!(r.windows_processed, 0);
        assert!(r.key_states.is_empty());
        assert!(r.sensors.is_empty());
        assert!(!r.to_string().is_empty());
    }
}
