//! Property-based tests for the core pipeline's invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_cluster::{ClusterConfig, ModelStates};
use sentinet_core::{identify_states, ObservationWindow, Pipeline, PipelineConfig, Windower};
use sentinet_sim::{Reading, SensorId, Trace, TraceRecord};

fn window_from(points: &[(u16, Vec<f64>)]) -> ObservationWindow {
    let mut w = ObservationWindow::default();
    for (s, v) in points {
        w.push(SensorId(*s), v);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trimmed_mean_within_data_hull(
        pts in prop::collection::vec((0u16..5, prop::collection::vec(-50.0f64..50.0, 1)), 1..40),
        trim in 0.0f64..0.45,
    ) {
        let w = window_from(&pts);
        let mean = w.trimmed_mean(trim).expect("non-empty");
        let lo = pts.iter().map(|(_, v)| v[0]).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|(_, v)| v[0]).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean[0] >= lo - 1e-9 && mean[0] <= hi + 1e-9);
    }

    #[test]
    fn trim_zero_equals_plain_mean(
        pts in prop::collection::vec((0u16..5, prop::collection::vec(-50.0f64..50.0, 2)), 1..30),
    ) {
        let w = window_from(&pts);
        prop_assert_eq!(w.trimmed_mean(0.0), w.overall_mean());
    }

    #[test]
    fn trimmed_mean_ignores_single_wild_outlier(
        honest in prop::collection::vec((0u16..4, Just(vec![10.0, 10.0])), 8..20),
        outlier in 100.0f64..1_000.0,
    ) {
        let mut pts = honest;
        pts.push((4, vec![outlier, outlier]));
        let w = window_from(&pts);
        let mean = w.trimmed_mean(0.2).expect("non-empty");
        prop_assert!((mean[0] - 10.0).abs() < 1e-9, "outlier leaked: {mean:?}");
    }

    #[test]
    fn identify_states_correct_backed_by_majority_when_decisive(
        pts in prop::collection::vec((0u16..6, prop::collection::vec(-30.0f64..30.0, 1)), 2..24),
    ) {
        let states = ModelStates::new(
            vec![vec![-20.0], vec![0.0], vec![20.0]],
            ClusterConfig {
                alpha: 0.1,
                merge_threshold: 1.0,
                spawn_threshold: 100.0,
                max_states: 4,
            },
        );
        let w = window_from(&pts);
        if let Some(ws) = identify_states(&w, &states, 0.0, 0.5) {
            // The winning state's vote count really is the max.
            let mut votes = std::collections::BTreeMap::new();
            for l in ws.labels.values() {
                *votes.entry(*l).or_insert(0usize) += 1;
            }
            let max = votes.values().max().copied().unwrap_or(0);
            prop_assert_eq!(votes.get(&ws.correct).copied().unwrap_or(0), max);
            if ws.decisive {
                prop_assert!(2 * max > ws.labels.len());
            }
        }
    }

    #[test]
    fn windower_partitions_all_readings(
        times in prop::collection::vec(0u64..50_000, 1..100),
    ) {
        let mut sorted = times;
        sorted.sort_unstable();
        let mut w = Windower::new(3_600);
        let mut seen = 0usize;
        for &t in &sorted {
            let done = w.push(t, SensorId(0), &[1.0]);
            seen += done.iter().map(|d| d.num_readings()).sum::<usize>();
        }
        seen += w.finish().map(|d| d.num_readings()).unwrap_or(0);
        prop_assert_eq!(seen, sorted.len());
    }

    #[test]
    fn windower_windows_are_time_disjoint(
        times in prop::collection::vec(0u64..100_000, 2..100),
    ) {
        let mut sorted = times;
        sorted.sort_unstable();
        let mut w = Windower::new(1_000);
        let mut indices = Vec::new();
        for &t in &sorted {
            for d in w.push(t, SensorId(0), &[0.0]) {
                indices.push(d.index);
            }
        }
        if let Some(d) = w.finish() {
            indices.push(d.index);
        }
        // Strictly increasing window indices — no window emitted twice.
        for pair in indices.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn pipeline_never_panics_on_arbitrary_small_traces(
        recs in prop::collection::vec(
            (0u64..20_000, 0u16..4, prop::collection::vec(-30.0f64..30.0, 2)),
            0..60,
        ),
    ) {
        let records: Vec<TraceRecord> = recs
            .into_iter()
            .map(|(t, s, v)| TraceRecord {
                time: t,
                sensor: SensorId(s),
                payload: sentinet_sim::Payload::Delivered(Reading::new(v)),
            })
            .collect();
        let trace = Trace::from_records(records);
        let mut p = Pipeline::new(PipelineConfig::default(), 300);
        let _ = p.process_trace(&trace);
        // Classification of any sensor id is total.
        for s in 0..5u16 {
            let _ = p.classify(SensorId(s));
        }
        let _ = p.network_attack();
    }

    #[test]
    fn pipeline_is_deterministic(
        seed in 0u64..50,
    ) {
        let mut cfg = sentinet_sim::gdi::day_config();
        cfg.duration = 6 * 3600;
        let trace = sentinet_sim::simulate(&cfg, &mut StdRng::seed_from_u64(seed));
        let run = || {
            let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
            let outcomes = p.process_trace(&trace);
            (outcomes, p.classify_all())
        };
        prop_assert_eq!(run(), run());
    }
}
