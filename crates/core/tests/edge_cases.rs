//! Harness-robustness tests: degenerate and hostile input shapes the
//! collector must survive without panicking or mis-diagnosing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Diagnosis, Pipeline, PipelineConfig};
use sentinet_sim::{
    gdi, simulate, EnvironmentModel, Payload, Reading, SensorId, Trace, TraceRecord,
};

fn record(t: u64, s: u16, values: Vec<f64>) -> TraceRecord {
    TraceRecord {
        time: t,
        sensor: SensorId(s),
        payload: Payload::Delivered(Reading::new(values)),
    }
}

#[test]
fn extreme_packet_loss_is_survivable() {
    let mut cfg = gdi::day_config();
    cfg.loss_prob = 0.9;
    cfg.malformed_prob = 0.05;
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(3));
    let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
    let outcomes = p.process_trace(&trace);
    // Some windows may survive with a couple readings each; whatever
    // happens, the pipeline stays consistent and classification still runs.
    assert!(outcomes.len() <= 24);
    for id in p.sensor_ids() {
        let _ = p.classify(id);
    }
}

#[test]
fn bursty_loss_does_not_frame_sensors() {
    // Gilbert-Elliott bursts silence whole stretches of a sensor's
    // stream; silence must never be mistaken for misbehaviour.
    let mut cfg = gdi::day_config();
    cfg.duration = 3 * 86_400;
    cfg.loss_prob = 0.02;
    cfg.burst = Some(sentinet_sim::BurstLoss {
        p_enter_bad: 0.01,
        p_exit_bad: 0.05,
        loss_bad: 0.95,
    });
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(10));
    let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
    p.process_trace(&trace);
    assert_eq!(p.network_attack(), None);
    for id in p.sensor_ids() {
        assert_eq!(p.classify(id), Diagnosis::ErrorFree, "{id}");
    }
}

#[test]
fn single_sensor_network_never_alarms_itself() {
    // With one sensor, the majority is that sensor: it can never
    // disagree with itself, so no alarms and no diagnosis.
    let mut cfg = gdi::day_config();
    cfg.num_sensors = 1;
    cfg.loss_prob = 0.0;
    cfg.malformed_prob = 0.0;
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(4));
    let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
    let outcomes = p.process_trace(&trace);
    assert!(!outcomes.is_empty());
    assert_eq!(p.classify(SensorId(0)), Diagnosis::ErrorFree);
    assert!(outcomes.iter().all(|o| o.raw_alarms.is_empty()));
}

#[test]
fn sensor_joining_late_is_tracked() {
    // Sensor 5 only starts reporting halfway through the stream.
    let mut records = Vec::new();
    for t in (0..86_400).step_by(300) {
        for s in 0..5u16 {
            records.push(record(t, s, vec![20.0 + s as f64 * 0.01, 70.0]));
        }
        if t >= 43_200 {
            records.push(record(t, 5, vec![20.0, 70.0]));
        }
    }
    let trace = Trace::from_records(records);
    let mut p = Pipeline::new(PipelineConfig::default(), 300);
    p.process_trace(&trace);
    assert!(p.sensor_ids().contains(&SensorId(5)));
    assert_eq!(p.classify(SensorId(5)), Diagnosis::ErrorFree);
    // Its history only covers the second half.
    let h5 = p.raw_alarm_history(SensorId(5)).unwrap().len();
    let h0 = p.raw_alarm_history(SensorId(0)).unwrap().len();
    assert!(h5 < h0, "late sensor has shorter history: {h5} vs {h0}");
}

#[test]
fn sensor_vanishing_mid_stream_keeps_its_state() {
    // Sensor 4 goes silent halfway; it must neither alarm nor crash
    // subsequent windows.
    let mut records = Vec::new();
    for t in (0..86_400).step_by(300) {
        for s in 0..4u16 {
            records.push(record(t, s, vec![20.0, 70.0]));
        }
        if t < 43_200 {
            records.push(record(t, 4, vec![20.0, 70.0]));
        }
    }
    let trace = Trace::from_records(records);
    let mut p = Pipeline::new(PipelineConfig::default(), 300);
    let outcomes = p.process_trace(&trace);
    assert!(!outcomes.is_empty());
    assert_eq!(p.classify(SensorId(4)), Diagnosis::ErrorFree);
}

#[test]
fn constant_environment_stays_single_state() {
    let mut cfg = gdi::day_config();
    cfg.environment = EnvironmentModel::Constant(vec![20.0, 70.0]);
    cfg.loss_prob = 0.0;
    cfg.malformed_prob = 0.0;
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(6));
    let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
    let outcomes = p.process_trace(&trace);
    // All windows agree on one state, no alarms.
    let first = outcomes[0].correct;
    assert!(outcomes.iter().all(|o| o.correct == first));
    assert!(outcomes.iter().all(|o| o.raw_alarms.is_empty()));
    assert_eq!(p.network_attack(), None);
}

#[test]
fn duplicate_timestamps_per_sensor_are_accepted() {
    // Two readings from the same sensor at the same instant (e.g. a
    // retransmission) both land in the window.
    let records = vec![
        record(0, 0, vec![20.0, 70.0]),
        record(0, 0, vec![20.1, 70.1]),
        record(0, 1, vec![20.0, 70.0]),
        record(300, 0, vec![20.0, 70.0]),
        record(300, 1, vec![20.0, 70.0]),
    ];
    let trace = Trace::from_records(records);
    let mut p = Pipeline::new(PipelineConfig::default(), 300);
    let _ = p.process_trace(&trace);
}

#[test]
fn wildly_different_magnitudes_do_not_break_clustering() {
    // Attributes on very different scales (e.g. pressure in Pa).
    let mut records = Vec::new();
    for t in (0..43_200).step_by(300) {
        for s in 0..6u16 {
            records.push(record(t, s, vec![20.0, 101_325.0]));
        }
    }
    let trace = Trace::from_records(records);
    let mut cfg = PipelineConfig::default();
    cfg.cluster.spawn_threshold = 500.0;
    cfg.cluster.merge_threshold = 100.0;
    let mut p = Pipeline::new(cfg, 300);
    let outcomes = p.process_trace(&trace);
    assert!(!outcomes.is_empty());
    assert!(outcomes.iter().all(|o| o.raw_alarms.is_empty()));
}

#[test]
fn window_larger_than_trace_still_finalizes() {
    let cfg = PipelineConfig {
        window_samples: 1_000, // window >> trace
        ..Default::default()
    };
    let records: Vec<TraceRecord> = (0..10)
        .map(|i| record(i * 300, (i % 3) as u16, vec![20.0, 70.0]))
        .collect();
    let trace = Trace::from_records(records);
    let mut p = Pipeline::new(cfg, 300);
    let outcomes = p.process_trace(&trace);
    // Everything lands in one finalized window — or none if bootstrap
    // needed more data; either way no panic and consistent state.
    assert!(outcomes.len() <= 1);
}

#[test]
fn alternating_fast_environment_degrades_gracefully() {
    // Environment flips every sample — far faster than the window; the
    // paper requires Θ(t) ≈ constant per window, so quality degrades
    // but nothing breaks and clean sensors are not condemned.
    let env = EnvironmentModel::Piecewise(
        (0..288)
            .map(|i| {
                (
                    i * 300,
                    if i % 2 == 0 {
                        vec![10.0, 90.0]
                    } else {
                        vec![30.0, 50.0]
                    },
                )
            })
            .collect(),
    );
    let mut cfg = gdi::day_config();
    cfg.environment = env;
    cfg.loss_prob = 0.0;
    cfg.malformed_prob = 0.0;
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(8));
    let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
    p.process_trace(&trace);
    assert_eq!(
        p.network_attack(),
        None,
        "fast dynamics must not look like attacks"
    );
    for id in p.sensor_ids() {
        assert_eq!(p.classify(id), Diagnosis::ErrorFree, "{id}");
    }
}
