//! `sentinet-bench` — headline throughput table for the sharded
//! engine, written as machine-readable JSON.
//!
//! Usage: `cargo run --release -p sentinet-bench --bin sentinet-bench
//! -- [out.json]` (default `BENCH_engine.json` in the current
//! directory).
//!
//! For each network size (10/100/1000 sensors) the harness times the
//! serial `sentinet_core::Pipeline` and the `sentinet_engine::Engine`
//! at 1/2/4/8 shards over the same fixed-seed GDI-like trace, and
//! reports windows/sec and delivered readings/sec (best of
//! `REPS` runs, so transient noise doesn't pollute the table). The
//! host core count is recorded alongside the numbers: shard speedups
//! are only physically possible when `host_cpus > 1`, so a single-core
//! run honestly shows the coordination overhead instead.
//!
//! Trailing `ingest` rows time traces through the durable gateway —
//! real loopback TCP, WAL append before every ack — under both wire
//! protocols: `batch: "off"` rows use the stop-and-wait v1 uplink
//! (one Data frame, one ack per reading), `batch: "256x32"` rows use
//! the pipelined v2 uplink (256-reading `DataBatch` frames, a
//! 32-batch credit window, cumulative `AckUpTo` acks released only
//! after the covering group fsync). Each protocol is swept over
//! `fsync: never` / `batch:64` and a `--wal-retain-bytes`-style
//! budget (checkpoint-gated segment reclaim), so both the cost of
//! durability and the recovery of pipelining are measured, not
//! guessed. A final `ingest_stages` object breaks the pipelined
//! `batch:64` run down by stage (decode / admission / WAL append /
//! fsync / ack wall time, plus `other_s` for the uninstrumented
//! remainder); the stages sum to `total_s` — the wall time of the rep
//! they came from — and `bench-check` rejects documents where they
//! drift more than 10% apart.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_engine::Engine;
use sentinet_gateway::{
    trace_to_raw, Collector, FsyncPolicy, GatewayConfig, PipelinedConfig, PipelinedUplink,
    SensorUplink, Server, ServerConfig, StageTimings, UplinkConfig, UplinkStats,
};
use sentinet_sim::{gdi, simulate, RawRecord, SensorId, Trace, DAY_S};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;
/// WAL budget for the retention-on ingest row, with segments sized so
/// the budget spans several sealed segments.
const RETAIN_BUDGET: u64 = 64 * 1024;
const RETAIN_SEGMENT: u64 = 16 * 1024;

/// Pipelined-protocol shape for the batched ingest rows.
const PIPE_BATCH: usize = 256;
const PIPE_WINDOW: usize = 32;

struct Row {
    sensors: u16,
    days: u64,
    mode: String,
    /// `Some` only for ingest rows: the WAL fsync policy under test.
    fsync: Option<String>,
    /// `Some` only for ingest rows: `"off"` or the byte budget of
    /// checkpoint-gated WAL retention.
    retention: Option<String>,
    /// `Some` only for ingest rows: `"off"` for the stop-and-wait v1
    /// uplink, `"<batch>x<window>"` for the pipelined v2 uplink.
    batch: Option<String>,
    shards: usize,
    readings: usize,
    windows: u64,
    seconds: f64,
}

/// Per-stage wall time (seconds) from one ingest run. `other_s` is the
/// uninstrumented remainder (socket waits, thread handoff, pipeline
/// flush) so the stages sum to `total_s`, the wall time of the same
/// rep the breakdown was taken from — `bench-check` enforces that sum.
#[derive(Clone, Copy, Default)]
struct Stages {
    decode_s: f64,
    admission_s: f64,
    wal_append_s: f64,
    fsync_s: f64,
    ack_s: f64,
    other_s: f64,
    total_s: f64,
}

fn wide_trace(num_sensors: u16, days: u64, seed: u64) -> (Trace, u64) {
    let mut cfg = gdi::month_config();
    cfg.num_sensors = num_sensors;
    cfg.duration = days * DAY_S;
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
    (trace, cfg.sample_period)
}

/// Best-of-`REPS` wall time for `f`, which returns the window count.
fn time_best<F: FnMut() -> u64>(mut f: F) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut windows = 0;
    for _ in 0..REPS {
        let start = Instant::now();
        windows = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (windows, best)
}

/// Best-of-`REPS` wall time for the full durable ingest path: a real
/// loopback TCP server, an uplink delivering every record in order,
/// WAL append before each ack, and the final pipeline flush + sync.
/// The clock covers first connect through `finish()`. `pipelined`
/// selects the v2 batched/credit-windowed uplink over stop-and-wait;
/// the returned [`Stages`] breakdown comes from the fastest rep.
fn time_ingest(
    records: &[RawRecord],
    sample_period: u64,
    fsync: FsyncPolicy,
    retain: Option<u64>,
    pipelined: bool,
) -> (u64, f64, Stages) {
    let mut best = f64::INFINITY;
    let mut windows = 0;
    let mut stages = Stages::default();
    for rep in 0..REPS {
        let dir = std::env::temp_dir().join(format!(
            "sentinet-bench-ingest-{}-{fsync}-{}-{}-{rep}",
            std::process::id(),
            retain.map_or(0, |b| b),
            if pipelined { "pipe" } else { "saw" },
        ));
        // sentinet-allow(io-outside-vfs): bench scratch-dir cleanup, not
        // gateway-durable state.
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = GatewayConfig::new(&dir);
        config.wal.fsync = fsync;
        if let Some(budget) = retain {
            config.wal.retain_bytes = Some(budget);
            config.wal.segment_max_bytes = RETAIN_SEGMENT;
        }
        if pipelined {
            // Batching delivers each sensor in bursts spanning
            // `PIPE_BATCH × sample_period` stream-seconds; the reorder
            // watermark must cover that skew and the buffer must hold
            // the burst, or same-era readings of other sensors drop
            // as late.
            config.reorder.watermark_delay = 2 * PIPE_BATCH as u64 * sample_period;
            config.reorder.per_sensor_capacity = 4 * PIPE_BATCH;
            // A per-record checkpoint cadence sized for stop-and-wait
            // becomes one full snapshot per batch at 256-reading
            // frames; scale it to one restore point per 32 batches
            // (every ~15ms of wall time at the measured rate) so the
            // rows measure the protocol, not checkpoint IO.
            config.checkpoint_every = 32 * PIPE_BATCH as u64;
        }
        let (mut collector, _) = Collector::open(config).expect("open gateway collector");
        let server = Server::start(ServerConfig {
            credit_window: PIPE_WINDOW as u32,
            ..ServerConfig::default()
        })
        .expect("bind loopback server");
        let addr = server.addr().to_string();
        let client_records = records.to_vec();
        let start = Instant::now();
        // sentinet-allow(thread-spawn): the bench client must run concurrently
        // with the server it is timing; all I/O goes through the gateway's
        // own uplink.
        let client = std::thread::spawn(move || -> UplinkStats {
            if pipelined {
                let mut config = PipelinedConfig::new(addr);
                config.batch_size = PIPE_BATCH;
                config.max_inflight = PIPE_WINDOW;
                let mut uplink = PipelinedUplink::new(config);
                for r in &client_records {
                    uplink
                        .send(r.sensor, r.time, &r.values)
                        .expect("durable send over loopback");
                }
                uplink.finish().expect("fin/finack")
            } else {
                let mut uplink = SensorUplink::new(UplinkConfig::new(addr));
                let mut seqs: BTreeMap<SensorId, u64> = BTreeMap::new();
                for r in &client_records {
                    let seq = seqs.entry(r.sensor).or_insert(0);
                    uplink
                        .send_at(r.sensor, *seq, r.time, &r.values)
                        .expect("durable send over loopback");
                    *seq += 1;
                }
                let stats = uplink.stats();
                uplink.finish().expect("fin/finack");
                stats
            }
        });
        let server_stats = server.run(&mut collector).expect("serve loopback stream");
        let uplink_stats = client.join().expect("uplink client thread");
        let timings: StageTimings = collector.stage_timings();
        let mut report = collector.finish().expect("finish gateway run");
        report.uplink = Some(uplink_stats);
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
            let ns = |n: u64| n as f64 / 1e9;
            let instrumented = ns(server_stats.decode_ns)
                + ns(timings.admission_ns)
                + ns(timings.wal_append_ns)
                + ns(timings.fsync_ns)
                + ns(server_stats.ack_ns);
            stages = Stages {
                decode_s: ns(server_stats.decode_ns),
                admission_s: ns(timings.admission_ns),
                wal_append_s: ns(timings.wal_append_ns),
                fsync_s: ns(timings.fsync_ns),
                ack_s: ns(server_stats.ack_ns),
                other_s: (elapsed - instrumented).max(0.0),
                total_s: elapsed,
            };
        }
        assert_eq!(
            report.ingest.accepted,
            records.len(),
            "ingest bench must accept every delivered record (uplink {:?})",
            report.uplink,
        );
        windows = report.pipeline.windows_processed;
        // sentinet-allow(io-outside-vfs): bench scratch-dir cleanup, not
        // gateway-durable state.
        let _ = std::fs::remove_dir_all(&dir);
    }
    (windows, best, stages)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".into());
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let mut rows: Vec<Row> = Vec::new();

    // Fewer days for the wider networks keeps total runtime bounded
    // while every cell still processes thousands of windows.
    for &(sensors, days) in &[(10u16, 7u64), (100, 2), (1000, 1)] {
        let (trace, period) = wide_trace(sensors, days, 42);
        let delivered = trace.delivered().count();
        eprintln!("— {sensors} sensors, {days} day(s), {delivered} delivered readings");

        let (windows, seconds) = time_best(|| {
            let mut p = Pipeline::new(PipelineConfig::default(), period);
            p.process_trace(&trace);
            p.windows_processed()
        });
        eprintln!(
            "  serial: {:.3}s ({:.0} readings/s)",
            seconds,
            delivered as f64 / seconds
        );
        rows.push(Row {
            sensors,
            days,
            mode: "serial".into(),
            fsync: None,
            retention: None,
            batch: None,
            shards: 0,
            readings: delivered,
            windows,
            seconds,
        });

        for shards in SHARD_COUNTS {
            let engine = Engine::new(PipelineConfig::default(), period, shards);
            let (windows, seconds) = time_best(|| {
                engine
                    .process_trace(&trace)
                    .expect("healthy run")
                    .windows_processed()
            });
            eprintln!(
                "  engine x{shards}: {:.3}s ({:.0} readings/s)",
                seconds,
                delivered as f64 / seconds
            );
            rows.push(Row {
                sensors,
                days,
                mode: "engine".into(),
                fsync: None,
                retention: None,
                batch: None,
                shards,
                readings: delivered,
                windows,
                seconds,
            });
        }
    }

    // Durable-ingest rows through the full gateway (loopback TCP +
    // WAL), once per (protocol, fsync policy). The stop-and-wait rows
    // reuse the smallest sweep trace; the pipelined rows use a longer
    // trace of the same 10-sensor network so each timed run lasts long
    // enough to measure at several hundred k readings/sec. The speedup
    // column is honest overhead: the throughput ratio to the serial
    // in-process pipeline at the same network size.
    let (saw_trace, saw_period) = wide_trace(10, 7, 42);
    let saw_records = trace_to_raw(&saw_trace);
    let (pipe_trace, pipe_period) = wide_trace(10, 56, 42);
    let pipe_records = trace_to_raw(&pipe_trace);
    let batch_label = format!("{PIPE_BATCH}x{PIPE_WINDOW}");
    let mut pipe_stages: Option<Stages> = None;
    for (pipelined, fsync, retain) in [
        (false, FsyncPolicy::Never, None),
        (false, FsyncPolicy::Batch(64), None),
        (false, FsyncPolicy::Batch(64), Some(RETAIN_BUDGET)),
        (true, FsyncPolicy::Never, None),
        (true, FsyncPolicy::Batch(64), None),
        (true, FsyncPolicy::Batch(64), Some(RETAIN_BUDGET)),
    ] {
        let (records, period, days) = if pipelined {
            (&pipe_records, pipe_period, 56)
        } else {
            (&saw_records, saw_period, 7)
        };
        let (windows, seconds, stages) = time_ingest(records, period, fsync, retain, pipelined);
        let retention = retain.map_or_else(|| "off".to_string(), |b| b.to_string());
        let batch = if pipelined {
            batch_label.clone()
        } else {
            "off".to_string()
        };
        eprintln!(
            "  ingest batch={batch} fsync={fsync} retention={retention}: {:.3}s ({:.0} readings/s)",
            seconds,
            records.len() as f64 / seconds
        );
        if pipelined && fsync == FsyncPolicy::Batch(64) && retain.is_none() {
            // The stage breakdown row: pipelined group commit with the
            // production-shaped fsync policy and no retention churn.
            pipe_stages = Some(stages);
        }
        rows.push(Row {
            sensors: 10,
            days,
            mode: "ingest".into(),
            fsync: Some(fsync.to_string()),
            retention: Some(retention),
            batch: Some(batch),
            shards: 0,
            readings: records.len(),
            windows,
            seconds,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    json.push_str(
        "  \"note\": \"best-of-reps wall time per cell; serial = sentinet_core::Pipeline, \
         engine = sentinet_engine::Engine (bit-for-bit equivalent output); shard speedup \
         over serial requires host_cpus > 1; ingest = durable gateway over loopback TCP \
         (WAL append before each ack) at the named fsync policy; batch = off for the \
         stop-and-wait v1 uplink, <batch>x<window> for the pipelined v2 uplink (DataBatch \
         frames under a credit window, cumulative AckUpTo released only after the covering \
         group fsync); retention = checkpoint-gated WAL reclaim under the named byte \
         budget (off = retain everything; pipelined rows checkpoint once per 32 batches); speedup_vs_serial = readings/sec ratio to the \
         serial row at the same sensor count; ingest_stages = per-stage wall seconds from \
         the fastest pipelined fsync=batch:64 rep (other_s = uninstrumented remainder, so \
         the stages sum to total_s, the wall time of that rep)\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let serial = rows
            .iter()
            .find(|s| s.sensors == r.sensors && s.mode == "serial")
            .expect("serial row exists for every network size");
        let fsync = r
            .fsync
            .as_ref()
            .map(|p| format!("\"fsync\": \"{p}\", "))
            .unwrap_or_default();
        let retention = r
            .retention
            .as_ref()
            .map(|p| format!("\"retention\": \"{p}\", "))
            .unwrap_or_default();
        let batch = r
            .batch
            .as_ref()
            .map(|p| format!("\"batch\": \"{p}\", "))
            .unwrap_or_default();
        let _ = write!(
            json,
            "    {{\"sensors\": {}, \"days\": {}, \"mode\": \"{}\", {fsync}{retention}{batch}\"shards\": {}, \
             \"readings\": {}, \"windows\": {}, \"seconds\": {:.6}, \
             \"readings_per_sec\": {:.1}, \"windows_per_sec\": {:.1}, \
             \"speedup_vs_serial\": {:.3}}}",
            r.sensors,
            r.days,
            r.mode,
            r.shards,
            r.readings,
            r.windows,
            r.seconds,
            r.readings as f64 / r.seconds,
            r.windows as f64 / r.seconds,
            (r.readings as f64 / r.seconds) / (serial.readings as f64 / serial.seconds),
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    let stages = pipe_stages.expect("pipelined batch:64 row always runs");
    let _ = writeln!(
        json,
        "  \"ingest_stages\": {{\"decode_s\": {:.6}, \"admission_s\": {:.6}, \
         \"wal_append_s\": {:.6}, \"fsync_s\": {:.6}, \"ack_s\": {:.6}, \
         \"other_s\": {:.6}, \"total_s\": {:.6}}}",
        stages.decode_s,
        stages.admission_s,
        stages.wal_append_s,
        stages.fsync_s,
        stages.ack_s,
        stages.other_s,
        stages.total_s,
    );
    json.push_str("}\n");

    // sentinet-allow(io-outside-vfs): the benchmark report is a
    // terminal-program deliverable, not gateway-durable state.
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}
