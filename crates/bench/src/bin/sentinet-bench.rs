//! `sentinet-bench` — headline throughput table for the sharded
//! engine, written as machine-readable JSON.
//!
//! Usage: `cargo run --release -p sentinet-bench --bin sentinet-bench
//! -- [out.json]` (default `BENCH_engine.json` in the current
//! directory).
//!
//! For each network size (10/100/1000 sensors) the harness times the
//! serial `sentinet_core::Pipeline` and the `sentinet_engine::Engine`
//! at 1/2/4/8 shards over the same fixed-seed GDI-like trace, and
//! reports windows/sec and delivered readings/sec (best of
//! `REPS` runs, so transient noise doesn't pollute the table). The
//! host core count is recorded alongside the numbers: shard speedups
//! are only physically possible when `host_cpus > 1`, so a single-core
//! run honestly shows the coordination overhead instead.
//!
//! Three trailing `ingest` rows time the same 10-sensor trace through
//! the durable gateway — real loopback TCP, stop-and-wait acks, WAL
//! append before every ack — at `fsync: never` and `fsync: batch:64`,
//! so the cost of durability is measured, not guessed. The third row
//! repeats `batch:64` under a `--wal-retain-bytes`-style budget
//! (checkpoint-gated segment reclaim), pricing bounded-disk operation
//! against retain-everything.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_engine::Engine;
use sentinet_gateway::{
    trace_to_raw, Collector, FsyncPolicy, GatewayConfig, SensorUplink, Server, ServerConfig,
    UplinkConfig,
};
use sentinet_sim::{gdi, simulate, RawRecord, SensorId, Trace, DAY_S};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;
/// WAL budget for the retention-on ingest row, with segments sized so
/// the budget spans several sealed segments.
const RETAIN_BUDGET: u64 = 64 * 1024;
const RETAIN_SEGMENT: u64 = 16 * 1024;

struct Row {
    sensors: u16,
    days: u64,
    mode: String,
    /// `Some` only for ingest rows: the WAL fsync policy under test.
    fsync: Option<String>,
    /// `Some` only for ingest rows: `"off"` or the byte budget of
    /// checkpoint-gated WAL retention.
    retention: Option<String>,
    shards: usize,
    readings: usize,
    windows: u64,
    seconds: f64,
}

fn wide_trace(num_sensors: u16, days: u64, seed: u64) -> (Trace, u64) {
    let mut cfg = gdi::month_config();
    cfg.num_sensors = num_sensors;
    cfg.duration = days * DAY_S;
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
    (trace, cfg.sample_period)
}

/// Best-of-`REPS` wall time for `f`, which returns the window count.
fn time_best<F: FnMut() -> u64>(mut f: F) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut windows = 0;
    for _ in 0..REPS {
        let start = Instant::now();
        windows = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (windows, best)
}

/// Best-of-`REPS` wall time for the full durable ingest path: a real
/// loopback TCP server, a stop-and-wait uplink delivering every record
/// in order, WAL append before each ack, and the final pipeline
/// flush + sync. The clock covers first connect through `finish()`.
fn time_ingest(records: &[RawRecord], fsync: FsyncPolicy, retain: Option<u64>) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut windows = 0;
    for rep in 0..REPS {
        let dir = std::env::temp_dir().join(format!(
            "sentinet-bench-ingest-{}-{fsync}-{}-{rep}",
            std::process::id(),
            retain.map_or(0, |b| b),
        ));
        // sentinet-allow(io-outside-vfs): bench scratch-dir cleanup, not
        // gateway-durable state.
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = GatewayConfig::new(&dir);
        config.wal.fsync = fsync;
        if let Some(budget) = retain {
            config.wal.retain_bytes = Some(budget);
            config.wal.segment_max_bytes = RETAIN_SEGMENT;
        }
        let (mut collector, _) = Collector::open(config).expect("open gateway collector");
        let server = Server::start(ServerConfig::default()).expect("bind loopback server");
        let addr = server.addr().to_string();
        let client_records = records.to_vec();
        let start = Instant::now();
        // sentinet-allow(thread-spawn): the bench client must run concurrently
        // with the server it is timing; all I/O goes through the gateway's
        // own uplink.
        let client = std::thread::spawn(move || {
            let mut uplink = SensorUplink::new(UplinkConfig::new(addr));
            let mut seqs: BTreeMap<SensorId, u64> = BTreeMap::new();
            for r in &client_records {
                let seq = seqs.entry(r.sensor).or_insert(0);
                uplink
                    .send_at(r.sensor, *seq, r.time, &r.values)
                    .expect("durable send over loopback");
                *seq += 1;
            }
            uplink.finish().expect("fin/finack");
        });
        server.run(&mut collector).expect("serve loopback stream");
        client.join().expect("uplink client thread");
        let report = collector.finish().expect("finish gateway run");
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(
            report.ingest.accepted,
            records.len(),
            "ingest bench must accept every delivered record"
        );
        windows = report.pipeline.windows_processed;
        // sentinet-allow(io-outside-vfs): bench scratch-dir cleanup, not
        // gateway-durable state.
        let _ = std::fs::remove_dir_all(&dir);
    }
    (windows, best)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".into());
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let mut rows: Vec<Row> = Vec::new();

    // Fewer days for the wider networks keeps total runtime bounded
    // while every cell still processes thousands of windows.
    for &(sensors, days) in &[(10u16, 7u64), (100, 2), (1000, 1)] {
        let (trace, period) = wide_trace(sensors, days, 42);
        let delivered = trace.delivered().count();
        eprintln!("— {sensors} sensors, {days} day(s), {delivered} delivered readings");

        let (windows, seconds) = time_best(|| {
            let mut p = Pipeline::new(PipelineConfig::default(), period);
            p.process_trace(&trace);
            p.windows_processed()
        });
        eprintln!(
            "  serial: {:.3}s ({:.0} readings/s)",
            seconds,
            delivered as f64 / seconds
        );
        rows.push(Row {
            sensors,
            days,
            mode: "serial".into(),
            fsync: None,
            retention: None,
            shards: 0,
            readings: delivered,
            windows,
            seconds,
        });

        for shards in SHARD_COUNTS {
            let engine = Engine::new(PipelineConfig::default(), period, shards);
            let (windows, seconds) = time_best(|| {
                engine
                    .process_trace(&trace)
                    .expect("healthy run")
                    .windows_processed()
            });
            eprintln!(
                "  engine x{shards}: {:.3}s ({:.0} readings/s)",
                seconds,
                delivered as f64 / seconds
            );
            rows.push(Row {
                sensors,
                days,
                mode: "engine".into(),
                fsync: None,
                retention: None,
                shards,
                readings: delivered,
                windows,
                seconds,
            });
        }
    }

    // Durable-ingest rows: the smallest sweep trace again, but through
    // the full gateway (loopback TCP + stop-and-wait acks + WAL), once
    // per fsync policy. The speedup column is honest overhead: the
    // ratio to the serial in-process pipeline over the same trace.
    let (trace, _) = wide_trace(10, 7, 42);
    let records = trace_to_raw(&trace);
    for (fsync, retain) in [
        (FsyncPolicy::Never, None),
        (FsyncPolicy::Batch(64), None),
        (FsyncPolicy::Batch(64), Some(RETAIN_BUDGET)),
    ] {
        let (windows, seconds) = time_ingest(&records, fsync, retain);
        let retention = retain.map_or_else(|| "off".to_string(), |b| b.to_string());
        eprintln!(
            "  ingest fsync={fsync} retention={retention}: {:.3}s ({:.0} readings/s)",
            seconds,
            records.len() as f64 / seconds
        );
        rows.push(Row {
            sensors: 10,
            days: 7,
            mode: "ingest".into(),
            fsync: Some(fsync.to_string()),
            retention: Some(retention),
            shards: 0,
            readings: records.len(),
            windows,
            seconds,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    json.push_str(
        "  \"note\": \"best-of-reps wall time per cell; serial = sentinet_core::Pipeline, \
         engine = sentinet_engine::Engine (bit-for-bit equivalent output); shard speedup \
         over serial requires host_cpus > 1; ingest = durable gateway over loopback TCP \
         (stop-and-wait acks, WAL append before each ack) at the named fsync policy; \
         retention = checkpoint-gated WAL reclaim under the named byte budget (off = \
         retain everything)\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let serial = rows
            .iter()
            .find(|s| s.sensors == r.sensors && s.mode == "serial")
            .expect("serial row exists for every network size");
        let fsync = r
            .fsync
            .as_ref()
            .map(|p| format!("\"fsync\": \"{p}\", "))
            .unwrap_or_default();
        let retention = r
            .retention
            .as_ref()
            .map(|p| format!("\"retention\": \"{p}\", "))
            .unwrap_or_default();
        let _ = write!(
            json,
            "    {{\"sensors\": {}, \"days\": {}, \"mode\": \"{}\", {fsync}{retention}\"shards\": {}, \
             \"readings\": {}, \"windows\": {}, \"seconds\": {:.6}, \
             \"readings_per_sec\": {:.1}, \"windows_per_sec\": {:.1}, \
             \"speedup_vs_serial\": {:.3}}}",
            r.sensors,
            r.days,
            r.mode,
            r.shards,
            r.readings,
            r.windows,
            r.seconds,
            r.readings as f64 / r.seconds,
            r.windows as f64 / r.seconds,
            serial.seconds / r.seconds,
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    // sentinet-allow(io-outside-vfs): the benchmark report is a
    // terminal-program deliverable, not gateway-durable state.
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}
