//! `sentinet-bench` — headline throughput table for the sharded
//! engine, written as machine-readable JSON.
//!
//! Usage: `cargo run --release -p sentinet-bench --bin sentinet-bench
//! -- [out.json]` (default `BENCH_engine.json` in the current
//! directory).
//!
//! For each network size (10/100/1000 sensors) the harness times the
//! serial `sentinet_core::Pipeline` and the `sentinet_engine::Engine`
//! at 1/2/4/8 shards over the same fixed-seed GDI-like trace, and
//! reports windows/sec and delivered readings/sec (best of
//! `REPS` runs, so transient noise doesn't pollute the table). The
//! host core count is recorded alongside the numbers: shard speedups
//! are only physically possible when `host_cpus > 1`, so a single-core
//! run honestly shows the coordination overhead instead.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_engine::Engine;
use sentinet_sim::{gdi, simulate, Trace, DAY_S};
use std::fmt::Write as _;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

struct Row {
    sensors: u16,
    days: u64,
    mode: String,
    shards: usize,
    readings: usize,
    windows: u64,
    seconds: f64,
}

fn wide_trace(num_sensors: u16, days: u64, seed: u64) -> (Trace, u64) {
    let mut cfg = gdi::month_config();
    cfg.num_sensors = num_sensors;
    cfg.duration = days * DAY_S;
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
    (trace, cfg.sample_period)
}

/// Best-of-`REPS` wall time for `f`, which returns the window count.
fn time_best<F: FnMut() -> u64>(mut f: F) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut windows = 0;
    for _ in 0..REPS {
        let start = Instant::now();
        windows = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (windows, best)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".into());
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let mut rows: Vec<Row> = Vec::new();

    // Fewer days for the wider networks keeps total runtime bounded
    // while every cell still processes thousands of windows.
    for &(sensors, days) in &[(10u16, 7u64), (100, 2), (1000, 1)] {
        let (trace, period) = wide_trace(sensors, days, 42);
        let delivered = trace.delivered().count();
        eprintln!("— {sensors} sensors, {days} day(s), {delivered} delivered readings");

        let (windows, seconds) = time_best(|| {
            let mut p = Pipeline::new(PipelineConfig::default(), period);
            p.process_trace(&trace);
            p.windows_processed()
        });
        eprintln!(
            "  serial: {:.3}s ({:.0} readings/s)",
            seconds,
            delivered as f64 / seconds
        );
        rows.push(Row {
            sensors,
            days,
            mode: "serial".into(),
            shards: 0,
            readings: delivered,
            windows,
            seconds,
        });

        for shards in SHARD_COUNTS {
            let engine = Engine::new(PipelineConfig::default(), period, shards);
            let (windows, seconds) = time_best(|| {
                engine
                    .process_trace(&trace)
                    .expect("healthy run")
                    .windows_processed()
            });
            eprintln!(
                "  engine x{shards}: {:.3}s ({:.0} readings/s)",
                seconds,
                delivered as f64 / seconds
            );
            rows.push(Row {
                sensors,
                days,
                mode: "engine".into(),
                shards,
                readings: delivered,
                windows,
                seconds,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    json.push_str(
        "  \"note\": \"best-of-reps wall time per cell; serial = sentinet_core::Pipeline, \
         engine = sentinet_engine::Engine (bit-for-bit equivalent output); shard speedup \
         over serial requires host_cpus > 1\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let serial = rows
            .iter()
            .find(|s| s.sensors == r.sensors && s.mode == "serial")
            .expect("serial row exists for every network size");
        let _ = write!(
            json,
            "    {{\"sensors\": {}, \"days\": {}, \"mode\": \"{}\", \"shards\": {}, \
             \"readings\": {}, \"windows\": {}, \"seconds\": {:.6}, \
             \"readings_per_sec\": {:.1}, \"windows_per_sec\": {:.1}, \
             \"speedup_vs_serial\": {:.3}}}",
            r.sensors,
            r.days,
            r.mode,
            r.shards,
            r.readings,
            r.windows,
            r.seconds,
            r.readings as f64 / r.seconds,
            r.windows as f64 / r.seconds,
            serial.seconds / r.seconds,
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}
