//! `inspect` — dump the pipeline's internal models for a named
//! scenario (model-state slots, `B^CO` with evidence counts, per-sensor
//! `B^CE`, and the classification verdicts).
//!
//! Usage: `cargo run -p sentinet-bench --bin inspect -- <scenario>`
//! with scenario one of `calibration`, `additive`, `deletion`,
//! `creation`, `change`, `farm`. Invaluable when tuning tolerances or
//! diagnosing why a classification came out the way it did.
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_inject::{
    first_k_sensors, inject_attacks, inject_faults, AttackInjection, AttackModel, FaultInjection,
    FaultModel,
};
use sentinet_sim::{gdi, simulate, SensorId, DAY_S};

fn dump(p: &Pipeline, focus: &[u16]) {
    let states = p.model_states().unwrap();
    println!("slots: {}", states.num_slots());
    for i in 0..states.num_slots() {
        println!(
            "  slot {i}: {:?} active={}",
            states.centroid_any(i).map(|c| (c[0] as i32, c[1] as i32)),
            states.centroid(i).is_some()
        );
    }
    let m_co = p.m_co().unwrap();
    println!("B^CO evidence: {:?}", m_co.observation_evidence());
    println!("B^CO:\n{}", m_co.observation());
    println!("network attack: {:?}", p.network_attack());
    for &s in focus {
        let id = SensorId(s);
        println!("--- sensor {s}: alarmed={}", p.ever_alarmed(id));
        if let Some(m_ce) = p.m_ce(id) {
            println!("B^CE evidence: {:?}", m_ce.observation_evidence());
            println!("B^CE (col0=bot):\n{}", m_ce.observation());
        }
        println!("classify: {}", p.classify(id));
    }
}

fn main() {
    let scenario = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "calibration".into());
    let mut cfg = gdi::month_config();
    cfg.duration = 14 * DAY_S;
    match scenario.as_str() {
        "calibration" => {
            let clean = simulate(&cfg, &mut StdRng::seed_from_u64(4));
            let faulty = inject_faults(
                &clean,
                &[FaultInjection::from_onset(
                    SensorId(7),
                    FaultModel::Calibration {
                        gain: vec![1.15, 1.15],
                    },
                    0,
                )],
                &cfg.ranges,
                &mut StdRng::seed_from_u64(40),
            );
            let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
            p.process_trace(&faulty);
            dump(&p, &[7]);
        }
        "additive" => {
            cfg.duration = 12 * DAY_S;
            let mut rng = StdRng::seed_from_u64(99);
            let clean = simulate(&cfg, &mut rng);
            let faulty = inject_faults(
                &clean,
                &[FaultInjection::from_onset(
                    SensorId(4),
                    FaultModel::Additive {
                        offset: vec![-9.0, -4.5],
                    },
                    2 * DAY_S,
                )],
                &cfg.ranges,
                &mut rng,
            );
            let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
            p.process_trace(&faulty);
            dump(&p, &[4]);
        }
        "deletion" => {
            cfg.duration = 10 * DAY_S;
            let clean = simulate(&cfg, &mut StdRng::seed_from_u64(6));
            let attack = AttackInjection::from_onset(
                first_k_sensors(3),
                AttackModel::DynamicDeletion {
                    freeze_at: vec![12.0, 94.0],
                },
                5 * DAY_S,
            );
            let attacked = inject_attacks(&clean, &[attack], &cfg.ranges);
            let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
            p.process_trace(&attacked);
            dump(&p, &[0, 5]);
        }
        "creation" => {
            cfg.duration = 6 * DAY_S;
            cfg.environment = sentinet_sim::EnvironmentModel::Constant(vec![12.0, 95.0]);
            let clean = simulate(&cfg, &mut StdRng::seed_from_u64(7));
            let attacks: Vec<AttackInjection> = (0..6)
                .map(|i| AttackInjection {
                    sensors: first_k_sensors(3),
                    model: AttackModel::DynamicCreation {
                        target: vec![25.0, 69.0],
                    },
                    start: 3 * DAY_S + i * 12 * 3600,
                    end: Some(3 * DAY_S + i * 12 * 3600 + 6 * 3600),
                })
                .collect();
            let attacked = inject_attacks(&clean, &attacks, &cfg.ranges);
            let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
            p.process_trace(&attacked);
            dump(&p, &[0, 5]);
        }
        "change" => {
            cfg.duration = 10 * DAY_S;
            let clean = simulate(&cfg, &mut StdRng::seed_from_u64(8));
            let attack = AttackInjection::from_onset(
                first_k_sensors(3),
                AttackModel::DynamicChange {
                    offset: vec![-15.0, 0.0],
                },
                0,
            );
            let attacked = inject_attacks(&clean, &[attack], &cfg.ranges);
            let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
            p.process_trace(&attacked);
            dump(&p, &[0, 5]);
        }
        "farm" => {
            let day = 86_400u64;
            let mut schedule = Vec::new();
            for d in 0..10u64 {
                let t0 = d * day;
                schedule.push((t0, vec![20.0, 30.0, 40.0]));
                schedule.push((t0 + 8 * 3600, vec![55.0, 55.0, 55.0]));
                schedule.push((t0 + 12 * 3600, vec![80.0, 85.0, 70.0]));
                schedule.push((t0 + 14 * 3600, vec![55.0, 55.0, 55.0]));
                schedule.push((t0 + 19 * 3600, vec![85.0, 90.0, 72.0]));
                schedule.push((t0 + 22 * 3600, vec![20.0, 30.0, 40.0]));
            }
            let fcfg = sentinet_sim::SimConfig {
                num_sensors: 12,
                sample_period: 60,
                duration: 10 * day,
                noise_std: vec![2.0, 3.0, 1.5],
                ranges: vec![
                    sentinet_sim::AttributeRange::new(0.0, 100.0),
                    sentinet_sim::AttributeRange::new(0.0, 500.0),
                    sentinet_sim::AttributeRange::new(0.0, 100.0),
                ],
                loss_prob: 0.02,
                burst: None,
                malformed_prob: 0.005,
                environment: sentinet_sim::EnvironmentModel::Piecewise(schedule),
            };
            let mut rng = StdRng::seed_from_u64(2_006);
            let clean = simulate(&fcfg, &mut rng);
            let trace = inject_attacks(
                &clean,
                &[AttackInjection::from_onset(
                    vec![SensorId(0), SensorId(1), SensorId(2), SensorId(3)],
                    AttackModel::DynamicDeletion {
                        freeze_at: vec![20.0, 30.0, 40.0],
                    },
                    5 * day,
                )],
                &fcfg.ranges,
            );
            let mut pcfg = PipelineConfig {
                window_samples: 15,
                ..Default::default()
            };
            pcfg.cluster.spawn_threshold = 18.0;
            pcfg.cluster.merge_threshold = 8.0;
            let mut p = Pipeline::new(pcfg, fcfg.sample_period);
            let outcomes = p.process_trace(&trace);
            let decisive_alarm_windows =
                outcomes.iter().filter(|o| !o.raw_alarms.is_empty()).count();
            println!(
                "windows: {} with raw alarms: {}",
                outcomes.len(),
                decisive_alarm_windows
            );
            dump(&p, &[0, 11]);
        }
        other => panic!("unknown scenario {other}"),
    }
}
