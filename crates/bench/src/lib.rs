//! Shared scenario builders and reporting helpers for the `sentinet`
//! experiment harness.
//!
//! Every table and figure of the paper's §4 has a dedicated bench
//! target (`harness = false`) under `benches/`; they all build their
//! workloads through this module so the scenarios stay consistent
//! across experiments, tests, and examples.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_inject::{
    first_k_sensors, inject_attacks, inject_faults, AttackInjection, AttackModel, FaultInjection,
    FaultModel,
};
use sentinet_sim::{gdi, simulate, SensorId, SimConfig, Trace, DAY_S};

/// A clean GDI-like trace of `days` days with the given seed.
pub fn clean_scenario(days: u64, seed: u64) -> (Trace, SimConfig) {
    let mut cfg = gdi::month_config();
    cfg.duration = days * DAY_S;
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
    (trace, cfg)
}

/// The paper's sensor-6 story: drift to (15, 1) then stick (Fig. 8/9,
/// Tables 2–3).
pub fn stuck_at_scenario(days: u64, seed: u64) -> (Trace, SimConfig) {
    let (clean, cfg) = clean_scenario(days, seed);
    let trace = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(6),
            FaultModel::DriftToStuck {
                target: vec![15.0, 1.0],
                drift_duration: 2 * DAY_S,
            },
            DAY_S,
        )],
        &cfg.ranges,
        &mut StdRng::seed_from_u64(seed ^ 0x5afe),
    );
    (trace, cfg)
}

/// The paper's sensor-7 story: readings ≈ 15 % high (Tables 4–5).
pub fn calibration_scenario(days: u64, seed: u64) -> (Trace, SimConfig) {
    let (clean, cfg) = clean_scenario(days, seed);
    let trace = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(7),
            FaultModel::Calibration {
                gain: vec![1.15, 1.15],
            },
            0,
        )],
        &cfg.ranges,
        &mut StdRng::seed_from_u64(seed ^ 0x5afe),
    );
    (trace, cfg)
}

/// Additive fault perpendicular to the environment curve.
pub fn additive_scenario(days: u64, seed: u64) -> (Trace, SimConfig) {
    let (clean, cfg) = clean_scenario(days, seed);
    let trace = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(3),
            FaultModel::Additive {
                offset: vec![-9.0, -4.5],
            },
            0,
        )],
        &cfg.ranges,
        &mut StdRng::seed_from_u64(seed ^ 0x5afe),
    );
    (trace, cfg)
}

/// High-variance random-noise fault.
pub fn noise_scenario(days: u64, seed: u64) -> (Trace, SimConfig) {
    let (clean, cfg) = clean_scenario(days, seed);
    let trace = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(5),
            FaultModel::RandomNoise {
                std: vec![10.0, 10.0],
            },
            0,
        )],
        &cfg.ranges,
        &mut StdRng::seed_from_u64(seed ^ 0x5afe),
    );
    (trace, cfg)
}

/// Dynamic Deletion by ⅓ of the sensors from mid-trace (Fig. 10,
/// Table 6).
pub fn deletion_scenario(days: u64, seed: u64) -> (Trace, SimConfig) {
    let (clean, cfg) = clean_scenario(days, seed);
    let attack = AttackInjection::from_onset(
        first_k_sensors(3),
        AttackModel::DynamicDeletion {
            freeze_at: vec![12.0, 94.0],
        },
        days / 2 * DAY_S,
    );
    let trace = inject_attacks(&clean, &[attack], &cfg.ranges);
    (trace, cfg)
}

/// Periodic Dynamic Creation against a quiet environment (Fig. 11,
/// Table 7).
pub fn creation_scenario(days: u64, seed: u64) -> (Trace, SimConfig) {
    let mut cfg = gdi::month_config();
    cfg.duration = days * DAY_S;
    cfg.environment = sentinet_sim::EnvironmentModel::Constant(vec![12.0, 95.0]);
    let clean = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
    let onset = days / 2 * DAY_S;
    let attacks: Vec<AttackInjection> = (0..(days - days / 2) * 2)
        .map(|i| AttackInjection {
            sensors: first_k_sensors(3),
            model: AttackModel::DynamicCreation {
                target: vec![25.0, 69.0],
            },
            start: onset + i * 12 * 3600,
            end: Some(onset + i * 12 * 3600 + 6 * 3600),
        })
        .collect();
    let trace = inject_attacks(&clean, &attacks, &cfg.ranges);
    (trace, cfg)
}

/// Dynamic Change over a plateaued environment (§3.4's 50 → 10 alias).
pub fn change_scenario(days: u64, seed: u64) -> (Trace, SimConfig) {
    let mut cfg = gdi::month_config();
    cfg.duration = days * DAY_S;
    let mut schedule = Vec::new();
    for step in 0..days * 4 {
        let v = match step % 4 {
            0 => vec![12.0, 94.0],
            1 | 3 => vec![22.0, 74.0],
            _ => vec![31.0, 56.0],
        };
        schedule.push((step * 6 * 3600, v));
    }
    cfg.environment = sentinet_sim::EnvironmentModel::Piecewise(schedule);
    let clean = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
    let attack = AttackInjection::from_onset(
        first_k_sensors(3),
        AttackModel::DynamicChange {
            offset: vec![-15.0, 0.0],
        },
        0,
    );
    let trace = inject_attacks(&clean, &[attack], &cfg.ranges);
    (trace, cfg)
}

/// Mixed attack alternating creation and deletion phases daily.
pub fn mixed_scenario(days: u64, seed: u64) -> (Trace, SimConfig) {
    let (clean, cfg) = clean_scenario(days, seed);
    let attack = AttackInjection::from_onset(
        first_k_sensors(3),
        AttackModel::Mixed {
            creation_target: vec![40.0, 20.0],
            freeze_at: vec![12.0, 94.0],
            phase_period: DAY_S,
        },
        days / 2 * DAY_S,
    );
    let trace = inject_attacks(&clean, &[attack], &cfg.ranges);
    (trace, cfg)
}

/// Runs the default pipeline over a trace.
pub fn run_pipeline(trace: &Trace, cfg: &SimConfig) -> Pipeline {
    run_pipeline_with(trace, cfg, PipelineConfig::default())
}

/// Runs a custom-configured pipeline over a trace.
pub fn run_pipeline_with(trace: &Trace, cfg: &SimConfig, pipeline_cfg: PipelineConfig) -> Pipeline {
    let mut p = Pipeline::new(pipeline_cfg, cfg.sample_period);
    p.process_trace(trace);
    p
}

/// `"(24,70)"`-style label for a model-state slot, matching the paper's
/// state naming.
pub fn state_label(pipeline: &Pipeline, slot: usize) -> String {
    match pipeline.model_states().and_then(|s| s.centroid_any(slot)) {
        Some(c) => format!("({:.0},{:.0})", c[0], c[1]),
        None => format!("s{slot}"),
    }
}

/// Prints a labeled observation matrix restricted to interesting rows
/// and columns, in the paper's table style.
pub fn print_matrix(
    title: &str,
    b: &sentinet_hmm::StochasticMatrix,
    row_labels: &[String],
    col_labels: &[String],
    rows: &[usize],
    cols: &[usize],
) {
    println!("{title}");
    print!("{:>10}", "i↓ j→");
    for &c in cols {
        print!(" {:>9}", col_labels[c]);
    }
    println!();
    for &r in rows {
        print!("{:>10}", row_labels[r]);
        for &c in cols {
            print!(" {:>9.4}", b[(r, c)]);
        }
        println!();
    }
}

/// Columns of `b` (over the given rows) that carry visible mass — used
/// to keep printed tables to the interesting columns, like the paper.
pub fn visible_columns(
    b: &sentinet_hmm::StochasticMatrix,
    rows: &[usize],
    floor: f64,
) -> Vec<usize> {
    (0..b.num_cols())
        .filter(|&c| rows.iter().any(|&r| b[(r, c)] >= floor))
        .collect()
}

/// Active `B` rows of the global `M_CO` given minimum evidence.
pub fn active_rows(pipeline: &Pipeline) -> Vec<usize> {
    pipeline
        .m_co()
        .map(|m| {
            m.observation_evidence()
                .iter()
                .enumerate()
                .filter(|(_, &c)| c >= pipeline.config().min_state_evidence)
                .map(|(i, _)| i)
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build() {
        for (name, (trace, cfg)) in [
            ("clean", clean_scenario(1, 1)),
            ("stuck", stuck_at_scenario(2, 1)),
            ("calib", calibration_scenario(1, 1)),
            ("deletion", deletion_scenario(2, 1)),
            ("creation", creation_scenario(2, 1)),
            ("change", change_scenario(1, 1)),
            ("mixed", mixed_scenario(2, 1)),
            ("noise", noise_scenario(1, 1)),
            ("additive", additive_scenario(1, 1)),
        ] {
            assert!(!trace.is_empty(), "{name} trace empty");
            assert_eq!(cfg.num_sensors, 10, "{name} sensors");
        }
    }

    #[test]
    fn run_pipeline_produces_model() {
        let (trace, cfg) = clean_scenario(1, 2);
        let p = run_pipeline(&trace, &cfg);
        assert!(p.correct_model().is_some());
        assert!(!active_rows(&p).is_empty());
        assert!(state_label(&p, 0).starts_with('('));
    }
}
