//! EXT-3 — parameter ablations.
//!
//! Sweeps the design knobs DESIGN.md calls out — learning factors,
//! window size, observable-mean trim — on the stuck-at scenario and
//! reports detection latency (windows from fault onset to track open)
//! and classification outcome. This quantifies the sensitivity the
//! paper only gestures at ("parameter w must be large enough … yet
//! small enough").

use sentinet_bench::stuck_at_scenario;
use sentinet_core::{Diagnosis, ErrorType, Pipeline, PipelineConfig};
use sentinet_sim::{SensorId, DAY_S};

fn outcome(cfg: PipelineConfig, sample_period: u64) -> (Option<u64>, &'static str, f64) {
    let (trace, _sim_cfg) = stuck_at_scenario(14, 31);
    let mut p = Pipeline::new(cfg, sample_period);
    p.process_trace(&trace);
    let window_s = p.config().window_samples as u64 * sample_period;
    // Fault onset: day 1 (drift begins) → window index at onset.
    let onset_window = DAY_S / window_s;
    let latency = p
        .tracks(SensorId(6))
        .and_then(|t| t.first().copied())
        .map(|t| t.opened.saturating_sub(onset_window));
    let label = match p.classify(SensorId(6)) {
        Diagnosis::Error(ErrorType::StuckAt { .. }) => "stuck",
        Diagnosis::Error(ErrorType::Calibration { .. }) => "calib",
        Diagnosis::Error(ErrorType::Additive { .. }) => "addit",
        Diagnosis::Error(ErrorType::Unknown) => "unknown",
        Diagnosis::Attack(_) => "ATTACK!",
        Diagnosis::ErrorFree => "missed",
    };
    // False raw alarms on a healthy sensor as the cost metric.
    let hist = p.raw_alarm_history(SensorId(9)).unwrap_or(&[]);
    let false_rate = if hist.is_empty() {
        0.0
    } else {
        hist.iter().filter(|(_, r)| *r).count() as f64 / hist.len() as f64
    };
    (latency, label, false_rate)
}

fn report(name: &str, value: String, cfg: PipelineConfig, sample_period: u64) {
    let (latency, label, false_rate) = outcome(cfg, sample_period);
    println!(
        "{:>18} {:>8} {:>22} {:>9} {:>11.2}%",
        name,
        value,
        latency
            .map(|l| format!("{l} windows"))
            .unwrap_or_else(|| "not detected".into()),
        label,
        100.0 * false_rate
    );
}

fn main() {
    let period = 300;
    println!("=== EXT-3: parameter ablations (stuck-at scenario, 14 days) ===");
    println!(
        "{:>18} {:>8} {:>22} {:>9} {:>12}",
        "parameter", "value", "detection latency", "class", "false raw"
    );

    for gamma in [0.02, 0.05, 0.10, 0.30, 0.90] {
        report(
            "β=γ (new-sample)",
            format!("{gamma}"),
            PipelineConfig {
                beta: gamma,
                gamma,
                ..Default::default()
            },
            period,
        );
    }
    for w in [4u32, 8, 12, 24, 48] {
        report(
            "w (samples)",
            format!("{w}"),
            PipelineConfig {
                window_samples: w,
                ..Default::default()
            },
            period,
        );
    }
    for alpha in [0.02, 0.10, 0.40] {
        let mut cfg = PipelineConfig::default();
        cfg.cluster.alpha = alpha;
        report("α (clustering)", format!("{alpha}"), cfg, period);
    }
    for trim in [0.0, 0.05, 0.15, 0.30] {
        report(
            "observable trim",
            format!("{trim}"),
            PipelineConfig {
                observable_trim: trim,
                ..Default::default()
            },
            period,
        );
    }
    for spawn in [5.0, 8.0, 14.0] {
        let mut cfg = PipelineConfig::default();
        cfg.cluster.spawn_threshold = spawn;
        report("spawn threshold", format!("{spawn}"), cfg, period);
    }
    println!("\nreading: trim 0 lets the stuck sensor drag the observable state");
    println!("(attack-like signatures appear — the robust-mean deviation earns its");
    println!("keep); small windows raise the false raw-alarm rate, large ones");
    println!("amortize noise but coarsen time; the stuck-at verdict itself is");
    println!("insensitive to the learning factors because the fault is persistent.");
}
