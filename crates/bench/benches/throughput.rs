//! Criterion throughput benches: serial `Pipeline` vs the sharded
//! `Engine` on the same fixed-seed trace.
//!
//! The engine at one shard runs inline (no threads) and must match the
//! serial pipeline's cost; higher shard counts pay a per-window
//! coordination toll that only amortises with multiple cores. The
//! headline numbers for the paper-style table live in the
//! `sentinet-bench` binary (`BENCH_engine.json`); these benches exist
//! to catch regressions in either path.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_engine::Engine;
use sentinet_sim::{gdi, simulate, Trace, DAY_S};
use std::hint::black_box;

fn wide_trace(num_sensors: u16, days: u64, seed: u64) -> (Trace, u64) {
    let mut cfg = gdi::month_config();
    cfg.num_sensors = num_sensors;
    cfg.duration = days * DAY_S;
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
    (trace, cfg.sample_period)
}

fn bench_throughput(c: &mut Criterion) {
    let (trace, period) = wide_trace(100, 1, 42);

    c.bench_function("throughput/serial_100_sensors", |b| {
        b.iter(|| {
            let mut p = Pipeline::new(PipelineConfig::default(), period);
            p.process_trace(black_box(&trace));
            p.windows_processed()
        })
    });

    for shards in [1usize, 4] {
        let engine = Engine::new(PipelineConfig::default(), period, shards);
        c.bench_function(&format!("throughput/engine_{shards}_shards"), |b| {
            b.iter(|| {
                engine
                    .process_trace(black_box(&trace))
                    .expect("healthy run")
                    .windows_processed()
            })
        });
    }
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
