//! Figure 12 — raw alarms for a faulty and a non-faulty node.
//!
//! Paper outcome: the raw alarm stream clearly separates the faulty
//! node from the healthy one but is noisy — ≈ 1.5 % false alarms on the
//! healthy sensor — motivating the Alarm Filtering module.

use sentinet_bench::{run_pipeline, stuck_at_scenario};
use sentinet_sim::SensorId;

fn main() {
    let (trace, cfg) = stuck_at_scenario(30, 12);
    let p = run_pipeline(&trace, &cfg);

    let faulty = SensorId(6);
    let healthy = SensorId(9);

    println!("=== Figure 12: raw alarms, faulty vs non-faulty node ===");
    for (name, id) in [("faulty sensor6", faulty), ("healthy sensor9", healthy)] {
        let hist = p.raw_alarm_history(id).expect("sensor seen");
        let raw = hist.iter().filter(|(_, r)| *r).count();
        let rate = raw as f64 / hist.len() as f64;
        println!(
            "\n{name}: {raw}/{} windows raw-alarmed ({:.1}%)",
            hist.len(),
            100.0 * rate
        );
        // A strip chart of the first 120 windows, '|' = raw alarm.
        let strip: String = hist
            .iter()
            .take(120)
            .map(|(_, r)| if *r { '|' } else { '.' })
            .collect();
        println!("first 120 windows: {strip}");
    }

    let healthy_rate = {
        let hist = p.raw_alarm_history(healthy).unwrap();
        hist.iter().filter(|(_, r)| *r).count() as f64 / hist.len() as f64
    };
    let faulty_rate = {
        let hist = p.raw_alarm_history(faulty).unwrap();
        hist.iter().filter(|(_, r)| *r).count() as f64 / hist.len() as f64
    };
    println!("\nshape summary:");
    println!(
        "  healthy false raw-alarm rate: {:.2}% (paper: ≈ 1.5%)",
        100.0 * healthy_rate
    );
    println!(
        "  faulty raw-alarm rate: {:.1}% (paper: densely alarmed)",
        100.0 * faulty_rate
    );

    // Filtered alarms clean the stream up completely for the healthy
    // node while keeping the faulty one flagged.
    let healthy_filtered = p.tracks(healthy).map(|t| t.len()).unwrap_or(0);
    let faulty_filtered = p.tracks(faulty).map(|t| t.len()).unwrap_or(0);
    println!(
        "  healthy filtered tracks: {healthy_filtered} | faulty filtered tracks: {faulty_filtered}"
    );
    assert!(healthy_rate < 0.05, "healthy raw rate {healthy_rate}");
    assert!(faulty_rate > 0.5, "faulty raw rate {faulty_rate}");
    assert_eq!(healthy_filtered, 0, "healthy node must not open tracks");
    assert!(faulty_filtered >= 1, "faulty node must open a track");
}
