//! Tables 4–5 — the HMMs learned for faulty sensor 7 (calibration
//! fault) and the ratio/difference disambiguation.
//!
//! Paper outcome: both `B^CO` and `B^CE` are approximately orthogonal;
//! the correct↔error state association yields ratios with low variance
//! (avg ≈ (1.24, 1.16)) and differences with high variance, so the
//! sensor is classified as a calibration fault.

use sentinet_bench::{
    active_rows, calibration_scenario, print_matrix, run_pipeline, state_label, visible_columns,
};
use sentinet_core::{Diagnosis, ErrorType};
use sentinet_hmm::structure::{mean_var, OrthoTolerance, OrthogonalityReport};
use sentinet_sim::SensorId;

fn main() {
    let (trace, cfg) = calibration_scenario(30, 45);
    let p = run_pipeline(&trace, &cfg);
    let sensor = SensorId(7);

    let rows = active_rows(&p);
    let labels: Vec<String> = (0..p.m_co().unwrap().observation().num_rows())
        .map(|s| state_label(&p, s))
        .collect();

    let b_co = p.m_co().unwrap().observation();
    let cols = visible_columns(b_co, &rows, 0.01);
    print_matrix(
        "=== Table 4: B^CO matrix (calibration fault on sensor 7) ===",
        b_co,
        &labels,
        &labels,
        &rows,
        &cols,
    );
    let rep = OrthogonalityReport::analyze(b_co, OrthoTolerance::default(), Some(&rows));
    println!(
        "B^CO rows orthogonal: {} | cols orthogonal: {}",
        rep.rows_orthogonal, rep.cols_orthogonal
    );

    let m_ce = p.m_ce(sensor).expect("sensor 7 tracked");
    let b_ce = m_ce.observation();
    let ce_rows: Vec<usize> = m_ce
        .observation_evidence()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c >= p.config().min_state_evidence)
        .map(|(i, _)| i)
        .collect();
    let mut ce_labels = vec!["⊥".to_string()];
    ce_labels.extend((0..b_ce.num_cols() - 1).map(|s| state_label(&p, s)));
    let ce_cols = visible_columns(b_ce, &ce_rows, 0.01);
    print_matrix(
        "\n=== Table 5: B^CE matrix for sensor 7 (col 0 = ⊥) ===",
        b_ce,
        &labels,
        &ce_labels,
        &ce_rows,
        &ce_cols,
    );

    // The ratio/difference analysis over the associated state pairs.
    let verdict = p.classify(sensor);
    println!("\nclassification verdict: {verdict}");
    let gains = match &verdict {
        Diagnosis::Error(ErrorType::Calibration { gains }) => gains.clone(),
        other => panic!("expected calibration classification, got {other}"),
    };
    println!(
        "estimated per-attribute gains: ({:.2}, {:.2}) — injected: (1.15, 1.15)",
        gains[0], gains[1]
    );
    println!("paper: ratios avg (1.24, 1.16) with low variance; differences high variance");
    assert!((gains[0] - 1.15).abs() < 0.12, "gain[0] {}", gains[0]);

    // Reproduce the paper's variance comparison explicitly from the
    // associated centroids.
    let states = p.model_states().unwrap();
    let assoc = sentinet_hmm::structure::one_to_one_association(
        &b_ce.drop_columns(&[0]).unwrap(),
        p.config().association_threshold,
        Some(
            &ce_rows
                .iter()
                .copied()
                .filter(|&i| b_ce[(i, 0)] <= 0.5)
                .collect::<Vec<_>>(),
        ),
    )
    .expect("one-to-one association exists for a calibration fault");
    let mut ratios = [Vec::new(), Vec::new()];
    let mut diffs = [Vec::new(), Vec::new()];
    for &(c, e) in &assoc {
        if let (Some(cc), Some(ec)) = (states.centroid_any(c), states.centroid_any(e)) {
            for d in 0..2 {
                if ec[d].abs() > 1e-9 {
                    ratios[d].push(cc[d] / ec[d]);
                }
                diffs[d].push(cc[d] - ec[d]);
            }
        }
    }
    for d in 0..2 {
        let r = mean_var(&ratios[d]).expect("pairs exist");
        let f = mean_var(&diffs[d]).expect("pairs exist");
        println!(
            "attr {d}: ratio mean {:.3} var {:.4} | difference mean {:.2} var {:.2}",
            r.mean, r.var, f.mean, f.var
        );
    }
}
