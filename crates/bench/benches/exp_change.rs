//! EXT-6 — Dynamic Change attack classification.
//!
//! §3.4 describes the Dynamic Change attack ("each time correct sensors
//! report a 50 value … the overall temperature measured by the network
//! equals 10") but §4 never evaluates it. This bench does: a plateaued
//! environment cycles through three states while ⅓ of the sensors
//! shift the observed temperature by −15 °C. The `B^CO` stays
//! orthogonal but its correct→observable association is a non-identity
//! one-to-one map whose state attributes differ — the Change signature.

use sentinet_bench::{
    active_rows, change_scenario, print_matrix, run_pipeline, state_label, visible_columns,
};
use sentinet_core::AttackType;
use sentinet_hmm::structure::{OrthoTolerance, OrthogonalityReport};

fn main() {
    let (trace, cfg) = change_scenario(10, 99);
    let p = run_pipeline(&trace, &cfg);

    let rows = active_rows(&p);
    let labels: Vec<String> = (0..p.m_co().unwrap().observation().num_rows())
        .map(|s| state_label(&p, s))
        .collect();
    let b_co = p.m_co().unwrap().observation();
    let cols = visible_columns(b_co, &rows, 0.01);
    print_matrix(
        "=== EXT-6: B^CO matrix (Dynamic Change) ===",
        b_co,
        &labels,
        &labels,
        &rows,
        &cols,
    );
    let rep = OrthogonalityReport::analyze(b_co, OrthoTolerance::default(), Some(&rows));
    println!(
        "rows orthogonal: {} | cols orthogonal: {} (change preserves orthogonality)",
        rep.row_violations.is_empty(),
        rep.cols_orthogonal
    );

    let verdict = p.network_attack();
    println!("\nclassification verdict: {verdict:?}");
    match verdict {
        Some(AttackType::DynamicChange { pairs }) => {
            println!("remapped state pairs (correct -> observable):");
            for (c, o) in &pairs {
                println!("  {} -> {}", state_label(&p, *c), state_label(&p, *o));
            }
            assert!(!pairs.is_empty());
        }
        other => panic!("expected dynamic change, got {other:?}"),
    }
    println!("\nnote: under a continuously drifting environment the shifted image");
    println!("of each state smears over two adjacent spawned states and the");
    println!("signature degrades to Creation — a quantization limitation shared");
    println!("with the paper's state-based formulation (see EXPERIMENTS.md).");
}
