//! Figure 8 — a week of humidity for faulty sensors 6 and 7 versus
//! healthy sensor 9.
//!
//! Sensor 6 "starts reporting a continuously decreasing value of the
//! humidity that eventually leads in an almost-zero value"; sensor 7
//! "reports, on average, a value about 10% higher than the correct
//! sensors". Both behaviours are reproduced by the injectors and shown
//! as daily means below.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_bench::clean_scenario;
use sentinet_inject::{inject_faults, FaultInjection, FaultModel};
use sentinet_sim::{SensorId, DAY_S};

fn main() {
    let (clean, cfg) = clean_scenario(7, 8);
    let trace = inject_faults(
        &clean,
        &[
            FaultInjection::from_onset(
                SensorId(6),
                FaultModel::DriftToStuck {
                    target: vec![15.0, 1.0],
                    drift_duration: 2 * DAY_S,
                },
                DAY_S,
            ),
            FaultInjection::from_onset(
                SensorId(7),
                FaultModel::Calibration {
                    gain: vec![1.0, 1.10],
                },
                0,
            ),
        ],
        &cfg.ranges,
        &mut StdRng::seed_from_u64(88),
    );

    println!("=== Figure 8: humidity over one week, sensors 6, 7, 9 ===");
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "day", "sensor6", "sensor7", "sensor9"
    );
    let daily = |sensor: u16, day: u64| -> f64 {
        let lo = day * DAY_S;
        let hi = lo + DAY_S;
        let vals: Vec<f64> = trace
            .sensor_series(SensorId(sensor))
            .into_iter()
            .filter(|(t, _)| (lo..hi).contains(t))
            .map(|(_, r)| r.values()[1])
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    for day in 0..7 {
        println!(
            "{:>4} {:>12.1} {:>12.1} {:>12.1}",
            day,
            daily(6, day),
            daily(7, day),
            daily(9, day)
        );
    }

    let s6_last = daily(6, 6);
    let s7_avg: f64 = (0..7).map(|d| daily(7, d)).sum::<f64>() / 7.0;
    let s9_avg: f64 = (0..7).map(|d| daily(9, d)).sum::<f64>() / 7.0;
    println!("\nshape summary:");
    println!("  sensor6 final-day humidity: {s6_last:.1} %RH (paper: ≈ 0)");
    println!(
        "  sensor7 / sensor9 average ratio: {:.3} (paper: ≈ 1.10)",
        s7_avg / s9_avg
    );
    assert!(s6_last < 5.0, "sensor 6 must bottom out near zero");
    assert!(
        (1.05..1.15).contains(&(s7_avg / s9_avg)),
        "sensor 7 must read ≈ 10% high"
    );
}
