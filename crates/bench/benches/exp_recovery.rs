//! EXT-9 — recovery-action quality: data rehabilitation.
//!
//! The paper motivates fault/attack distinction with "initiat[ing] a
//! correct recovery action" but never evaluates one. This bench does:
//! for each recoverable fault type, apply the pipeline's recovery plan
//! to the corrupted stream and measure how much of the error the
//! inverted correction removes (mean absolute temperature error vs the
//! clean ground truth).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_bench::{clean_scenario, run_pipeline};
use sentinet_core::{RecoveryAction, RecoveryPlan};
use sentinet_inject::{inject_faults, FaultInjection, FaultModel};
use sentinet_sim::SensorId;

fn evaluate(name: &str, sensor: SensorId, model: FaultModel, seed: u64) {
    let (clean, cfg) = clean_scenario(14, seed);
    let faulty = inject_faults(
        &clean,
        &[FaultInjection::from_onset(sensor, model, 0)],
        &cfg.ranges,
        &mut StdRng::seed_from_u64(seed ^ 0xBEEF),
    );
    let p = run_pipeline(&faulty, &cfg);
    let plan = RecoveryPlan::from_pipeline(&p);
    let action = plan.action(sensor).clone();

    let corrupted = faulty.sensor_series(sensor);
    let truth = clean.sensor_series(sensor);
    let mut err_raw = 0.0;
    let mut err_fixed = 0.0;
    let mut kept = 0.0;
    for ((_, bad), (_, good)) in corrupted.iter().zip(&truth) {
        err_raw +=
            (bad.values()[0] - good.values()[0]).abs() + (bad.values()[1] - good.values()[1]).abs();
        if let Some(fixed) = action.rehabilitate(bad) {
            err_fixed += (fixed.values()[0] - good.values()[0]).abs()
                + (fixed.values()[1] - good.values()[1]).abs();
            kept += 1.0;
        }
    }
    let n = corrupted.len() as f64;
    err_raw /= n;
    let action_name = match &action {
        RecoveryAction::None => "none",
        RecoveryAction::Recalibrate { .. } => "recalibrate",
        RecoveryAction::BiasCorrect { .. } => "bias-correct",
        RecoveryAction::MaskAndService => "mask",
        RecoveryAction::Quarantine { .. } => "quarantine",
    };
    if kept > 0.0 {
        err_fixed /= kept;
        let removed = 100.0 * (1.0 - err_fixed / err_raw);
        println!(
            "{:<22} {:>13} {:>11.2} {:>11.2} {:>10.0}%",
            name, action_name, err_raw, err_fixed, removed
        );
    } else {
        println!(
            "{:<22} {:>13} {:>11.2} {:>11} {:>11}",
            name, action_name, err_raw, "masked", "-"
        );
    }
}

fn main() {
    println!("=== EXT-9: recovery quality (mean |error| vs clean truth) ===");
    println!(
        "{:<22} {:>13} {:>11} {:>11} {:>11}",
        "fault", "action", "raw err", "fixed err", "removed"
    );
    evaluate(
        "calibration ×1.15",
        SensorId(7),
        FaultModel::Calibration {
            gain: vec![1.15, 1.15],
        },
        45,
    );
    evaluate(
        "additive (−9, −4.5)",
        SensorId(3),
        FaultModel::Additive {
            offset: vec![-9.0, -4.5],
        },
        46,
    );
    evaluate(
        "stuck-at (15, 1)",
        SensorId(6),
        FaultModel::StuckAt {
            value: vec![15.0, 1.0],
        },
        47,
    );
    println!("\nreading: parametric faults (calibration/additive) are *recoverable* —");
    println!("the estimated inverse removes most of the error and the sensor keeps");
    println!("contributing; a stuck sensor carries no information and is masked.");
    println!("Distinguishing the cases is exactly why classification matters (§1).");
}
