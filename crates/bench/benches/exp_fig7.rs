//! Figure 7 — the correct Markov model `M_C` of the environment.
//!
//! One month of clean data; the pipeline's user-facing deliverable is
//! the Markov model over the learned model states. The paper identifies
//! four key states — (12,94), (17,84), (24,70), (31,56) — plus one
//! low-occupancy fluctuation state that it drops; we print our key
//! states, their occupancies, and the transition edges.

use sentinet_bench::{clean_scenario, run_pipeline, state_label};

fn main() {
    let (trace, cfg) = clean_scenario(30, 7);
    let p = run_pipeline(&trace, &cfg);
    let m_c = p.correct_model().expect("bootstrapped");

    println!("=== Figure 7: correct Markov model M_C ===");
    let key = m_c.key_states(p.config().key_state_occupancy);
    println!(
        "key states (occupancy ≥ {:.0}%):",
        100.0 * p.config().key_state_occupancy
    );
    for &s in &key {
        println!(
            "  {} occupancy {:.2}",
            state_label(&p, s),
            m_c.occupancy()[s]
        );
    }
    let dropped: Vec<String> = (0..m_c.num_states())
        .filter(|s| !key.contains(s) && m_c.occupancy()[*s] > 0.0)
        .map(|s| state_label(&p, s))
        .collect();
    println!("low-occupancy states dropped (paper drops its (16,27)): {dropped:?}");

    println!("\ntransitions (prob ≥ 0.05):");
    for (i, j, prob) in m_c.edges(0.05) {
        if key.contains(&i) && key.contains(&j) {
            println!(
                "  {} -> {}  {:.2}",
                state_label(&p, i),
                state_label(&p, j),
                prob
            );
        }
    }

    // Graphviz output for direct visual comparison with the figure.
    let labels: Vec<String> = (0..m_c.num_states()).map(|s| state_label(&p, s)).collect();
    println!("\nGraphviz DOT:\n{}", m_c.to_dot(&labels, 0.05));

    println!("paper reference: 4 key states (12,94) (17,84) (24,70) (31,56),");
    println!("chain cycling low-temp/high-hum <-> high-temp/low-hum through the middle states");
    assert!(
        (3..=6).contains(&key.len()),
        "expected about four key states, got {}",
        key.len()
    );
}
