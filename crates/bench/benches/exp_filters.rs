//! EXT-4 — alarm-filter comparison: k-of-n vs SPRT vs CUSUM vs EWMA.
//!
//! §3.1 proposes the simple k-of-n filter and points at SPRT/CUSUM as
//! "sophisticated approaches". This bench drives all four policies with
//! synthetic raw-alarm streams (healthy rate vs faulty rate, matching
//! the Fig. 12 regime) and reports detection latency and false-alarm
//! behaviour per policy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sentinet_filter::{AlarmFilter, Cusum, EwmaChart, KOfNFilter, SprtAlarmFilter};

const HEALTHY_RATE: f64 = 0.015; // the paper's ≈ 1.5 % false raw alarms
const FAULTY_RATE: f64 = 0.85;
const STREAM_LEN: usize = 2_000;
const TRIALS: u64 = 200;

fn boolean_latency<F: AlarmFilter>(mut make: impl FnMut() -> F) -> (f64, f64) {
    // Returns (mean detection latency on faulty streams, false filtered
    // alarm probability per healthy stream).
    let mut latencies = Vec::new();
    let mut false_alarms = 0u64;
    for trial in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(9_000 + trial);
        // Faulty stream: alarms at FAULTY_RATE from step 0.
        let mut f = make();
        let mut detected = None;
        for step in 0..STREAM_LEN {
            if f.push(rng.gen::<f64>() < FAULTY_RATE) {
                detected = Some(step);
                break;
            }
        }
        if let Some(step) = detected {
            latencies.push(step as f64);
        }
        // Healthy stream.
        let mut h = make();
        let mut fired = false;
        for _ in 0..STREAM_LEN {
            if h.push(rng.gen::<f64>() < HEALTHY_RATE) {
                fired = true;
                break;
            }
        }
        if fired {
            false_alarms += 1;
        }
    }
    let mean_latency = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    (mean_latency, false_alarms as f64 / TRIALS as f64)
}

fn main() {
    println!("=== EXT-4: alarm filter comparison ===");
    println!(
        "(healthy raw rate {:.1}%, faulty raw rate {:.0}%, {} trials)",
        100.0 * HEALTHY_RATE,
        100.0 * FAULTY_RATE,
        TRIALS
    );
    println!(
        "{:>16} {:>18} {:>22}",
        "filter", "mean latency", "false alarm prob"
    );

    let (lat, fa) = boolean_latency(|| KOfNFilter::new(6, 10));
    println!("{:>16} {:>15.1} wd {:>21.3}", "k-of-n (6/10)", lat, fa);
    let (lat, fa) = boolean_latency(|| KOfNFilter::new(3, 5));
    println!("{:>16} {:>15.1} wd {:>21.3}", "k-of-n (3/5)", lat, fa);
    let (lat, fa) = boolean_latency(SprtAlarmFilter::balanced);
    println!("{:>16} {:>15.1} wd {:>21.3}", "SPRT", lat, fa);

    // CUSUM/EWMA operate on the numeric raw-alarm indicator stream.
    fn numeric_latency<D, F>(mut make: F) -> (f64, f64)
    where
        F: FnMut() -> D,
        D: FnMut(f64) -> bool,
    {
        let mut latencies = Vec::new();
        let mut false_alarms = 0u64;
        for trial in 0..TRIALS {
            let mut rng = StdRng::seed_from_u64(11_000 + trial);
            let mut faulty = make();
            for step in 0..STREAM_LEN {
                let x = if rng.gen::<f64>() < FAULTY_RATE {
                    1.0
                } else {
                    0.0
                };
                if faulty(x) {
                    latencies.push(step as f64);
                    break;
                }
            }
            let mut healthy = make();
            let mut fired = false;
            for _ in 0..STREAM_LEN {
                let x = if rng.gen::<f64>() < HEALTHY_RATE {
                    1.0
                } else {
                    0.0
                };
                fired |= healthy(x);
            }
            if fired {
                false_alarms += 1;
            }
        }
        (
            latencies.iter().sum::<f64>() / latencies.len().max(1) as f64,
            false_alarms as f64 / TRIALS as f64,
        )
    }

    let (lat, fa) = numeric_latency(|| {
        let mut c = Cusum::new(HEALTHY_RATE, 0.2, 2.0);
        move |x| c.push(x)
    });
    println!("{:>16} {:>15.1} wd {:>21.3}", "CUSUM", lat, fa);
    let (lat, fa) = numeric_latency(|| {
        let mut e = EwmaChart::new(HEALTHY_RATE, 0.13, 0.05, 8.0);
        move |x| e.push(x)
    });
    println!("{:>16} {:>15.1} wd {:>21.3}", "EWMA", lat, fa);

    println!("\nreading: SPRT reaches a verdict fastest at matched error rates;");
    println!("k-of-n is the simplest and fully deterministic; CUSUM/EWMA trade");
    println!("latency against false-alarm rate through their thresholds.");
}
