//! EXT-2 — breaking point of the majority assumption.
//!
//! The methodology's Correct State Identification (Eq. 4) "assumes that
//! the largest set of observations that cluster together always
//! includes a majority of correct observations". This sweep compromises
//! 0…8 of 10 sensors with a deletion attack and reports when detection
//! collapses — empirically locating the assumption's breaking point.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_bench::{clean_scenario, run_pipeline};
use sentinet_core::AttackType;
use sentinet_inject::{first_k_sensors, inject_attacks, AttackInjection, AttackModel};
use sentinet_sim::DAY_S;

fn main() {
    let days = 8;
    println!("=== EXT-2: detection vs number of compromised sensors ===");
    println!(
        "{:>11} {:>10} {:>16} {:>14} {:>18}",
        "compromised", "detected", "verdict", "honest framed", "sensor0 diagnosis"
    );
    let _ = StdRng::seed_from_u64(0);
    for m in 0..=8u16 {
        let (clean, cfg) = clean_scenario(days, 400 + m as u64);
        let trace = if m == 0 {
            clean
        } else {
            let attack = AttackInjection::from_onset(
                first_k_sensors(m),
                AttackModel::DynamicDeletion {
                    freeze_at: vec![12.0, 94.0],
                },
                days / 2 * DAY_S,
            );
            inject_attacks(&clean, &[attack], &cfg.ranges)
        };
        let p = run_pipeline(&trace, &cfg);
        let verdict = p.network_attack();
        let label = match &verdict {
            None => "none".to_string(),
            Some(AttackType::DynamicDeletion { .. }) => "deletion".to_string(),
            Some(AttackType::DynamicCreation { .. }) => "creation".to_string(),
            Some(AttackType::DynamicChange { .. }) => "change".to_string(),
            Some(AttackType::Mixed) => "mixed".to_string(),
        };
        // How many *honest* sensors got (falsely) alarmed?
        let framed = (m..10)
            .filter(|&s| p.ever_alarmed(sentinet_sim::SensorId(s)))
            .count();
        let s0 = if m == 0 {
            "-".to_string()
        } else {
            p.classify(sentinet_sim::SensorId(0)).to_string()
        };
        println!(
            "{:>11} {:>10} {:>16} {:>14} {:>18}",
            m,
            verdict.is_some(),
            label,
            framed,
            s0
        );
    }
    println!("\nexpected shape: reliable deletion verdicts at 2–3 compromised (the");
    println!("paper's ⅓ operating point). A single attacker cannot move the trimmed");
    println!("mean and is diagnosed per-sensor instead. Beyond 3, the ⅔ decisiveness");
    println!("rule refuses ambiguous windows: the system goes silent (fail-safe) and");
    println!("honest sensors stay unframed until the compromised set dominates.");
}
