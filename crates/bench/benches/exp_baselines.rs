//! EXT-5 — sentinet versus the related-work baselines.
//!
//! §2 argues the Warrender–Forrest single-HMM detector (and by
//! extension Markov-chain detectors) are hampered by (1) arbitrary
//! hidden states, (2) a mandatory attack-free training phase, and (3)
//! no diagnosis. This bench makes the comparison concrete on identical
//! data: all three systems see the same quantized window-state
//! sequences; the baselines get a *luxury* the paper denies them —
//! a genuinely clean training prefix — and still only produce a binary
//! verdict, while sentinet needs no clean phase and names the fault.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_baselines::{HmmDetector, MarkovDetector};
use sentinet_bench::{run_pipeline, stuck_at_scenario};
use sentinet_cluster::{ClusterConfig, ModelStates};
use sentinet_sim::{SensorId, DAY_S};

/// Quantizes one sensor's readings into state indices using fixed
/// reference states (so all detectors share a symbol alphabet).
fn quantize(trace: &sentinet_sim::Trace, sensor: SensorId, states: &ModelStates) -> Vec<usize> {
    trace
        .sensor_series(sensor)
        .into_iter()
        .map(|(_, r)| states.nearest(r.values()).expect("states non-empty").0)
        .collect()
}

fn main() {
    let (trace, cfg) = stuck_at_scenario(14, 55);
    let reference = ModelStates::new(
        vec![
            vec![12.0, 94.0],
            vec![17.0, 84.0],
            vec![24.0, 70.0],
            vec![31.0, 56.0],
            vec![15.0, 1.0],
        ],
        ClusterConfig::default(),
    );
    let num_symbols = reference.num_slots();

    println!("=== EXT-5: sentinet vs Warrender-Forrest HMM vs Markov chain ===");
    println!("workload: 14 days, sensor 6 drifts to stuck-at from day 1\n");

    // --- sentinet: no clean training phase at all.
    let p = run_pipeline(&trace, &cfg);
    let sentinet_verdict = p.classify(SensorId(6));
    let healthy_verdict = p.classify(SensorId(9));
    println!("sentinet (trained on the corrupted stream itself):");
    println!("  sensor6: {sentinet_verdict}");
    println!("  sensor9: {healthy_verdict}");

    // --- baselines: trained on sensor 9's (clean) first week, tested on
    // week 2 of sensors 6 and 9.
    let mut rng = StdRng::seed_from_u64(5);
    let clean_seq = quantize(&trace, SensorId(9), &reference);
    let train: Vec<Vec<usize>> = clean_seq[..clean_seq.len() / 2]
        .chunks(48)
        .map(<[usize]>::to_vec)
        .collect();

    let split_time = 7 * DAY_S;
    let test_windows = |sensor: SensorId| -> Vec<Vec<usize>> {
        let series: Vec<usize> = trace
            .sensor_series(sensor)
            .into_iter()
            .filter(|(t, _)| *t >= split_time)
            .map(|(_, r)| reference.nearest(r.values()).expect("non-empty").0)
            .collect();
        series.chunks(48).map(<[usize]>::to_vec).collect()
    };

    let mut wf = HmmDetector::new(4, num_symbols);
    wf.train(&train, &mut rng).expect("training data is valid");
    wf.calibrate(&train, 3.0).expect("reference data is valid");
    let mc =
        MarkovDetector::train(num_symbols, &train, 0.01, 0.25).expect("training data is valid");

    for (name, id) in [
        ("faulty sensor6", SensorId(6)),
        ("healthy sensor9", SensorId(9)),
    ] {
        let windows = test_windows(id);
        let wf_flags = windows
            .iter()
            .filter(|w| wf.is_anomalous(w).unwrap_or(true))
            .count();
        let mc_flags = windows
            .iter()
            .filter(|w| mc.is_anomalous(w).unwrap_or(true))
            .count();
        println!(
            "\n{name}: {}/{} windows flagged by Warrender-Forrest, {}/{} by Markov chain",
            wf_flags,
            windows.len(),
            mc_flags,
            windows.len()
        );
    }

    println!("\nreading: both baselines *detect* the stuck sensor when granted a");
    println!("clean training phase, but neither can (a) operate without one nor");
    println!("(b) say WHAT is wrong — sentinet classifies the fault type and");
    println!("localizes it while training on the corrupted stream itself.");
}
