//! Criterion performance benches: the cost of every pipeline stage.
//!
//! The paper claims an "on-the-fly" technique cheap enough for a
//! collector node; these measurements substantiate that for this
//! implementation (window step, online HMM update, clustering round,
//! classification, and the batch Baum–Welch the baselines need).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_bench::{clean_scenario, run_pipeline, stuck_at_scenario};
use sentinet_cluster::{ClusterConfig, ModelStates};
use sentinet_core::{Pipeline, PipelineConfig};
use sentinet_hmm::{baum_welch, BaumWelchConfig, Hmm, OnlineHmmEstimator};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let (day_trace, cfg) = clean_scenario(1, 1);
    c.bench_function("pipeline/process_one_day", |b| {
        b.iter_batched(
            || Pipeline::new(PipelineConfig::default(), cfg.sample_period),
            |mut p| {
                p.process_trace(black_box(&day_trace));
                p
            },
            BatchSize::SmallInput,
        )
    });

    let (week_trace, cfg2) = clean_scenario(7, 2);
    c.bench_function("pipeline/process_one_week", |b| {
        b.iter_batched(
            || Pipeline::new(PipelineConfig::default(), cfg2.sample_period),
            |mut p| {
                p.process_trace(black_box(&week_trace));
                p
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_classification(c: &mut Criterion) {
    let (trace, cfg) = stuck_at_scenario(7, 3);
    let p = run_pipeline(&trace, &cfg);
    c.bench_function("classify/sensor", |b| {
        b.iter(|| black_box(p.classify(black_box(sentinet_sim::SensorId(6)))))
    });
    c.bench_function("classify/network", |b| {
        b.iter(|| black_box(p.network_attack()))
    });
}

fn bench_hmm(c: &mut Criterion) {
    let mut est = OnlineHmmEstimator::new(8, 9, 0.1, 0.1).expect("valid params");
    let mut i = 0usize;
    c.bench_function("hmm/online_observe", |b| {
        b.iter(|| {
            i = (i + 1) % 8;
            est.observe(black_box(i), black_box((i * 3) % 9))
                .expect("in range")
        })
    });

    let mut rng = StdRng::seed_from_u64(4);
    let truth = Hmm::random(6, 6, &mut rng).expect("valid dims");
    let (_, obs) = truth.sample(288, &mut rng).expect("positive length");
    c.bench_function("hmm/forward_288", |b| {
        b.iter(|| truth.log_likelihood(black_box(&obs)).expect("valid"))
    });
    c.bench_function("hmm/viterbi_288", |b| {
        b.iter(|| truth.viterbi(black_box(&obs)).expect("valid"))
    });

    let init = Hmm::random(6, 6, &mut rng).expect("valid dims");
    let bw_cfg = BaumWelchConfig {
        max_iters: 10,
        tol: 0.0,
        smoothing: 1e-6,
    };
    c.bench_function("hmm/baum_welch_10iters_288", |b| {
        b.iter(|| {
            baum_welch(
                black_box(&init),
                black_box(std::slice::from_ref(&obs)),
                &bw_cfg,
            )
        })
    });
}

fn bench_clustering(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let points: Vec<Vec<f64>> = (0..10)
        .map(|i| {
            vec![
                12.0 + (i % 4) as f64 * 6.0 + sentinet_sim::standard_normal(&mut rng),
                94.0 - (i % 4) as f64 * 12.0 + sentinet_sim::standard_normal(&mut rng),
            ]
        })
        .collect();
    c.bench_function("cluster/update_round_10pts", |b| {
        b.iter_batched(
            || {
                ModelStates::new(
                    vec![
                        vec![12.0, 94.0],
                        vec![18.0, 82.0],
                        vec![24.0, 70.0],
                        vec![30.0, 58.0],
                    ],
                    ClusterConfig::default(),
                )
            },
            |mut s| {
                s.update(black_box(&points));
                s
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_simulation(c: &mut Criterion) {
    let cfg = sentinet_sim::gdi::day_config();
    c.bench_function("sim/generate_one_day", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(6),
            |mut rng| sentinet_sim::simulate(black_box(&cfg), &mut rng),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_classification,
    bench_hmm,
    bench_clustering,
    bench_simulation
);
criterion_main!(benches);
