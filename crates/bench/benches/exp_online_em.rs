//! EXT-7 — online estimation: redundancy-supervised vs recursive EM.
//!
//! The paper's central engineering claim (§2) is that exploiting sensor
//! redundancy "overcome[s] the complexity of the classical HMM
//! identification problem": because the hidden state is *estimated*
//! every window, its estimator is a trivial exponential update, while
//! classical identification (the footnote-3 Stiller–Radons recursive EM
//! or batch Baum–Welch) must infer the hidden state from observations
//! alone. This bench quantifies that claim on a synthetic stream:
//! per-step predictive log-loss of
//!
//! - the paper's estimator fed the *true* hidden states (what
//!   redundancy buys),
//! - unsupervised recursive online EM,
//! - frozen Baum–Welch trained on a prefix,
//! - the generating model (the floor).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_hmm::{
    baum_welch, BaumWelchConfig, Hmm, OnlineEmEstimator, OnlineHmmEstimator, StochasticMatrix,
};

fn ground_truth() -> Hmm {
    // A 4-state chain with distinct emissions, GDI-like dwell times.
    let a = StochasticMatrix::from_rows(vec![
        vec![0.85, 0.15, 0.0, 0.0],
        vec![0.10, 0.80, 0.10, 0.0],
        vec![0.0, 0.10, 0.80, 0.10],
        vec![0.0, 0.0, 0.15, 0.85],
    ])
    .unwrap();
    let b = StochasticMatrix::from_rows(vec![
        vec![0.9, 0.1, 0.0, 0.0],
        vec![0.05, 0.9, 0.05, 0.0],
        vec![0.0, 0.05, 0.9, 0.05],
        vec![0.0, 0.0, 0.1, 0.9],
    ])
    .unwrap();
    Hmm::new(a, b, vec![0.25; 4]).unwrap()
}

fn main() {
    let truth = ground_truth();
    let mut rng = StdRng::seed_from_u64(2006);
    let (states, obs) = truth.sample(12_000, &mut rng).unwrap();
    let eval_from = obs.len() / 2;

    // (a) The paper's estimator, fed the true hidden states — the
    // redundancy side-channel.
    let mut paper = OnlineHmmEstimator::new(4, 4, 0.05, 0.05).unwrap();
    // (b) Recursive online EM, observations only.
    let init = Hmm::random(4, 4, &mut rng).unwrap();
    let mut em = OnlineEmEstimator::new(init.clone(), 0.005).unwrap();
    // (c) Frozen Baum–Welch on the first half (best of 3 restarts).
    let prefix = obs[..eval_from].to_vec();
    let bw = (0..3)
        .map(|_| {
            let i = Hmm::random(4, 4, &mut rng).unwrap();
            baum_welch(
                &i,
                std::slice::from_ref(&prefix),
                &BaumWelchConfig::default(),
            )
            .unwrap()
        })
        .max_by(|x, y| {
            let lx = x.hmm.log_likelihood(&prefix).unwrap();
            let ly = y.hmm.log_likelihood(&prefix).unwrap();
            lx.partial_cmp(&ly).unwrap()
        })
        .unwrap()
        .hmm;

    let mut loss_em = 0.0;
    let mut loss_bw = 0.0;
    let mut loss_truth = 0.0;
    let mut count = 0.0;

    // Frozen-model scorers are tracked as zero-rate online EM filters.
    let mut bw_filter = OnlineEmEstimator::new(bw, 1e-12).unwrap();
    let mut truth_filter = OnlineEmEstimator::new(truth.clone(), 1e-12).unwrap();

    for (t, (&s, &y)) in states.iter().zip(&obs).enumerate() {
        if t >= eval_from {
            count += 1.0;
            loss_em -= em.predictive_prob(y).unwrap().max(1e-12).ln();
            loss_bw -= bw_filter.predictive_prob(y).unwrap().max(1e-12).ln();
            loss_truth -= truth_filter.predictive_prob(y).unwrap().max(1e-12).ln();
        }
        paper.observe(s, y).unwrap();
        em.observe(y).unwrap();
        bw_filter.observe(y).unwrap();
        truth_filter.observe(y).unwrap();
    }

    // Structural fidelity of B — the quantity the paper's classifier
    // actually inspects. The unsupervised estimators are aligned to the
    // truth by the best label permutation.
    let b_error_aligned = |est: &StochasticMatrix, truth: &StochasticMatrix| {
        sentinet_hmm::structure::aligned_b_distance(est, truth)
    };

    println!("=== EXT-7: online HMM estimation quality ===");
    println!(
        "({} observations; B error = best-permutation mean row L1)",
        obs.len()
    );
    println!("{:<46} {:>10} {:>12}", "estimator", "B error", "pred loss");
    println!(
        "{:<46} {:>10.4} {:>12}",
        "paper §3.2 (+ true hidden states, redundancy)",
        b_error_aligned(paper.observation(), truth.observation()),
        "n/a*"
    );
    println!(
        "{:<46} {:>10.4} {:>12.4}",
        "recursive online EM (observations only)",
        b_error_aligned(em.observation(), truth.observation()),
        loss_em / count
    );
    println!(
        "{:<46} {:>10.4} {:>12.4}",
        "Baum-Welch frozen after half the stream",
        b_error_aligned(bw_filter.observation(), truth.observation()),
        loss_bw / count
    );
    println!(
        "{:<46} {:>10.4} {:>12.4}",
        "generating model (floor)",
        0.0,
        loss_truth / count
    );
    println!("* the paper's A update learns the embedded jump chain (it fires only");
    println!("  on state changes), so one-step prediction through it is undefined;");
    println!("  classification uses B, which is the fidelity that matters.");

    let paper_err = b_error_aligned(paper.observation(), truth.observation());
    let em_err = b_error_aligned(em.observation(), truth.observation());
    assert!(
        paper_err <= em_err + 0.05,
        "redundancy supervision must not lose on B fidelity: {paper_err} vs {em_err}"
    );
    println!("\nreading: the redundancy side-channel closes most of the gap to the");
    println!("generating model with a trivial O(M) update per step, while");
    println!("observation-only identification pays in both compute and loss —");
    println!("the quantified version of the paper's §2 argument.");
}
