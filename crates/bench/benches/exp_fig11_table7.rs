//! Figure 11 / Table 7 — Dynamic Creation attack.
//!
//! Against a quiet environment, one third of the sensors periodically
//! inject high-temperature / low-humidity values that force the
//! network-observed state to a fabricated one. Paper outcome: a column
//! of `B^CO` absorbs mass from a correct state's row (columns
//! non-orthogonal; their row (12,95) splits 0.3546 / 0.6454 onto the
//! created state (25,69)) and the attack is classified Dynamic
//! Creation.

use sentinet_bench::{
    active_rows, creation_scenario, print_matrix, run_pipeline, state_label, visible_columns,
};
use sentinet_core::AttackType;
use sentinet_sim::DAY_S;

fn main() {
    let days = 8;
    let (trace, cfg) = creation_scenario(days, 77);
    let p = run_pipeline(&trace, &cfg);

    // Fig. 11 view: observed temperature mean per half-day.
    println!("=== Figure 11: fabricated state visits (creation) ===");
    println!("{:>9} {:>14}", "half-day", "observed temp");
    for half in 0..days * 2 {
        let lo = half * DAY_S / 2;
        let hi = lo + DAY_S / 2;
        let mut acc = (0.0, 0.0);
        for (t, _, r) in trace.delivered() {
            if (lo..hi).contains(&t) {
                acc = (acc.0 + r.values()[0], acc.1 + 1.0);
            }
        }
        println!("{:>9} {:>14.1}", half, acc.0 / acc.1);
    }

    let rows = active_rows(&p);
    let labels: Vec<String> = (0..p.m_co().unwrap().observation().num_rows())
        .map(|s| state_label(&p, s))
        .collect();
    let b_co = p.m_co().unwrap().observation();
    let cols = visible_columns(b_co, &rows, 0.01);
    print_matrix(
        "\n=== Table 7: B^CO matrix (Dynamic Creation) ===",
        b_co,
        &labels,
        &labels,
        &rows,
        &cols,
    );
    println!("paper: row (12,95) splits 0.3546/0.6454 onto created column (25,69)");

    let verdict = p.network_attack();
    println!("\nclassification verdict: {verdict:?}");
    match verdict {
        Some(AttackType::DynamicCreation { created }) => {
            println!(
                "created states: {:?}",
                created
                    .iter()
                    .map(|&s| state_label(&p, s))
                    .collect::<Vec<_>>()
            );
            assert!(!created.is_empty());
        }
        other => panic!("expected dynamic creation, got {other:?}"),
    }
}
