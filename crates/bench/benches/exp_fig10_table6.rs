//! Figure 10 / Table 6 — Dynamic Deletion attack.
//!
//! One third of the sensors report compensating values that pin the
//! network-observed state while the true environment keeps moving.
//! Paper outcome: rows of `B^CO` become non-orthogonal (two correct
//! states collapse onto one observable state) and the attack is
//! classified Dynamic Deletion.

use sentinet_bench::{
    active_rows, deletion_scenario, print_matrix, run_pipeline, state_label, visible_columns,
};
use sentinet_core::AttackType;
use sentinet_hmm::structure::{OrthoTolerance, OrthogonalityReport};
use sentinet_sim::DAY_S;

fn main() {
    let days = 10;
    let (trace, cfg) = deletion_scenario(days, 66);
    let p = run_pipeline(&trace, &cfg);

    // Fig. 10 view: daily observed-vs-honest temperature after onset.
    println!("=== Figure 10: observed temperature pinning (deletion) ===");
    println!("{:>4} {:>14} {:>14}", "day", "honest mean", "observed mean");
    for day in 0..days {
        let lo = day * DAY_S;
        let hi = lo + DAY_S;
        let mut honest = (0.0, 0.0);
        let mut all = (0.0, 0.0);
        for (t, s, r) in trace.delivered() {
            if (lo..hi).contains(&t) {
                all = (all.0 + r.values()[0], all.1 + 1.0);
                if s.0 >= 3 {
                    honest = (honest.0 + r.values()[0], honest.1 + 1.0);
                }
            }
        }
        println!(
            "{:>4} {:>14.1} {:>14.1}{}",
            day,
            honest.0 / honest.1,
            all.0 / all.1,
            if day >= days / 2 {
                "   << attack active"
            } else {
                ""
            }
        );
    }

    let rows = active_rows(&p);
    let labels: Vec<String> = (0..p.m_co().unwrap().observation().num_rows())
        .map(|s| state_label(&p, s))
        .collect();
    let b_co = p.m_co().unwrap().observation();
    let cols = visible_columns(b_co, &rows, 0.01);
    print_matrix(
        "\n=== Table 6: B^CO matrix (Dynamic Deletion) ===",
        b_co,
        &labels,
        &labels,
        &rows,
        &cols,
    );
    let rep = OrthogonalityReport::analyze(b_co, OrthoTolerance::default(), Some(&rows));
    println!(
        "row-pair violations (paper: rows (29,56)/(20,71) non-orthogonal): {:?}",
        rep.row_violations
            .iter()
            .map(|v| (labels[v.first].clone(), labels[v.second].clone(), v.mass))
            .collect::<Vec<_>>()
    );

    let verdict = p.network_attack();
    println!("\nclassification verdict: {verdict:?}");
    match verdict {
        Some(AttackType::DynamicDeletion { deleted }) => {
            println!(
                "deleted states: {:?}",
                deleted
                    .iter()
                    .map(|&s| state_label(&p, s))
                    .collect::<Vec<_>>()
            );
        }
        other => panic!("expected dynamic deletion, got {other:?}"),
    }
}
