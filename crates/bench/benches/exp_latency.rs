//! EXT-8 — detectability threshold: fault magnitude vs detection.
//!
//! Sweeps the magnitude of calibration and additive faults and reports
//! whether the fault is detected, how long detection takes, and the
//! classification. The crossover locates the methodology's blind spot:
//! displacements smaller than the model-state granularity (spawn
//! threshold ≈ 8 units) keep the faulty readings inside their correct
//! state's basin and are — by construction — invisible to a
//! state-quantized detector.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_bench::clean_scenario;
use sentinet_core::{Diagnosis, ErrorType, Pipeline, PipelineConfig};
use sentinet_inject::{inject_faults, FaultInjection, FaultModel};
use sentinet_sim::{SensorId, DAY_S};

struct Row {
    magnitude: String,
    detected: bool,
    latency: Option<u64>,
    class: &'static str,
}

fn run(model: FaultModel, seed: u64) -> Row {
    let (clean, cfg) = clean_scenario(14, seed);
    let magnitude = match &model {
        FaultModel::Calibration { gain } => format!("×{:.2}", gain[0]),
        FaultModel::Additive { offset } => {
            format!("{:+.1}", (offset[0].powi(2) + offset[1].powi(2)).sqrt())
        }
        _ => "?".into(),
    };
    let trace = inject_faults(
        &clean,
        &[FaultInjection::from_onset(SensorId(7), model, DAY_S)],
        &cfg.ranges,
        &mut StdRng::seed_from_u64(seed ^ 0xfeed),
    );
    let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
    p.process_trace(&trace);
    let onset_window = DAY_S / (12 * cfg.sample_period);
    let latency = p
        .tracks(SensorId(7))
        .and_then(|t| t.first().copied())
        .map(|t| t.opened.saturating_sub(onset_window));
    let class = match p.classify(SensorId(7)) {
        Diagnosis::ErrorFree => "missed",
        Diagnosis::Error(ErrorType::StuckAt { .. }) => "stuck",
        Diagnosis::Error(ErrorType::Calibration { .. }) => "calib",
        Diagnosis::Error(ErrorType::Additive { .. }) => "addit",
        Diagnosis::Error(ErrorType::Unknown) => "unknown",
        Diagnosis::Attack(_) => "ATTACK!",
    };
    Row {
        magnitude,
        detected: latency.is_some(),
        latency,
        class,
    }
}

fn print_rows(title: &str, rows: &[Row]) {
    println!("\n{title}");
    println!(
        "{:>10} {:>9} {:>18} {:>9}",
        "magnitude", "detected", "latency (windows)", "class"
    );
    for r in rows {
        println!(
            "{:>10} {:>9} {:>18} {:>9}",
            r.magnitude,
            r.detected,
            r.latency
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
            r.class
        );
    }
}

fn main() {
    println!("=== EXT-8: detectability threshold vs fault magnitude ===");
    println!("(14-day GDI workload, fault onset day 1, sensor 7)");

    let calib: Vec<Row> = [1.02, 1.05, 1.08, 1.12, 1.18, 1.25, 1.4]
        .iter()
        .map(|&g| {
            run(
                FaultModel::Calibration { gain: vec![g, g] },
                900 + (g * 100.0) as u64,
            )
        })
        .collect();
    print_rows("calibration gain sweep:", &calib);

    // Perpendicular additive offsets of growing norm.
    let addit: Vec<Row> = [2.0, 4.0, 6.0, 9.0, 13.0, 18.0]
        .iter()
        .map(|&n| {
            // Direction (2, 1)/√5 — perpendicular to the H = 118 − 2T curve.
            let f = n / 5.0f64.sqrt();
            run(
                FaultModel::Additive {
                    offset: vec![-2.0 * f, -f],
                },
                1_700 + n as u64,
            )
        })
        .collect();
    print_rows("additive offset sweep (norm, perpendicular):", &addit);

    // The crossover: small magnitudes must be missed (blind spot), large
    // ones detected and typed.
    assert!(
        !calib[0].detected,
        "×1.02 should sit inside the state basin"
    );
    assert!(calib.last().unwrap().detected, "×1.40 must be detected");
    assert!(!addit[0].detected, "2-unit offset should be sub-threshold");
    assert!(
        addit.last().unwrap().detected,
        "18-unit offset must be detected"
    );

    println!("\nreading: detection crosses over where the displacement rivals half");
    println!("the model-state spacing (~4 units). *Type* identification is best in");
    println!("a band above that: push the magnitude further and the admissible-range");
    println!("clamp (humidity ≤ 100) saturates the displaced states, collapsing the");
    println!("one-to-one association — detection persists but the type degrades to");
    println!("unknown. The paper notes the same clamping ceiling for attacks (§4.2).");
}
