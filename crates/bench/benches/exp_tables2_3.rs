//! Figure 9 / Tables 2–3 — the HMMs learned for faulty sensor 6
//! (stuck-at-value fault) and their structural classification.
//!
//! Paper outcome: `B^CO` is approximately orthogonal (no attack); the
//! sensor's `B^CE` has a single ≈ all-ones column at the stuck state
//! (15, 1) and the sensor is classified stuck-at. This bench reproduces
//! both matrices and asserts the same classification.

use sentinet_bench::{
    active_rows, print_matrix, run_pipeline, state_label, stuck_at_scenario, visible_columns,
};
use sentinet_core::{Diagnosis, ErrorType};
use sentinet_hmm::structure::{OrthoTolerance, OrthogonalityReport};
use sentinet_sim::SensorId;

fn main() {
    let (trace, cfg) = stuck_at_scenario(30, 23);
    let p = run_pipeline(&trace, &cfg);
    let sensor = SensorId(6);

    let rows = active_rows(&p);
    let labels: Vec<String> = (0..p.m_co().unwrap().observation().num_rows())
        .map(|s| state_label(&p, s))
        .collect();

    // Table 2: B^CO.
    let b_co = p.m_co().unwrap().observation();
    let cols = visible_columns(b_co, &rows, 0.01);
    print_matrix(
        "=== Table 2: B^CO matrix (stuck-at fault on sensor 6) ===",
        b_co,
        &labels,
        &labels,
        &rows,
        &cols,
    );
    let report = OrthogonalityReport::analyze(b_co, OrthoTolerance::default(), Some(&rows));
    println!(
        "rows orthogonal: {} | cols orthogonal: {} (paper: both approximately orthogonal)",
        report.rows_orthogonal, report.cols_orthogonal
    );

    // Table 3: B^CE for sensor 6 (⊥ is column 0).
    let m_ce = p.m_ce(sensor).expect("sensor 6 tracked");
    let b_ce = m_ce.observation();
    let ce_rows: Vec<usize> = m_ce
        .observation_evidence()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c >= p.config().min_state_evidence)
        .map(|(i, _)| i)
        .collect();
    let mut ce_labels = vec!["⊥".to_string()];
    ce_labels.extend((0..b_ce.num_cols() - 1).map(|s| state_label(&p, s)));
    let ce_cols = visible_columns(b_ce, &ce_rows, 0.01);
    print_matrix(
        "\n=== Table 3: B^CE matrix for sensor 6 (col 0 = ⊥) ===",
        b_ce,
        &labels,
        &ce_labels,
        &ce_rows,
        &ce_cols,
    );

    // Figure 9 also shows the transition structure A of both models.
    println!("\n=== Figure 9: state transition matrix A^CO (rows = correct states) ===");
    let a_co = p.m_co().unwrap().transition();
    let a_cols = visible_columns(a_co, &rows, 0.01);
    print_matrix("", a_co, &labels, &labels, &rows, &a_cols);

    // Figure 9 summary: the classification verdict.
    let verdict = p.classify(sensor);
    println!("\nclassification verdict: {verdict}");
    match verdict {
        Diagnosis::Error(ErrorType::StuckAt { state }) => {
            let c = p
                .model_states()
                .unwrap()
                .centroid_any(state)
                .unwrap()
                .to_vec();
            println!(
                "stuck state: {} (paper: sensor 6 stuck at (15,1))",
                state_label(&p, state)
            );
            assert!((c[0] - 15.0).abs() < 3.0 && c[1] < 6.0, "centroid {c:?}");
        }
        other => panic!("expected stuck-at classification, got {other}"),
    }
    assert_eq!(p.network_attack(), None, "no attack signature expected");
}
