//! Table 1 — experimental setup parameters.
//!
//! Prints the pipeline defaults next to the paper's values. Note the
//! learning-factor interpretation: the paper's `β = γ = 0.90` are
//! retention weights; our config stores the equivalent new-sample
//! weights `0.10` (see `PipelineConfig::beta`).

use sentinet_core::{FilterPolicy, PipelineConfig};
use sentinet_sim::gdi;

fn main() {
    let c = PipelineConfig::default();
    println!("=== Table 1: parameters used in the experimental setup ===");
    println!("{:<44} {:>8} {:>10}", "parameter", "paper", "this repo");
    println!(
        "{:<44} {:>8} {:>10}",
        "K  number of sensors",
        10,
        gdi::NUM_SENSORS
    );
    println!(
        "{:<44} {:>8} {:>10}",
        "M  number of initial model states", 6, c.num_initial_states
    );
    println!(
        "{:<44} {:>8} {:>10}",
        "w  observation window size (samples)", 12, c.window_samples
    );
    println!(
        "{:<44} {:>8} {:>10.2}",
        "α  model-state learning factor", "0.10", c.cluster.alpha
    );
    println!(
        "{:<44} {:>8} {:>10.2}",
        "β  transition learning factor (retention)",
        "0.90",
        1.0 - c.beta
    );
    println!(
        "{:<44} {:>8} {:>10.2}",
        "γ  observation learning factor (retention)",
        "0.90",
        1.0 - c.gamma
    );
    match c.filter {
        FilterPolicy::KOfN { k, n } => {
            println!(
                "{:<44} {:>8} {:>10}",
                "alarm filter (k-of-n)",
                "k≤n",
                format!("{k}-of-{n}")
            );
        }
        FilterPolicy::Sprt { .. } => println!("alarm filter: SPRT"),
    }
    println!(
        "{:<44} {:>8} {:>10}",
        "sampling period (s)",
        300,
        gdi::SAMPLE_PERIOD
    );
}
