//! Figure 6 — humidity and temperature variation over one day.
//!
//! Emits the per-hour ground truth and network-observed series for one
//! simulated day. The paper's figure shows temperature and humidity
//! "change continuously during the day", anti-correlated; the series
//! below reproduces that shape (temperature trough before dawn, peak
//! mid-afternoon, humidity mirrored).

use sentinet_bench::clean_scenario;
use sentinet_core::{ObservationWindow, Windower};
use sentinet_sim::ground_truth;

fn main() {
    let (trace, cfg) = clean_scenario(1, 6);
    let gt = ground_truth(&cfg);

    println!("=== Figure 6: temperature & humidity over one day ===");
    println!(
        "{:>5} {:>10} {:>10} {:>12} {:>12}",
        "hour", "temp(°C)", "hum(%RH)", "obs temp", "obs hum"
    );

    // Observed per-hour means straight from the trace (what the
    // collector sees), next to the noiseless Θ(t).
    let mut windower = Windower::new(3_600);
    let mut windows: Vec<ObservationWindow> = Vec::new();
    for (t, s, r) in trace.delivered() {
        windows.extend(windower.push(t, s, r.values()));
    }
    windows.extend(windower.finish());

    for w in &windows {
        let mean = w.overall_mean().expect("non-empty window");
        let hour = w.start / 3_600;
        // Ground truth at the window's midpoint.
        let gt_idx = ((w.start + 1_800) / cfg.sample_period) as usize;
        let theta = &gt[gt_idx.min(gt.len() - 1)].1;
        println!(
            "{:>5} {:>10.1} {:>10.1} {:>12.1} {:>12.1}",
            hour, theta[0], theta[1], mean[0], mean[1]
        );
    }

    // Shape checks the paper's figure exhibits.
    let temps: Vec<f64> = windows
        .iter()
        .map(|w| w.overall_mean().expect("non-empty")[0])
        .collect();
    let hums: Vec<f64> = windows
        .iter()
        .map(|w| w.overall_mean().expect("non-empty")[1])
        .collect();
    let t_min = temps.iter().cloned().fold(f64::INFINITY, f64::min);
    let t_max = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let corr = correlation(&temps, &hums);
    println!("\nshape summary:");
    println!("  temperature range: {t_min:.1} … {t_max:.1} °C (paper: ≈ 12 … 31)");
    println!("  temp/humidity correlation: {corr:.3} (paper: strongly negative)");
}

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
    cov / (va.sqrt() * vb.sqrt())
}
