//! EXT-1 — full classification confusion matrix (beyond the paper).
//!
//! Every fault and attack model is injected across several seeds; each
//! run's diagnosis of the affected sensor (or the network verdict for
//! attacks) is tallied against the ground truth. The paper only reports
//! four anecdotes (Tables 2–7); this sweep quantifies how well the
//! structural classifier generalizes.

use sentinet_bench::*;
use sentinet_core::{AttackType, Diagnosis, ErrorType, Pipeline};
use sentinet_sim::SensorId;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Truth {
    Clean,
    StuckAt,
    Calibration,
    Additive,
    Noise,
    Deletion,
    Creation,
    Change,
    Mixed,
}

const LABELS: [&str; 10] = [
    "clean", "stuck", "calib", "addit", "noise", "delet", "creat", "chang", "mixed", "unkwn",
];

fn verdict_index(p: &Pipeline, truth: Truth) -> usize {
    // Attacks are judged by the network verdict; faults by the injected
    // sensor's diagnosis.
    match truth {
        Truth::Deletion | Truth::Creation | Truth::Change | Truth::Mixed => {
            match p.network_attack() {
                None => 0,
                Some(AttackType::DynamicDeletion { .. }) => 5,
                Some(AttackType::DynamicCreation { .. }) => 6,
                Some(AttackType::DynamicChange { .. }) => 7,
                Some(AttackType::Mixed) => 8,
            }
        }
        _ => {
            let sensor = match truth {
                Truth::StuckAt => SensorId(6),
                Truth::Calibration => SensorId(7),
                Truth::Additive => SensorId(3),
                Truth::Noise => SensorId(5),
                Truth::Clean => SensorId(0),
                _ => unreachable!(),
            };
            match p.classify(sensor) {
                Diagnosis::ErrorFree => 0,
                Diagnosis::Error(ErrorType::StuckAt { .. }) => 1,
                Diagnosis::Error(ErrorType::Calibration { .. }) => 2,
                Diagnosis::Error(ErrorType::Additive { .. }) => 3,
                Diagnosis::Error(ErrorType::Unknown) => 9,
                Diagnosis::Attack(_) => 8,
            }
        }
    }
}

fn main() {
    let seeds = [101u64, 202, 303, 404, 505];
    let days = 12;
    type ScenarioFn = fn(u64, u64) -> (sentinet_sim::Trace, sentinet_sim::SimConfig);
    let scenarios: Vec<(Truth, ScenarioFn)> = vec![
        (Truth::Clean, clean_scenario),
        (Truth::StuckAt, stuck_at_scenario),
        (Truth::Calibration, calibration_scenario),
        (Truth::Additive, additive_scenario),
        (Truth::Noise, noise_scenario),
        (Truth::Deletion, deletion_scenario),
        (Truth::Creation, creation_scenario),
        (Truth::Change, change_scenario),
        (Truth::Mixed, mixed_scenario),
    ];

    // Each (scenario, seed) run is independent: fan out on a crossbeam
    // scope and fold the tallies afterwards.
    let mut matrix = vec![vec![0usize; LABELS.len()]; scenarios.len()];
    let cells: Vec<(usize, usize)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = scenarios
            .iter()
            .enumerate()
            .flat_map(|(row, &(truth, build))| {
                seeds.iter().map(move |&seed| (row, truth, build, seed))
            })
            .map(|(row, truth, build, seed)| {
                scope.spawn(move |_| {
                    let (trace, cfg) = build(days, seed);
                    let p = run_pipeline(&trace, &cfg);
                    (row, verdict_index(&p, truth))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scenario worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    for (row, col) in cells {
        matrix[row][col] += 1;
    }

    println!(
        "=== EXT-1: classification confusion matrix ({} seeds × {} days) ===",
        seeds.len(),
        days
    );
    print!("{:>12}", "truth↓ out→");
    for l in LABELS {
        print!(" {l:>5}");
    }
    println!();
    let truth_names = [
        "clean", "stuck", "calib", "addit", "noise", "delet", "creat", "chang", "mixed",
    ];
    for (row, name) in truth_names.iter().enumerate() {
        print!("{name:>12}");
        for cell in &matrix[row] {
            print!(" {cell:>5}");
        }
        println!();
    }

    // Headline accuracy: exact-type matches on the diagonal mapping.
    let diagonal = [0usize, 1, 2, 3, 0, 5, 6, 7, 8]; // noise→clean counts as acceptable (paper §3.4)
    let mut hits = 0usize;
    let mut total = 0usize;
    for (row, &d) in diagonal.iter().enumerate() {
        hits += matrix[row][d];
        if row == 4 {
            // Random noise: the paper says it may appear error-free or
            // unknown; count both as acceptable.
            hits += matrix[row][9];
        }
        total += seeds.len();
    }
    println!(
        "\nexact-type accuracy (noise counted correct as clean/unknown): {}/{}",
        hits, total
    );
}
