//! EXT-10 — loss-model ablation: Bernoulli vs Gilbert–Elliott bursts.
//!
//! The paper's GDI data lost packets in bursts (dying radios, fading);
//! independent-loss simulations flatter a windowed detector because
//! every window keeps a few readings from every sensor. This ablation
//! matches the *average* loss rate across both models and compares
//! detection latency and false alarms on the stuck-at scenario.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{Diagnosis, ErrorType, Pipeline, PipelineConfig};
use sentinet_inject::{inject_faults, FaultInjection, FaultModel};
use sentinet_sim::{gdi, simulate, BurstLoss, SensorId, SimConfig, DAY_S};

struct Outcome {
    latency: Option<u64>,
    class: &'static str,
    false_raw: f64,
    loss: f64,
}

fn run(cfg: &SimConfig, seed: u64) -> Outcome {
    let clean = simulate(cfg, &mut StdRng::seed_from_u64(seed));
    let trace = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(6),
            FaultModel::StuckAt {
                value: vec![15.0, 1.0],
            },
            DAY_S,
        )],
        &cfg.ranges,
        &mut StdRng::seed_from_u64(seed ^ 0xB0B),
    );
    let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
    p.process_trace(&trace);
    let onset = DAY_S / (12 * cfg.sample_period);
    let latency = p
        .tracks(SensorId(6))
        .and_then(|t| t.first().copied())
        .map(|t| t.opened.saturating_sub(onset));
    let class = match p.classify(SensorId(6)) {
        Diagnosis::Error(ErrorType::StuckAt { .. }) => "stuck",
        Diagnosis::Error(_) => "other-error",
        Diagnosis::Attack(_) => "ATTACK!",
        Diagnosis::ErrorFree => "missed",
    };
    let hist = p.raw_alarm_history(SensorId(9)).unwrap_or(&[]);
    let false_raw = if hist.is_empty() {
        0.0
    } else {
        hist.iter().filter(|(_, r)| *r).count() as f64 / hist.len() as f64
    };
    Outcome {
        latency,
        class,
        false_raw,
        loss: trace.loss_rate(),
    }
}

fn main() {
    println!("=== EXT-10: Bernoulli vs Gilbert-Elliott loss (stuck-at scenario) ===");
    println!(
        "{:<26} {:>9} {:>14} {:>8} {:>11}",
        "loss model", "avg loss", "latency (wd)", "class", "false raw"
    );

    let burst = BurstLoss {
        p_enter_bad: 0.01,
        p_exit_bad: 0.08,
        loss_bad: 0.85,
    };
    let seeds = [61u64, 62, 63];
    for (name, make) in [
        (
            "Bernoulli (matched avg)",
            Box::new(|| {
                let mut c = gdi::month_config();
                c.duration = 14 * DAY_S;
                c.loss_prob = burst.average_loss(gdi::LOSS_PROB);
                c
            }) as Box<dyn Fn() -> SimConfig>,
        ),
        (
            "Gilbert-Elliott bursts",
            Box::new(|| {
                let mut c = gdi::month_config();
                c.duration = 14 * DAY_S;
                c.burst = Some(burst);
                c
            }),
        ),
    ] {
        for &seed in &seeds {
            let cfg = make();
            let o = run(&cfg, seed);
            println!(
                "{:<26} {:>8.1}% {:>14} {:>8} {:>10.2}%",
                name,
                100.0 * o.loss,
                o.latency
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "-".into()),
                o.class,
                100.0 * o.false_raw
            );
        }
    }
    println!("\nreading: at matched average loss, bursty links lengthen detection");
    println!("latency slightly (whole windows of the faulty sensor go silent, and");
    println!("silence is not evidence) but do not corrupt the classification —");
    println!("the decisiveness rule already treats missing sensors as abstaining.");
}
