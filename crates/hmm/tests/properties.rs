//! Property-based tests for the HMM substrate's core invariants.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use sentinet_hmm::structure::{OrthoTolerance, OrthogonalityReport};
use sentinet_hmm::{
    baum_welch, BaumWelchConfig, Hmm, MarkovChain, OnlineHmmEstimator, OnlineMarkovEstimator,
    StochasticMatrix,
};

/// A strategy producing a random probability distribution of length `n`.
fn distribution(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, n).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        v.iter_mut().for_each(|x| *x /= s);
        v
    })
}

/// A strategy producing a random `rows × cols` stochastic matrix.
fn stochastic(rows: usize, cols: usize) -> impl Strategy<Value = StochasticMatrix> {
    prop::collection::vec(distribution(cols), rows)
        .prop_map(|rs| StochasticMatrix::from_rows(rs).expect("rows are normalized"))
}

/// A strategy producing a random HMM with `m` states and `n` symbols.
fn hmm(m: usize, n: usize) -> impl Strategy<Value = Hmm> {
    (stochastic(m, m), stochastic(m, n), distribution(m))
        .prop_map(|(a, b, pi)| Hmm::new(a, b, pi).expect("dimensions agree"))
}

proptest! {
    #[test]
    fn reinforce_preserves_stochasticity(
        m in stochastic(4, 5),
        updates in prop::collection::vec((0usize..4, 0usize..5, 0.01f64..0.99), 1..200),
    ) {
        let mut m = m;
        for (i, k, eta) in updates {
            m.reinforce(i, k, eta).unwrap();
        }
        prop_assert!(m.check(1e-7).is_ok());
    }

    #[test]
    fn posteriors_are_distributions(
        h in hmm(3, 4),
        obs in prop::collection::vec(0usize..4, 1..60),
    ) {
        let gamma = h.posteriors(&obs).unwrap();
        for row in gamma {
            let s: f64 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8, "posterior sum {s}");
            prop_assert!(row.iter().all(|&g| (-1e-12..=1.0 + 1e-9).contains(&g)));
        }
    }

    #[test]
    fn viterbi_bounded_by_total_likelihood(
        h in hmm(3, 3),
        obs in prop::collection::vec(0usize..3, 1..40),
    ) {
        let vit = h.viterbi(&obs).unwrap();
        let ll = h.log_likelihood(&obs).unwrap();
        prop_assert!(vit.log_prob <= ll + 1e-9, "viterbi {} > total {}", vit.log_prob, ll);
        prop_assert_eq!(vit.states.len(), obs.len());
        prop_assert!(vit.states.iter().all(|&s| s < 3));
    }

    #[test]
    fn forward_likelihood_matches_posterior_renormalization(
        h in hmm(2, 3),
        obs in prop::collection::vec(0usize..3, 2..30),
    ) {
        // Forward and backward likelihoods must agree:
        // Σ_i π_i b_i(o_0) β̂_0(i) == 1 under Rabiner scaling.
        let fwd = h.forward(&obs).unwrap();
        let beta = h.backward(&obs, &fwd.scale).unwrap();
        let mut s = 0.0;
        for i in 0..h.num_states() {
            s += h.initial()[i] * h.observation()[(i, obs[0])] * beta[0][i];
        }
        prop_assert!((s - 1.0).abs() < 1e-8, "backward identity {s}");
    }

    #[test]
    fn baum_welch_never_decreases_likelihood(
        h in hmm(2, 2),
        obs in prop::collection::vec(0usize..2, 10..50),
    ) {
        let cfg = BaumWelchConfig { max_iters: 5, tol: 0.0, smoothing: 1e-9 };
        let trained = baum_welch(&h, &[obs], &cfg).unwrap();
        for w in trained.log_likelihoods.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6, "EM decreased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn online_hmm_stays_stochastic(
        pairs in prop::collection::vec((0usize..4, 0usize..5), 1..300),
        beta in 0.05f64..0.95,
        gamma in 0.05f64..0.95,
    ) {
        let mut est = OnlineHmmEstimator::new(4, 5, beta, gamma).unwrap();
        for (s, y) in pairs {
            est.observe(s, y).unwrap();
        }
        prop_assert!(est.transition().check(1e-6).is_ok());
        prop_assert!(est.observation().check(1e-6).is_ok());
        let occ: f64 = est.occupancy().iter().sum();
        prop_assert!((occ - 1.0).abs() < 1e-9);
    }

    #[test]
    fn online_markov_snapshot_is_valid(
        states in prop::collection::vec(0usize..3, 1..200),
        beta in 0.05f64..0.95,
    ) {
        let mut est = OnlineMarkovEstimator::new(3, beta).unwrap();
        for s in states {
            est.observe(s).unwrap();
        }
        let chain = est.to_chain().unwrap();
        prop_assert!(chain.transition().check(1e-6).is_ok());
        let pi = chain.stationary(1e-10, 10_000);
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn markov_from_sequence_occupancy_matches_counts(
        seq in prop::collection::vec(0usize..4, 1..100),
    ) {
        let mc = MarkovChain::from_sequence(4, &seq).unwrap();
        for s in 0..4 {
            let expect = seq.iter().filter(|&&x| x == s).count() as f64 / seq.len() as f64;
            prop_assert!((mc.occupancy()[s] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn drop_columns_preserves_stochasticity(
        b in stochastic(4, 6),
        drop in prop::collection::vec(0usize..6, 1..3),
    ) {
        if let Ok(d) = b.drop_columns(&drop) {
            prop_assert!(d.check(1e-9).is_ok());
            prop_assert!(d.num_cols() >= 6 - drop.len());
        }
    }

    #[test]
    fn sampled_sequences_score_higher_under_generator(
        seed in 0u64..5000,
    ) {
        // A sequence drawn from a strongly structured model should
        // almost always be more likely under that model than under a
        // mirrored (label-swapped emission) model.
        use rand::{rngs::StdRng, SeedableRng};
        let a = StochasticMatrix::from_rows(vec![vec![0.95, 0.05], vec![0.05, 0.95]]).unwrap();
        let b = StochasticMatrix::from_rows(vec![vec![0.95, 0.05], vec![0.05, 0.95]]).unwrap();
        let b_mirror = StochasticMatrix::from_rows(vec![vec![0.05, 0.95], vec![0.95, 0.05]]).unwrap();
        let gen = Hmm::new(a.clone(), b, vec![0.5, 0.5]).unwrap();
        let other = Hmm::new(a, b_mirror, vec![0.5, 0.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, obs) = gen.sample(100, &mut rng).unwrap();
        let l_gen = gen.log_likelihood(&obs).unwrap();
        let l_other = other.log_likelihood(&obs).unwrap();
        // Identical A and symmetric B ⇒ same marginals, so a tie is
        // possible but a deficit of this size is not.
        prop_assert!(l_gen > l_other - 1e-9 || (l_gen - l_other).abs() < 20.0);
    }

    #[test]
    fn orthogonality_of_permutation_matrices(
        perm_seed in 0usize..24,
    ) {
        // Any permutation matrix is exactly orthogonal in rows and cols.
        let mut idx = [0usize, 1, 2, 3];
        // Generate the perm_seed-th permutation of 4 elements.
        let mut pool: Vec<usize> = idx.to_vec();
        let mut k = perm_seed;
        for i in 0..4 {
            let f = (3 - i..4).product::<usize>().max(1) / (4 - i).max(1);
            let _ = f;
            let pick = k % pool.len();
            k /= pool.len().max(1);
            idx[i] = pool.remove(pick);
        }
        let rows: Vec<Vec<f64>> = idx
            .iter()
            .map(|&j| {
                let mut r = vec![0.0; 4];
                r[j] = 1.0;
                r
            })
            .collect();
        let b = StochasticMatrix::from_rows(rows).unwrap();
        let rep = OrthogonalityReport::analyze(&b, OrthoTolerance::default(), None);
        prop_assert!(rep.is_orthogonal());
    }
}

proptest! {
    #[test]
    fn online_em_stays_stochastic_under_arbitrary_streams(
        obs in prop::collection::vec(0usize..4, 1..300),
        eta in 0.001f64..0.5,
        seed in 0u64..100,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        use sentinet_hmm::OnlineEmEstimator;
        let mut rng = StdRng::seed_from_u64(seed);
        let init = Hmm::random(3, 4, &mut rng).unwrap();
        let mut em = OnlineEmEstimator::new(init, eta).unwrap();
        for &y in &obs {
            em.observe(y).unwrap();
        }
        prop_assert!(em.transition().check(1e-6).is_ok());
        prop_assert!(em.observation().check(1e-6).is_ok());
        let fs: f64 = em.filter().iter().sum();
        prop_assert!((fs - 1.0).abs() < 1e-7, "filter sum {fs}");
        // Predictive distribution over symbols is a distribution.
        let total: f64 = (0..4).map(|k| em.predictive_prob(k).unwrap()).sum();
        prop_assert!((total - 1.0).abs() < 1e-7, "predictive sum {total}");
    }

    #[test]
    fn aligned_b_distance_is_a_pseudometric(
        a in stochastic(3, 3),
        b in stochastic(3, 3),
    ) {
        use sentinet_hmm::structure::aligned_b_distance;
        let dab = aligned_b_distance(&a, &b);
        let dba = aligned_b_distance(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-9, "symmetry {dab} vs {dba}");
        prop_assert!(dab >= 0.0);
        prop_assert!(aligned_b_distance(&a, &a) < 1e-12);
    }
}
