//! Row-stochastic matrices.
//!
//! The HMM parameters **A** (state transition) and **B** (observation
//! symbol) are row-stochastic: every row is a probability distribution.
//! [`StochasticMatrix`] enforces this invariant at construction and
//! preserves it under the online exponential updates used by the paper
//! (§3.2), which are closed over the probability simplex.

use crate::error::{HmmError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// Tolerance used when validating that a distribution sums to one.
pub const STOCHASTIC_TOL: f64 = 1e-9;

/// Validates that `v` is a probability distribution: entries within
/// `[-tol, 1 + tol]` and summing to one within `tol`.
///
/// # Errors
///
/// Returns [`HmmError::NotStochastic`] describing `what` otherwise.
pub fn validate_distribution(v: &[f64], what: &str, tol: f64) -> Result<()> {
    let sum: f64 = v.iter().sum();
    if (sum - 1.0).abs() > tol
        || v.iter()
            .any(|&x| !(-tol..=1.0 + tol).contains(&x) || x.is_nan())
    {
        return Err(HmmError::NotStochastic {
            what: what.to_string(),
            sum,
        });
    }
    Ok(())
}

/// A dense row-stochastic matrix: every row sums to one.
///
/// Rows are probability distributions over columns. The type is used
/// both for HMM transition matrices (square) and observation matrices
/// (rectangular, states × symbols).
///
/// # Examples
///
/// ```
/// use sentinet_hmm::StochasticMatrix;
///
/// # fn main() -> Result<(), sentinet_hmm::HmmError> {
/// let m = StochasticMatrix::from_rows(vec![
///     vec![0.9, 0.1],
///     vec![0.4, 0.6],
/// ])?;
/// assert_eq!(m[(0, 1)], 0.1);
/// assert_eq!(m.num_rows(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StochasticMatrix {
    rows: usize,
    cols: usize,
    /// Row-major storage; invariant: each row sums to 1 within tolerance.
    data: Vec<f64>,
}

impl StochasticMatrix {
    /// Creates a matrix from explicit rows, validating stochasticity.
    ///
    /// # Errors
    ///
    /// - [`HmmError::EmptyModel`] if there are no rows or no columns.
    /// - [`HmmError::DimensionMismatch`] if the rows have uneven lengths.
    /// - [`HmmError::NotStochastic`] if any row fails validation.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(HmmError::EmptyModel);
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(HmmError::DimensionMismatch {
                    what: format!("matrix row {i}"),
                    expected: cols,
                    actual: r.len(),
                });
            }
            validate_distribution(r, &format!("matrix row {i}"), STOCHASTIC_TOL)?;
        }
        let data = rows.into_iter().flatten().collect();
        Ok(Self {
            rows: 0, // fixed below
            cols,
            data,
        }
        .with_rows_computed())
    }

    fn with_rows_computed(mut self) -> Self {
        self.rows = self.data.len() / self.cols;
        self
    }

    /// Creates an identity matrix of size `n`, the initialization the
    /// paper recommends for online HMM estimation (§3.2).
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::EmptyModel`] if `n == 0`.
    pub fn identity(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(HmmError::EmptyModel);
        }
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Ok(Self {
            rows: n,
            cols: n,
            data,
        })
    }

    /// Creates a `rows × cols` matrix with every row uniform.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::EmptyModel`] if either dimension is zero.
    pub fn uniform(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(HmmError::EmptyModel);
        }
        Ok(Self {
            rows,
            cols,
            data: vec![1.0 / cols as f64; rows * cols],
        })
    }

    /// Creates a rectangular matrix whose row `i` puts all mass on
    /// column `min(i, cols - 1)`.
    ///
    /// This generalizes [`StochasticMatrix::identity`] to non-square
    /// shapes, used to initialize observation matrices online.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::EmptyModel`] if either dimension is zero.
    pub fn diagonal_like(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(HmmError::EmptyModel);
        }
        let mut data = vec![0.0; rows * cols];
        for i in 0..rows {
            data[i * cols + i.min(cols - 1)] = 1.0;
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows (distributions).
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (outcomes per distribution).
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.num_cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col {j} out of range ({} cols)", self.cols);
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Applies the paper's exponential "move mass toward outcome `k`"
    /// update to row `i`:
    ///
    /// `row[j] ← (1 − η)·row[j] + η·δ_{jk}`
    ///
    /// The update is closed over the probability simplex, so the
    /// stochasticity invariant is preserved exactly (up to floating
    /// point) for any `η ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// - [`HmmError::StateOutOfRange`] if `i` is not a valid row.
    /// - [`HmmError::SymbolOutOfRange`] if `k` is not a valid column.
    /// - [`HmmError::InvalidParameter`] if `eta` is outside `(0, 1)`.
    pub fn reinforce(&mut self, i: usize, k: usize, eta: f64) -> Result<()> {
        if i >= self.rows {
            return Err(HmmError::StateOutOfRange {
                state: i,
                num_states: self.rows,
            });
        }
        if k >= self.cols {
            return Err(HmmError::SymbolOutOfRange {
                symbol: k,
                num_symbols: self.cols,
            });
        }
        if !(eta > 0.0 && eta < 1.0) {
            return Err(HmmError::InvalidParameter {
                name: "eta",
                value: eta,
                range: "(0, 1)",
            });
        }
        let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
        for (j, x) in row.iter_mut().enumerate() {
            *x = (1.0 - eta) * *x + if j == k { eta } else { 0.0 };
        }
        self.assert_invariants("reinforce");
        Ok(())
    }

    /// Asserts the row-stochastic invariant (finite entries, every row
    /// summing to one within [`STOCHASTIC_TOL`]) after a mutation.
    /// Compiles to nothing unless the `check-invariants` feature is on;
    /// `xtask analyze` runs the test suite with it enabled.
    #[cfg(feature = "check-invariants")]
    fn assert_invariants(&self, context: &str) {
        for (i, r) in self.iter_rows().enumerate() {
            debug_assert!(
                r.iter().all(|x| x.is_finite()),
                "{context}: row {i} contains a non-finite entry: {r:?}"
            );
            let sum: f64 = r.iter().sum();
            debug_assert!(
                (sum - 1.0).abs() <= STOCHASTIC_TOL,
                "{context}: row {i} sums to {sum} (drift {:e})",
                (sum - 1.0).abs()
            );
        }
    }

    #[cfg(not(feature = "check-invariants"))]
    #[inline(always)]
    fn assert_invariants(&self, _context: &str) {}

    /// Grows the matrix by one row and one column (for square use) or by
    /// the requested amounts, placing the new row's mass on the new last
    /// column when a column is added, or uniformly otherwise.
    ///
    /// Used when the online clustering module spawns a new model state:
    /// the HMMs tracking the environment must grow accordingly.
    pub fn grow(&mut self, add_rows: usize, add_cols: usize) {
        if add_cols > 0 {
            let new_cols = self.cols + add_cols;
            let mut data = vec![0.0; self.rows * new_cols];
            for i in 0..self.rows {
                data[i * new_cols..i * new_cols + self.cols]
                    .copy_from_slice(&self.data[i * self.cols..(i + 1) * self.cols]);
            }
            self.data = data;
            self.cols = new_cols;
        }
        for r in 0..add_rows {
            let mut row = vec![0.0; self.cols];
            if add_cols > 0 {
                // New rows concentrate on the first newly added column:
                // a freshly spawned state has only been seen emitting its
                // own symbol.
                row[self.cols - add_cols + r.min(add_cols - 1)] = 1.0;
            } else {
                let u = 1.0 / self.cols as f64;
                row.iter_mut().for_each(|x| *x = u);
            }
            self.data.extend_from_slice(&row);
            self.rows += 1;
        }
        self.assert_invariants("grow");
    }

    /// Computes the Gram matrix of the rows: `G[i][j] = Σ_k m[i][k]·m[j][k]`.
    ///
    /// The paper's orthogonality tests (§3.4) inspect the off-diagonal
    /// and diagonal entries of this matrix for **B**.
    pub fn row_gram(&self) -> Vec<Vec<f64>> {
        let mut g = vec![vec![0.0; self.rows]; self.rows];
        for i in 0..self.rows {
            for j in i..self.rows {
                let dot: f64 = self
                    .row(i)
                    .iter()
                    .zip(self.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                g[i][j] = dot;
                g[j][i] = dot;
            }
        }
        g
    }

    /// Computes the Gram matrix of the columns:
    /// `G[i][j] = Σ_k m[k][i]·m[k][j]`.
    pub fn col_gram(&self) -> Vec<Vec<f64>> {
        let mut g = vec![vec![0.0; self.cols]; self.cols];
        for i in 0..self.cols {
            let ci = self.col(i);
            for j in i..self.cols {
                let cj = self.col(j);
                let dot: f64 = ci.iter().zip(&cj).map(|(a, b)| a * b).sum();
                g[i][j] = dot;
                g[j][i] = dot;
            }
        }
        g
    }

    /// Returns a copy of the matrix with the listed columns removed and
    /// each row renormalized. Rows whose remaining mass is zero become
    /// uniform.
    ///
    /// Used to drop the fictitious ⊥ column of `B^CE` before structural
    /// analysis, as the paper prescribes ("this fictitious state is not
    /// taken into account during classification").
    pub fn drop_columns(&self, drop: &[usize]) -> Result<Self> {
        let keep: Vec<usize> = (0..self.cols).filter(|j| !drop.contains(j)).collect();
        if keep.is_empty() {
            return Err(HmmError::EmptyModel);
        }
        let mut rows = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let r = self.row(i);
            let mut nr: Vec<f64> = keep.iter().map(|&j| r[j]).collect();
            let s: f64 = nr.iter().sum();
            if s > 0.0 {
                nr.iter_mut().for_each(|x| *x /= s);
            } else {
                let u = 1.0 / nr.len() as f64;
                nr.iter_mut().for_each(|x| *x = u);
            }
            rows.push(nr);
        }
        Self::from_rows(rows)
    }

    /// Largest column index in each row (the mode of each distribution).
    pub fn row_argmax(&self) -> Vec<usize> {
        self.iter_rows()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Re-validates the stochasticity invariant with a looser tolerance,
    /// useful in debug assertions after long online-update runs.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::NotStochastic`] naming the first bad row.
    pub fn check(&self, tol: f64) -> Result<()> {
        for i in 0..self.rows {
            validate_distribution(self.row(i), &format!("matrix row {i}"), tol)?;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for StochasticMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl fmt::Display for StochasticMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.iter_rows() {
            for (j, x) in r.iter().enumerate() {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{x:.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2() -> StochasticMatrix {
        StochasticMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.25, 0.75]]).unwrap()
    }

    #[test]
    fn from_rows_valid() {
        let m = m2();
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.num_cols(), 2);
        assert_eq!(m[(1, 1)], 0.75);
    }

    #[test]
    fn from_rows_rejects_bad_sum() {
        let err = StochasticMatrix::from_rows(vec![vec![0.5, 0.4]]).unwrap_err();
        assert!(matches!(err, HmmError::NotStochastic { .. }));
    }

    #[test]
    fn from_rows_rejects_negative() {
        let err = StochasticMatrix::from_rows(vec![vec![1.2, -0.2]]).unwrap_err();
        assert!(matches!(err, HmmError::NotStochastic { .. }));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = StochasticMatrix::from_rows(vec![vec![1.0], vec![0.5, 0.5]]).unwrap_err();
        assert!(matches!(err, HmmError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(
            StochasticMatrix::from_rows(vec![]).unwrap_err(),
            HmmError::EmptyModel
        );
        assert_eq!(
            StochasticMatrix::from_rows(vec![vec![]]).unwrap_err(),
            HmmError::EmptyModel
        );
    }

    #[test]
    fn identity_is_stochastic() {
        let m = StochasticMatrix::identity(4).unwrap();
        m.check(1e-12).unwrap();
        assert_eq!(m[(2, 2)], 1.0);
        assert_eq!(m[(2, 3)], 0.0);
    }

    #[test]
    fn uniform_rows() {
        let m = StochasticMatrix::uniform(2, 5).unwrap();
        assert!((m[(1, 3)] - 0.2).abs() < 1e-12);
        m.check(1e-12).unwrap();
    }

    #[test]
    fn diagonal_like_rectangular() {
        let m = StochasticMatrix::diagonal_like(4, 2).unwrap();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 1)], 1.0);
        // Rows beyond the column count saturate at the last column.
        assert_eq!(m[(3, 1)], 1.0);
        m.check(1e-12).unwrap();
    }

    #[test]
    fn reinforce_moves_mass() {
        let mut m = StochasticMatrix::identity(2).unwrap();
        m.reinforce(0, 1, 0.5).unwrap();
        assert!((m[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((m[(0, 1)] - 0.5).abs() < 1e-12);
        m.check(1e-12).unwrap();
    }

    #[test]
    fn reinforce_rejects_bad_eta() {
        let mut m = StochasticMatrix::identity(2).unwrap();
        assert!(matches!(
            m.reinforce(0, 0, 0.0),
            Err(HmmError::InvalidParameter { .. })
        ));
        assert!(matches!(
            m.reinforce(0, 0, 1.0),
            Err(HmmError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn reinforce_rejects_out_of_range() {
        let mut m = StochasticMatrix::identity(2).unwrap();
        assert!(matches!(
            m.reinforce(5, 0, 0.5),
            Err(HmmError::StateOutOfRange { .. })
        ));
        assert!(matches!(
            m.reinforce(0, 5, 0.5),
            Err(HmmError::SymbolOutOfRange { .. })
        ));
    }

    #[test]
    fn row_gram_of_identity_is_identity() {
        let m = StochasticMatrix::identity(3).unwrap();
        let g = m.row_gram();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g[i][j], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn col_gram_detects_shared_column() {
        // Two rows mapping to the same column ⇒ that column's diagonal
        // Gram entry aggregates both, and rows are non-orthogonal.
        let m = StochasticMatrix::from_rows(vec![vec![1.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let g = m.row_gram();
        assert_eq!(g[0][1], 1.0); // rows not orthogonal
        let cg = m.col_gram();
        assert_eq!(cg[0][0], 2.0);
        assert_eq!(cg[0][1], 0.0);
    }

    #[test]
    fn grow_square() {
        let mut m = StochasticMatrix::identity(2).unwrap();
        m.grow(1, 1);
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.num_cols(), 3);
        assert_eq!(m[(2, 2)], 1.0);
        m.check(1e-12).unwrap();
    }

    #[test]
    fn grow_rows_only_uniform() {
        let mut m = StochasticMatrix::identity(2).unwrap();
        m.grow(1, 0);
        assert_eq!(m.num_rows(), 3);
        assert!((m[(2, 0)] - 0.5).abs() < 1e-12);
        m.check(1e-12).unwrap();
    }

    #[test]
    fn drop_columns_renormalizes() {
        let m = StochasticMatrix::from_rows(vec![vec![0.5, 0.25, 0.25]]).unwrap();
        let d = m.drop_columns(&[2]).unwrap();
        assert_eq!(d.num_cols(), 2);
        assert!((d[(0, 0)] - 2.0 / 3.0).abs() < 1e-12);
        d.check(1e-12).unwrap();
    }

    #[test]
    fn drop_columns_zero_row_becomes_uniform() {
        let m = StochasticMatrix::from_rows(vec![vec![0.0, 0.0, 1.0]]).unwrap();
        let d = m.drop_columns(&[2]).unwrap();
        assert!((d[(0, 0)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drop_all_columns_is_error() {
        let m = StochasticMatrix::identity(2).unwrap();
        assert_eq!(m.drop_columns(&[0, 1]).unwrap_err(), HmmError::EmptyModel);
    }

    #[test]
    fn row_argmax_modes() {
        let m = m2();
        assert_eq!(m.row_argmax(), vec![0, 1]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!m2().to_string().is_empty());
    }
}
