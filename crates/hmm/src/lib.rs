//! Discrete Hidden Markov Models, Markov chains, and the structural
//! analysis toolkit used by the `sentinet` sensor-network error/attack
//! detector (Basile, Gupta, Kalbarczyk, Iyer — DSN 2006).
//!
//! The crate provides four layers:
//!
//! 1. [`StochasticMatrix`] — validated row-stochastic matrices with the
//!    exponential simplex updates the paper's online estimation relies
//!    on, plus Gram-matrix machinery for orthogonality analysis.
//! 2. [`Hmm`] — the classical `λ = (A, B, π)` model with scaled
//!    forward/backward, [`Hmm::viterbi`] decoding, sampling, and batch
//!    [`baum_welch()`] training (used by the Warrender–Forrest baseline).
//! 3. [`OnlineHmmEstimator`] / [`OnlineMarkovEstimator`] — the paper's
//!    §3.2 on-line procedure: cheap per-window exponential updates that
//!    sidestep the classical HMM identification problem by exploiting
//!    sensor redundancy (the hidden state is *estimated* each window).
//! 4. [`structure`] — row/column orthogonality reports, the stuck-at
//!    column test (Eq. 7) and one-to-one association extraction (Eq. 8)
//!    that drive the §3.4 error/attack classification tree.
//!
//! # Examples
//!
//! Online estimation of `M_CO` from (correct state, observable state)
//! pairs, followed by structural analysis:
//!
//! ```
//! use sentinet_hmm::{OnlineHmmEstimator, structure::{OrthogonalityReport, OrthoTolerance}};
//!
//! # fn main() -> Result<(), sentinet_hmm::HmmError> {
//! let mut m_co = OnlineHmmEstimator::new(3, 3, 0.9, 0.9)?;
//! for (c, o) in [(0, 0), (1, 1), (2, 2), (1, 1), (0, 0)] {
//!     m_co.observe(c, o)?;
//! }
//! let report = OrthogonalityReport::analyze(
//!     m_co.observation(),
//!     OrthoTolerance::default(),
//!     None,
//! );
//! assert!(report.is_orthogonal()); // no attack signature
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// Indexed loops are the natural idiom for the dense matrix recurrences
// throughout this crate; iterator rewrites obscure the paper's algebra.
#![allow(clippy::needless_range_loop)]

mod error;
mod hmm;
mod matrix;

pub mod baum_welch;
pub mod markov;
pub mod online;
pub mod online_em;
pub mod selection;
pub mod structure;

pub use baum_welch::{baum_welch, BaumWelchConfig, TrainedHmm};
pub use error::{HmmError, Result};
pub use hmm::{Forward, ForwardScratch, Hmm, ViterbiPath};
pub use markov::{MarkovChain, MarkovState, OnlineMarkovEstimator};
pub use matrix::{validate_distribution, StochasticMatrix, STOCHASTIC_TOL};
pub use online::{EstimatorState, OnlineHmmEstimator};
pub use online_em::OnlineEmEstimator;
pub use selection::{select_num_states, ModelSelection};
