//! First-order Markov chains and their online estimation.
//!
//! The pipeline's final deliverable to the user is a Markov model `M_C`
//! of the error/attack-free environment dynamics (paper Fig. 7),
//! estimated from the sequence of correct environment states `c_i`. The
//! same machinery also powers the Markov-chain baseline detector of
//! `sentinet-baselines`.

use crate::error::{HmmError, Result};
use crate::matrix::StochasticMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A first-order Markov chain over `M` states.
///
/// # Examples
///
/// ```
/// use sentinet_hmm::MarkovChain;
///
/// # fn main() -> Result<(), sentinet_hmm::HmmError> {
/// let mc = MarkovChain::from_sequence(3, &[0, 0, 1, 1, 2, 0])?;
/// assert!(mc.transition()[(0, 0)] > 0.0);
/// let pi = mc.stationary(1e-10, 10_000);
/// assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovChain {
    transition: StochasticMatrix,
    /// Empirical state occupancy (visit frequency).
    occupancy: Vec<f64>,
}

impl MarkovChain {
    /// Creates a chain from an explicit transition matrix and occupancy
    /// distribution.
    ///
    /// # Errors
    ///
    /// - [`HmmError::DimensionMismatch`] if `transition` is not square or
    ///   `occupancy` disagrees with it.
    /// - [`HmmError::NotStochastic`] if `occupancy` is not a distribution.
    pub fn new(transition: StochasticMatrix, occupancy: Vec<f64>) -> Result<Self> {
        let m = transition.num_rows();
        if transition.num_cols() != m {
            return Err(HmmError::DimensionMismatch {
                what: "markov transition columns".into(),
                expected: m,
                actual: transition.num_cols(),
            });
        }
        if occupancy.len() != m {
            return Err(HmmError::DimensionMismatch {
                what: "markov occupancy".into(),
                expected: m,
                actual: occupancy.len(),
            });
        }
        crate::matrix::validate_distribution(&occupancy, "markov occupancy", 1e-9)?;
        Ok(Self {
            transition,
            occupancy,
        })
    }

    /// Estimates a chain from a state sequence by maximum likelihood with
    /// add-zero counts (rows never left become self-loops).
    ///
    /// # Errors
    ///
    /// - [`HmmError::EmptyModel`] if `num_states == 0`.
    /// - [`HmmError::EmptySequence`] if `seq` is empty.
    /// - [`HmmError::StateOutOfRange`] if the sequence mentions a state
    ///   `>= num_states`.
    pub fn from_sequence(num_states: usize, seq: &[usize]) -> Result<Self> {
        if num_states == 0 {
            return Err(HmmError::EmptyModel);
        }
        if seq.is_empty() {
            return Err(HmmError::EmptySequence);
        }
        for &s in seq {
            if s >= num_states {
                return Err(HmmError::StateOutOfRange {
                    state: s,
                    num_states,
                });
            }
        }
        let mut counts = vec![vec![0.0f64; num_states]; num_states];
        let mut visits = vec![0.0f64; num_states];
        for &s in seq {
            visits[s] += 1.0;
        }
        for w in seq.windows(2) {
            counts[w[0]][w[1]] += 1.0;
        }
        let rows: Vec<Vec<f64>> = counts
            .into_iter()
            .enumerate()
            .map(|(i, row)| {
                let s: f64 = row.iter().sum();
                // sentinet-allow(float-eq): an exactly-zero row sum cannot be normalised; the guard falls back to uniform
                if s == 0.0 {
                    // Never-left state: model as an absorbing self-loop.
                    let mut r = vec![0.0; num_states];
                    r[i] = 1.0;
                    r
                } else {
                    row.into_iter().map(|x| x / s).collect()
                }
            })
            .collect();
        let total: f64 = visits.iter().sum();
        let occupancy = visits.into_iter().map(|v| v / total).collect();
        Ok(Self {
            transition: StochasticMatrix::from_rows(rows)?,
            occupancy,
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transition.num_rows()
    }

    /// The transition matrix.
    pub fn transition(&self) -> &StochasticMatrix {
        &self.transition
    }

    /// Empirical occupancy distribution.
    pub fn occupancy(&self) -> &[f64] {
        &self.occupancy
    }

    /// Stationary distribution by power iteration from the occupancy
    /// estimate, stopping at `tol` (L1) or `max_iters`.
    pub fn stationary(&self, tol: f64, max_iters: usize) -> Vec<f64> {
        let m = self.num_states();
        let mut pi = self.occupancy.clone();
        for _ in 0..max_iters {
            let mut next = vec![0.0; m];
            for i in 0..m {
                for (j, nx) in next.iter_mut().enumerate() {
                    *nx += pi[i] * self.transition[(i, j)];
                }
            }
            let diff: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            pi = next;
            if diff < tol {
                break;
            }
        }
        pi
    }

    /// Indices of *key states*: occupancy at least `min_occupancy`. The
    /// paper drops the (16, 27) fluctuation state of Fig. 7 this way
    /// ("the transition to this state has a very low probability, and
    /// hence, this state is not further considered").
    pub fn key_states(&self, min_occupancy: f64) -> Vec<usize> {
        self.occupancy
            .iter()
            .enumerate()
            .filter(|(_, &p)| p >= min_occupancy)
            .map(|(i, _)| i)
            .collect()
    }

    /// All transitions with probability at least `min_prob`, as
    /// `(from, to, prob)` triples — the edge list of Fig. 7.
    pub fn edges(&self, min_prob: f64) -> Vec<(usize, usize, f64)> {
        let m = self.num_states();
        let mut out = Vec::new();
        for i in 0..m {
            for j in 0..m {
                let p = self.transition[(i, j)];
                if p >= min_prob {
                    out.push((i, j, p));
                }
            }
        }
        out
    }

    /// Renders the chain in Graphviz DOT syntax with user-provided state
    /// labels, for direct visual comparison with the paper's Fig. 7.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != self.num_states()`.
    pub fn to_dot(&self, labels: &[String], min_prob: f64) -> String {
        assert_eq!(
            labels.len(),
            self.num_states(),
            "one label per state required"
        );
        let mut s = String::from("digraph markov {\n  rankdir=LR;\n");
        for (i, l) in labels.iter().enumerate() {
            s.push_str(&format!("  s{i} [label=\"{l}\"];\n"));
        }
        for (i, j, p) in self.edges(min_prob) {
            s.push_str(&format!("  s{i} -> s{j} [label=\"{p:.2}\"];\n"));
        }
        s.push_str("}\n");
        s
    }
}

impl fmt::Display for MarkovChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "MarkovChain ({} states)", self.num_states())?;
        write!(f, "{}", self.transition)
    }
}

/// Online Markov chain estimator mirroring the paper's transition update
/// (same `β`-exponential rule as the HMM's **A**, applied on every step
/// including self-transitions so the chain also learns dwell times).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineMarkovEstimator {
    transition: StochasticMatrix,
    beta: f64,
    prev: Option<usize>,
    visits: Vec<u64>,
}

impl OnlineMarkovEstimator {
    /// Creates an estimator over `num_states` states with learning factor
    /// `beta`; the transition matrix starts at the identity.
    ///
    /// # Errors
    ///
    /// - [`HmmError::EmptyModel`] if `num_states == 0`.
    /// - [`HmmError::InvalidParameter`] if `beta` is outside `(0, 1)`.
    pub fn new(num_states: usize, beta: f64) -> Result<Self> {
        if !(beta > 0.0 && beta < 1.0) {
            return Err(HmmError::InvalidParameter {
                name: "beta",
                value: beta,
                range: "(0, 1)",
            });
        }
        Ok(Self {
            transition: StochasticMatrix::identity(num_states)?,
            beta,
            prev: None,
            visits: vec![0; num_states],
        })
    }

    /// Number of states currently tracked.
    pub fn num_states(&self) -> usize {
        self.transition.num_rows()
    }

    /// Feeds the next observed state.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::StateOutOfRange`] for an invalid index.
    pub fn observe(&mut self, state: usize) -> Result<()> {
        if state >= self.num_states() {
            return Err(HmmError::StateOutOfRange {
                state,
                num_states: self.num_states(),
            });
        }
        if let Some(prev) = self.prev {
            if prev != state {
                self.transition.reinforce(prev, state, self.beta)?;
            }
        }
        self.visits[state] += 1;
        self.prev = Some(state);
        Ok(())
    }

    /// Grows the estimator to at least `num_states` states.
    pub fn grow(&mut self, num_states: usize) {
        let add = num_states.saturating_sub(self.num_states());
        if add > 0 {
            self.transition.grow(add, add);
            self.visits.extend(std::iter::repeat_n(0, add));
        }
    }

    /// Captures the complete estimator state as plain data for
    /// checkpointing. [`OnlineMarkovEstimator::import_state`] rebuilds
    /// an estimator that is `==` to this one (all floats verbatim), the
    /// same contract as the HMM estimator's
    /// [`export_state`](crate::OnlineHmmEstimator::export_state).
    pub fn export_state(&self) -> MarkovState {
        MarkovState {
            transition: self.transition.iter_rows().map(<[f64]>::to_vec).collect(),
            beta: self.beta,
            prev: self.prev,
            visits: self.visits.clone(),
        }
    }

    /// Rebuilds an estimator from an exported state, re-validating the
    /// matrix invariants (a corrupt checkpoint must fail loudly, not
    /// poison the estimates).
    ///
    /// # Errors
    ///
    /// - Matrix construction errors if the rows are not stochastic or
    ///   are ragged.
    /// - [`HmmError::DimensionMismatch`] if `visits` disagrees with the
    ///   transition matrix's state count.
    /// - [`HmmError::StateOutOfRange`] if `prev` is out of range.
    /// - [`HmmError::InvalidParameter`] for an out-of-range `beta`.
    pub fn import_state(state: MarkovState) -> Result<Self> {
        if !(state.beta > 0.0 && state.beta < 1.0) {
            return Err(HmmError::InvalidParameter {
                name: "beta",
                value: state.beta,
                range: "(0, 1)",
            });
        }
        let transition = StochasticMatrix::from_rows(state.transition)?;
        let m = transition.num_rows();
        if transition.num_cols() != m {
            return Err(HmmError::DimensionMismatch {
                what: "markov transition columns".into(),
                expected: m,
                actual: transition.num_cols(),
            });
        }
        if state.visits.len() != m {
            return Err(HmmError::DimensionMismatch {
                what: "markov visit counts".into(),
                expected: m,
                actual: state.visits.len(),
            });
        }
        if let Some(prev) = state.prev {
            if prev >= m {
                return Err(HmmError::StateOutOfRange {
                    state: prev,
                    num_states: m,
                });
            }
        }
        Ok(Self {
            transition,
            beta: state.beta,
            prev: state.prev,
            visits: state.visits,
        })
    }

    /// Builds a [`MarkovChain`] snapshot with empirical occupancy.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur when invariants held).
    pub fn to_chain(&self) -> Result<MarkovChain> {
        let total: u64 = self.visits.iter().sum();
        let occ = if total == 0 {
            vec![1.0 / self.num_states() as f64; self.num_states()]
        } else {
            self.visits
                .iter()
                .map(|&v| v as f64 / total as f64)
                .collect()
        };
        MarkovChain::new(self.transition.clone(), occ)
    }
}

/// Plain-data image of an [`OnlineMarkovEstimator`], produced by
/// [`OnlineMarkovEstimator::export_state`] for checkpoint/restore.
/// Matrix rows are stored verbatim (row-major `Vec<Vec<f64>>`), so a
/// round-trip is bit-exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovState {
    /// Rows of the transition matrix (square).
    pub transition: Vec<Vec<f64>>,
    /// Transition learning factor β.
    pub beta: f64,
    /// State seen at the previous step, if any.
    pub prev: Option<usize>,
    /// Visit counts per state.
    pub visits: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sequence_counts_correctly() {
        let mc = MarkovChain::from_sequence(2, &[0, 0, 1, 0, 1, 1]).unwrap();
        // Transitions from 0: 0→0 once, 0→1 twice.
        assert!((mc.transition()[(0, 0)] - 1.0 / 3.0).abs() < 1e-12);
        assert!((mc.transition()[(0, 1)] - 2.0 / 3.0).abs() < 1e-12);
        // occupancy: three 0s, three 1s.
        assert_eq!(mc.occupancy(), &[0.5, 0.5]);
    }

    #[test]
    fn from_sequence_never_left_state_self_loops() {
        let mc = MarkovChain::from_sequence(3, &[0, 1, 0, 1]).unwrap();
        assert_eq!(mc.transition()[(2, 2)], 1.0);
    }

    #[test]
    fn from_sequence_validates() {
        assert_eq!(
            MarkovChain::from_sequence(0, &[0]).unwrap_err(),
            HmmError::EmptyModel
        );
        assert_eq!(
            MarkovChain::from_sequence(2, &[]).unwrap_err(),
            HmmError::EmptySequence
        );
        assert!(matches!(
            MarkovChain::from_sequence(2, &[0, 5]),
            Err(HmmError::StateOutOfRange { .. })
        ));
    }

    #[test]
    fn stationary_of_two_state_chain() {
        // p(0→1)=0.2, p(1→0)=0.4 ⇒ π = (2/3, 1/3).
        let t = StochasticMatrix::from_rows(vec![vec![0.8, 0.2], vec![0.4, 0.6]]).unwrap();
        let mc = MarkovChain::new(t, vec![0.5, 0.5]).unwrap();
        let pi = mc.stationary(1e-12, 100_000);
        assert!((pi[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn key_states_filters_low_occupancy() {
        let t = StochasticMatrix::identity(3).unwrap();
        let mc = MarkovChain::new(t, vec![0.48, 0.48, 0.04]).unwrap();
        assert_eq!(mc.key_states(0.05), vec![0, 1]);
    }

    #[test]
    fn edges_and_dot_output() {
        let mc = MarkovChain::from_sequence(2, &[0, 1, 0, 1]).unwrap();
        let edges = mc.edges(0.5);
        assert!(edges.contains(&(0, 1, 1.0)));
        let dot = mc.to_dot(&["(12,94)".into(), "(17,84)".into()], 0.5);
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("(12,94)"));
    }

    #[test]
    #[should_panic(expected = "one label per state")]
    fn to_dot_wrong_labels_panics() {
        let mc = MarkovChain::from_sequence(2, &[0, 1]).unwrap();
        mc.to_dot(&["a".into()], 0.0);
    }

    #[test]
    fn online_estimator_learns_alternation() {
        let mut est = OnlineMarkovEstimator::new(2, 0.9).unwrap();
        for t in 0..40 {
            est.observe(t % 2).unwrap();
        }
        let mc = est.to_chain().unwrap();
        assert!(mc.transition()[(0, 1)] > 0.99);
        assert!(mc.transition()[(1, 0)] > 0.99);
    }

    #[test]
    fn online_estimator_grow() {
        let mut est = OnlineMarkovEstimator::new(2, 0.9).unwrap();
        est.observe(0).unwrap();
        est.grow(4);
        assert_eq!(est.num_states(), 4);
        est.observe(3).unwrap();
        est.to_chain().unwrap().transition().check(1e-9).unwrap();
    }

    #[test]
    fn online_estimator_validates() {
        assert!(matches!(
            OnlineMarkovEstimator::new(2, 1.5),
            Err(HmmError::InvalidParameter { .. })
        ));
        let mut est = OnlineMarkovEstimator::new(2, 0.5).unwrap();
        assert!(matches!(
            est.observe(7),
            Err(HmmError::StateOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_estimator_chain_is_uniform() {
        let est = OnlineMarkovEstimator::new(4, 0.5).unwrap();
        let mc = est.to_chain().unwrap();
        assert_eq!(mc.occupancy(), &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn export_import_round_trips_bit_exactly() {
        let mut est = OnlineMarkovEstimator::new(3, 0.9).unwrap();
        for s in [0usize, 1, 1, 2, 0, 2, 1] {
            est.observe(s).unwrap();
        }
        let state = est.export_state();
        let restored = OnlineMarkovEstimator::import_state(state).unwrap();
        assert_eq!(est, restored);
        // Continuing both yields identical estimates.
        let mut a = est;
        let mut b = restored;
        for s in [2usize, 0, 1, 2] {
            a.observe(s).unwrap();
            b.observe(s).unwrap();
        }
        assert_eq!(a, b);
    }

    #[test]
    fn import_state_validates() {
        let good = OnlineMarkovEstimator::new(2, 0.5).unwrap().export_state();
        let mut bad = good.clone();
        bad.beta = 1.5;
        assert!(matches!(
            OnlineMarkovEstimator::import_state(bad),
            Err(HmmError::InvalidParameter { .. })
        ));
        let mut bad = good.clone();
        bad.visits = vec![0; 3];
        assert!(matches!(
            OnlineMarkovEstimator::import_state(bad),
            Err(HmmError::DimensionMismatch { .. })
        ));
        let mut bad = good.clone();
        bad.prev = Some(9);
        assert!(matches!(
            OnlineMarkovEstimator::import_state(bad),
            Err(HmmError::StateOutOfRange { .. })
        ));
        let mut bad = good;
        bad.transition[0][0] = 0.7; // row no longer sums to 1
        assert!(OnlineMarkovEstimator::import_state(bad).is_err());
    }
}
