//! Recursive (online) EM estimation of an HMM from observations alone.
//!
//! The paper sidesteps classical HMM identification by *estimating the
//! hidden state each window* from sensor redundancy and applying cheap
//! exponential updates (§3.2, [`crate::online::OnlineHmmEstimator`]).
//! Its footnote 3 points at "advanced on-line HMM estimation
//! techniques" (Stiller & Radons, IEEE SPL 1999) for settings where no
//! such side-channel exists. This module implements that alternative: a
//! fixed-step recursive EM in the style of Stiller–Radons/Cappé —
//!
//! 1. propagate the forward filter `α_t(j) ∝ Σ_i α_{t−1}(i)·a_ij·b_j(y_t)`;
//! 2. form the pairwise posterior `ξ_t(i,j) ∝ α_{t−1}(i)·a_ij·b_j(y_t)`;
//! 3. blend it into exponentially weighted sufficient statistics
//!    `S_A ← (1−η)S_A + η·ξ_t` and `S_B ← (1−η)S_B + η·γ_t⊗δ_{y_t}`;
//! 4. re-estimate `A`, `B` by row-normalizing the statistics.
//!
//! Unlike the paper's estimator it needs **no hidden-state estimates**
//! — only the observation stream — at the cost of slower, less
//! identifiable convergence (local optima, label permutation). The
//! `exp_online_em` bench quantifies that gap.

use crate::error::{HmmError, Result};
use crate::hmm::Hmm;
use crate::matrix::StochasticMatrix;
use serde::{Deserialize, Serialize};

/// Recursive EM estimator over an observation stream.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sentinet_hmm::{Hmm, OnlineEmEstimator};
///
/// # fn main() -> Result<(), sentinet_hmm::HmmError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let init = Hmm::random(2, 2, &mut rng)?;
/// let mut em = OnlineEmEstimator::new(init, 0.01)?;
/// for y in [0, 0, 1, 1, 0, 0, 1, 1] {
///     em.observe(y)?;
/// }
/// let model = em.to_hmm()?;
/// assert_eq!(model.num_states(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineEmEstimator {
    a: StochasticMatrix,
    b: StochasticMatrix,
    /// Forward filter over hidden states (posterior of `s_t` given
    /// `y_1..y_t`).
    filter: Vec<f64>,
    /// EW sufficient statistics for transitions.
    s_a: Vec<Vec<f64>>,
    /// EW sufficient statistics for emissions.
    s_b: Vec<Vec<f64>>,
    eta: f64,
    /// Regularization added before normalization, keeping parameters
    /// strictly positive (a vanished entry can never recover in EM).
    floor: f64,
    steps: u64,
    started: bool,
}

impl OnlineEmEstimator {
    /// Creates an estimator from an initial model guess and step size
    /// `eta ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::InvalidParameter`] for an out-of-range step
    /// size.
    pub fn new(init: Hmm, eta: f64) -> Result<Self> {
        if !(eta > 0.0 && eta < 1.0) {
            return Err(HmmError::InvalidParameter {
                name: "eta",
                value: eta,
                range: "(0, 1)",
            });
        }
        let m = init.num_states();
        // Seed the statistics with the initial model so early M-steps
        // don't collapse onto the first few observations.
        let s_a = (0..m).map(|i| init.transition().row(i).to_vec()).collect();
        let s_b = (0..m).map(|i| init.observation().row(i).to_vec()).collect();
        Ok(Self {
            filter: init.initial().to_vec(),
            a: init.transition().clone(),
            b: init.observation().clone(),
            s_a,
            s_b,
            eta,
            floor: 1e-6,
            steps: 0,
            started: false,
        })
    }

    /// Number of hidden states.
    pub fn num_states(&self) -> usize {
        self.a.num_rows()
    }

    /// Number of observation symbols.
    pub fn num_symbols(&self) -> usize {
        self.b.num_cols()
    }

    /// Observations consumed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The current forward-filter posterior over hidden states.
    pub fn filter(&self) -> &[f64] {
        &self.filter
    }

    /// Per-symbol predictive probability of `symbol` under the current
    /// model and filter — useful as an online scoring rule.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::SymbolOutOfRange`] for a bad symbol.
    pub fn predictive_prob(&self, symbol: usize) -> Result<f64> {
        if symbol >= self.num_symbols() {
            return Err(HmmError::SymbolOutOfRange {
                symbol,
                num_symbols: self.num_symbols(),
            });
        }
        let m = self.num_states();
        let mut p = 0.0;
        if self.started {
            for i in 0..m {
                for j in 0..m {
                    p += self.filter[i] * self.a[(i, j)] * self.b[(j, symbol)];
                }
            }
        } else {
            for (i, &pi) in self.filter.iter().enumerate() {
                p += pi * self.b[(i, symbol)];
            }
        }
        Ok(p)
    }

    /// Consumes one observation symbol: E-step on the pair posterior,
    /// statistics blend, and M-step re-estimation.
    ///
    /// # Errors
    ///
    /// - [`HmmError::SymbolOutOfRange`] for a bad symbol.
    /// - [`HmmError::ImpossibleSequence`] if the observation has zero
    ///   probability under the (floored) model — cannot occur with the
    ///   default positive floor.
    pub fn observe(&mut self, symbol: usize) -> Result<()> {
        let m = self.num_states();
        if symbol >= self.num_symbols() {
            return Err(HmmError::SymbolOutOfRange {
                symbol,
                num_symbols: self.num_symbols(),
            });
        }
        if !self.started {
            // First observation: condition the prior on y_0.
            let mut alpha: Vec<f64> = (0..m)
                .map(|i| self.filter[i] * self.b[(i, symbol)])
                .collect();
            let norm: f64 = alpha.iter().sum();
            if norm <= 0.0 {
                return Err(HmmError::ImpossibleSequence { time: 0 });
            }
            alpha.iter_mut().for_each(|x| *x /= norm);
            for i in 0..m {
                for k in 0..self.num_symbols() {
                    self.s_b[i][k] = (1.0 - self.eta) * self.s_b[i][k]
                        + self.eta * alpha[i] * f64::from(u8::from(k == symbol));
                }
            }
            self.filter = alpha;
            self.started = true;
            self.steps = 1;
            self.re_estimate()?;
            return Ok(());
        }

        // Pairwise posterior ξ(i, j) ∝ α(i)·a_ij·b_j(y).
        let mut xi = vec![vec![0.0; m]; m];
        let mut norm = 0.0;
        for i in 0..m {
            for (j, x) in xi[i].iter_mut().enumerate() {
                *x = self.filter[i] * self.a[(i, j)] * self.b[(j, symbol)];
                norm += *x;
            }
        }
        if norm <= 0.0 {
            return Err(HmmError::ImpossibleSequence {
                time: self.steps as usize,
            });
        }
        let mut gamma = vec![0.0; m];
        for i in 0..m {
            for j in 0..m {
                xi[i][j] /= norm;
                gamma[j] += xi[i][j];
            }
        }

        // Blend sufficient statistics.
        for i in 0..m {
            for j in 0..m {
                self.s_a[i][j] = (1.0 - self.eta) * self.s_a[i][j] + self.eta * xi[i][j];
            }
            for k in 0..self.num_symbols() {
                self.s_b[i][k] = (1.0 - self.eta) * self.s_b[i][k]
                    + self.eta * gamma[i] * f64::from(u8::from(k == symbol));
            }
        }
        self.filter = gamma;
        self.steps += 1;
        self.re_estimate()
    }

    fn re_estimate(&mut self) -> Result<()> {
        let normalize = |stats: &[Vec<f64>], floor: f64| -> Result<StochasticMatrix> {
            let rows: Vec<Vec<f64>> = stats
                .iter()
                .map(|r| {
                    let s: f64 = r.iter().map(|x| x + floor).sum();
                    r.iter().map(|x| (x + floor) / s).collect()
                })
                .collect();
            StochasticMatrix::from_rows(rows)
        };
        self.a = normalize(&self.s_a, self.floor)?;
        self.b = normalize(&self.s_b, self.floor)?;
        Ok(())
    }

    /// The current transition estimate.
    pub fn transition(&self) -> &StochasticMatrix {
        &self.a
    }

    /// The current observation estimate.
    pub fn observation(&self) -> &StochasticMatrix {
        &self.b
    }

    /// Snapshot of the current model, with the forward filter as the
    /// initial distribution.
    ///
    /// # Errors
    ///
    /// Propagates [`Hmm::new`] errors (cannot occur when invariants
    /// held).
    pub fn to_hmm(&self) -> Result<Hmm> {
        Hmm::new(self.a.clone(), self.b.clone(), self.filter.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth() -> Hmm {
        let a = StochasticMatrix::from_rows(vec![vec![0.95, 0.05], vec![0.05, 0.95]]).unwrap();
        let b = StochasticMatrix::from_rows(vec![vec![0.95, 0.05], vec![0.05, 0.95]]).unwrap();
        Hmm::new(a, b, vec![0.5, 0.5]).unwrap()
    }

    #[test]
    fn rejects_bad_eta() {
        let init = Hmm::uniform(2, 2).unwrap();
        assert!(matches!(
            OnlineEmEstimator::new(init, 1.0),
            Err(HmmError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn matrices_stay_stochastic() {
        let mut rng = StdRng::seed_from_u64(1);
        let (_, obs) = truth().sample(2_000, &mut rng).unwrap();
        let init = Hmm::random(2, 2, &mut rng).unwrap();
        let mut em = OnlineEmEstimator::new(init, 0.02).unwrap();
        for y in obs {
            em.observe(y).unwrap();
        }
        em.transition().check(1e-7).unwrap();
        em.observation().check(1e-7).unwrap();
        let fs: f64 = em.filter().iter().sum();
        assert!((fs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_emission_structure_unsupervised() {
        let mut rng = StdRng::seed_from_u64(7);
        let (_, obs) = truth().sample(8_000, &mut rng).unwrap();
        let init = Hmm::random(2, 2, &mut rng).unwrap();
        let mut em = OnlineEmEstimator::new(init, 0.01).unwrap();
        for &y in &obs {
            em.observe(y).unwrap();
        }
        // Up to permutation, the two states must specialize.
        let b = em.observation();
        let modes = b.row_argmax();
        assert_ne!(modes[0], modes[1], "states failed to specialize: B = {b}");
        assert!(b.row(0)[modes[0]] > 0.75, "B = {b}");
        assert!(b.row(1)[modes[1]] > 0.75, "B = {b}");
        // Transitions must reflect the strong diagonal dwell.
        let a = em.transition();
        assert!(a[(0, 0)] > 0.7 && a[(1, 1)] > 0.7, "A = {a}");
    }

    #[test]
    fn predictive_likelihood_beats_initial_model() {
        let mut rng = StdRng::seed_from_u64(3);
        let (_, obs) = truth().sample(6_000, &mut rng).unwrap();
        let init = Hmm::random(2, 2, &mut rng).unwrap();
        let mut em = OnlineEmEstimator::new(init.clone(), 0.01).unwrap();
        // Accumulate per-step predictive log-loss over the second half
        // (after burn-in) and compare with the frozen initial model.
        let mut em_loss = 0.0;
        let mut init_em = OnlineEmEstimator::new(init, 1e-9).unwrap(); // ~frozen
        let mut init_loss = 0.0;
        for (t, &y) in obs.iter().enumerate() {
            if t >= obs.len() / 2 {
                em_loss -= em.predictive_prob(y).unwrap().max(1e-12).ln();
                init_loss -= init_em.predictive_prob(y).unwrap().max(1e-12).ln();
            }
            em.observe(y).unwrap();
            init_em.observe(y).unwrap();
        }
        assert!(
            em_loss < init_loss,
            "online EM {em_loss} should beat frozen init {init_loss}"
        );
    }

    #[test]
    fn out_of_range_symbol_rejected() {
        let mut em = OnlineEmEstimator::new(Hmm::uniform(2, 2).unwrap(), 0.05).unwrap();
        assert!(matches!(
            em.observe(5),
            Err(HmmError::SymbolOutOfRange { .. })
        ));
        assert!(em.predictive_prob(5).is_err());
    }

    #[test]
    fn predictive_probs_form_distribution() {
        let mut rng = StdRng::seed_from_u64(9);
        let (_, obs) = truth().sample(200, &mut rng).unwrap();
        let mut em = OnlineEmEstimator::new(Hmm::random(2, 2, &mut rng).unwrap(), 0.05).unwrap();
        for y in obs {
            em.observe(y).unwrap();
            let total: f64 = (0..2).map(|k| em.predictive_prob(k).unwrap()).sum();
            assert!((total - 1.0).abs() < 1e-9, "predictive total {total}");
        }
    }

    #[test]
    fn snapshot_is_valid_model() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut em = OnlineEmEstimator::new(Hmm::random(3, 4, &mut rng).unwrap(), 0.05).unwrap();
        for y in [0, 1, 2, 3, 2, 1, 0] {
            em.observe(y).unwrap();
        }
        let h = em.to_hmm().unwrap();
        assert!(h.log_likelihood(&[0, 1, 2]).is_ok());
        assert_eq!(em.steps(), 7);
    }
}
