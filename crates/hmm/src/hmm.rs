//! Dense discrete Hidden Markov Models with scaled inference.
//!
//! Implements the classical triple `λ = (A, B, π)` of Rabiner's tutorial
//! (the paper's reference [8]) with numerically scaled forward/backward
//! passes, Viterbi decoding, and sequence sampling. Training lives in
//! [`crate::baum_welch`] (batch) and [`crate::online`] (the paper's §3.2
//! exponential estimator).

use crate::error::{HmmError, Result};
use crate::matrix::{validate_distribution, StochasticMatrix, STOCHASTIC_TOL};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A discrete Hidden Markov Model `λ = (A, B, π)`.
///
/// - `M = num_states()` hidden states `S_1..S_M`;
/// - `N = num_symbols()` observation symbols `V_1..V_N`;
/// - `A[i][j] = Pr{s_{t+1} = S_j | s_t = S_i}`;
/// - `B[i][k] = Pr{v_t = V_k | s_t = S_i}`;
/// - `π[i] = Pr{s_0 = S_i}`.
///
/// # Examples
///
/// ```
/// use sentinet_hmm::{Hmm, StochasticMatrix};
///
/// # fn main() -> Result<(), sentinet_hmm::HmmError> {
/// let a = StochasticMatrix::from_rows(vec![vec![0.7, 0.3], vec![0.4, 0.6]])?;
/// let b = StochasticMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.2, 0.8]])?;
/// let hmm = Hmm::new(a, b, vec![0.6, 0.4])?;
/// let ll = hmm.log_likelihood(&[0, 1, 0])?;
/// assert!(ll < 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hmm {
    a: StochasticMatrix,
    b: StochasticMatrix,
    pi: Vec<f64>,
}

/// Result of a scaled forward pass.
///
/// `alpha_hat[t][i]` is the scaled forward variable and `scale[t]` the
/// per-step normalizer; `log Pr{O|λ} = Σ_t ln scale[t]`.
#[derive(Debug, Clone)]
pub struct Forward {
    /// Scaled forward variables, one row per time step.
    pub alpha_hat: Vec<Vec<f64>>,
    /// Per-step scaling factors (each > 0).
    pub scale: Vec<f64>,
}

impl Forward {
    /// Log-likelihood of the observation sequence that produced this pass.
    pub fn log_likelihood(&self) -> f64 {
        self.scale.iter().map(|c| c.ln()).sum()
    }
}

/// Reusable buffers for [`Hmm::log_likelihood_into`]: two state-sized
/// vectors that persist across calls so repeated scoring allocates
/// nothing after the first evaluation.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    alpha: Vec<f64>,
    next: Vec<f64>,
}

impl ForwardScratch {
    /// Creates empty scratch buffers (they size themselves on use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Result of Viterbi decoding: the maximum-probability state path and
/// its log-probability.
#[derive(Debug, Clone, PartialEq)]
pub struct ViterbiPath {
    /// Most likely hidden state sequence.
    pub states: Vec<usize>,
    /// Log joint probability `ln Pr{O, path | λ}`.
    pub log_prob: f64,
}

impl Hmm {
    /// Creates an HMM from its parameter triple.
    ///
    /// # Errors
    ///
    /// - [`HmmError::DimensionMismatch`] if `A` is not square, or `B`/`π`
    ///   do not agree with `A` on the number of states.
    /// - [`HmmError::NotStochastic`] if `π` is not a distribution.
    pub fn new(a: StochasticMatrix, b: StochasticMatrix, pi: Vec<f64>) -> Result<Self> {
        let m = a.num_rows();
        if a.num_cols() != m {
            return Err(HmmError::DimensionMismatch {
                what: "transition matrix columns".into(),
                expected: m,
                actual: a.num_cols(),
            });
        }
        if b.num_rows() != m {
            return Err(HmmError::DimensionMismatch {
                what: "observation matrix rows".into(),
                expected: m,
                actual: b.num_rows(),
            });
        }
        if pi.len() != m {
            return Err(HmmError::DimensionMismatch {
                what: "initial distribution".into(),
                expected: m,
                actual: pi.len(),
            });
        }
        validate_distribution(&pi, "initial distribution", STOCHASTIC_TOL)?;
        Ok(Self { a, b, pi })
    }

    /// Creates an HMM with uniform `A`, `B` and `π` — a common
    /// uninformative starting point for Baum–Welch.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::EmptyModel`] if either dimension is zero.
    pub fn uniform(num_states: usize, num_symbols: usize) -> Result<Self> {
        Ok(Self {
            a: StochasticMatrix::uniform(num_states, num_states)?,
            b: StochasticMatrix::uniform(num_states, num_symbols)?,
            pi: vec![1.0 / num_states as f64; num_states],
        })
    }

    /// Creates an HMM with randomly perturbed uniform parameters, which
    /// breaks the symmetry that traps Baum–Welch at the uniform saddle
    /// point.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::EmptyModel`] if either dimension is zero.
    pub fn random<R: Rng + ?Sized>(
        num_states: usize,
        num_symbols: usize,
        rng: &mut R,
    ) -> Result<Self> {
        fn random_row<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
            let mut row: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
            let s: f64 = row.iter().sum();
            row.iter_mut().for_each(|x| *x /= s);
            row
        }
        if num_states == 0 || num_symbols == 0 {
            return Err(HmmError::EmptyModel);
        }
        let a = StochasticMatrix::from_rows(
            (0..num_states)
                .map(|_| random_row(num_states, rng))
                .collect(),
        )?;
        let b = StochasticMatrix::from_rows(
            (0..num_states)
                .map(|_| random_row(num_symbols, rng))
                .collect(),
        )?;
        let pi = random_row(num_states, rng);
        Self::new(a, b, pi)
    }

    /// Number of hidden states `M`.
    pub fn num_states(&self) -> usize {
        self.a.num_rows()
    }

    /// Number of observation symbols `N`.
    pub fn num_symbols(&self) -> usize {
        self.b.num_cols()
    }

    /// The state transition distribution **A**.
    pub fn transition(&self) -> &StochasticMatrix {
        &self.a
    }

    /// The observation symbol distribution **B**.
    pub fn observation(&self) -> &StochasticMatrix {
        &self.b
    }

    /// The initial state distribution **π**.
    pub fn initial(&self) -> &[f64] {
        &self.pi
    }

    fn check_symbols(&self, obs: &[usize]) -> Result<()> {
        if obs.is_empty() {
            return Err(HmmError::EmptySequence);
        }
        let n = self.num_symbols();
        for &o in obs {
            if o >= n {
                return Err(HmmError::SymbolOutOfRange {
                    symbol: o,
                    num_symbols: n,
                });
            }
        }
        Ok(())
    }

    /// Runs the scaled forward algorithm on `obs`.
    ///
    /// # Errors
    ///
    /// - [`HmmError::EmptySequence`] / [`HmmError::SymbolOutOfRange`] on
    ///   invalid input.
    /// - [`HmmError::ImpossibleSequence`] if the sequence has zero
    ///   probability under the model.
    pub fn forward(&self, obs: &[usize]) -> Result<Forward> {
        self.check_symbols(obs)?;
        let m = self.num_states();
        let mut alpha_hat = Vec::with_capacity(obs.len());
        let mut scale = Vec::with_capacity(obs.len());

        let mut alpha: Vec<f64> = (0..m).map(|i| self.pi[i] * self.b[(i, obs[0])]).collect();
        let c0: f64 = alpha.iter().sum();
        if c0 <= 0.0 {
            return Err(HmmError::ImpossibleSequence { time: 0 });
        }
        alpha.iter_mut().for_each(|x| *x /= c0);
        scale.push(c0);
        alpha_hat.push(alpha.clone());

        for (t, &o) in obs.iter().enumerate().skip(1) {
            let mut next = vec![0.0; m];
            for (j, nx) in next.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (i, &ai) in alpha.iter().enumerate() {
                    acc += ai * self.a[(i, j)];
                }
                *nx = acc * self.b[(j, o)];
            }
            let c: f64 = next.iter().sum();
            if c <= 0.0 {
                return Err(HmmError::ImpossibleSequence { time: t });
            }
            next.iter_mut().for_each(|x| *x /= c);
            scale.push(c);
            alpha_hat.push(next.clone());
            alpha = next;
        }
        Ok(Forward { alpha_hat, scale })
    }

    /// Runs the scaled backward algorithm using the scaling factors from
    /// a prior forward pass (standard Rabiner scaling).
    ///
    /// Returns `beta_hat[t][i]`.
    ///
    /// # Errors
    ///
    /// Propagates input-validation errors; also returns
    /// [`HmmError::DimensionMismatch`] if `scale` does not match `obs`.
    pub fn backward(&self, obs: &[usize], scale: &[f64]) -> Result<Vec<Vec<f64>>> {
        self.check_symbols(obs)?;
        if scale.len() != obs.len() {
            return Err(HmmError::DimensionMismatch {
                what: "scale vector".into(),
                expected: obs.len(),
                actual: scale.len(),
            });
        }
        let m = self.num_states();
        let t_len = obs.len();
        let mut beta_hat = vec![vec![0.0; m]; t_len];
        for i in 0..m {
            beta_hat[t_len - 1][i] = 1.0 / scale[t_len - 1];
        }
        for t in (0..t_len - 1).rev() {
            for i in 0..m {
                let mut acc = 0.0;
                for j in 0..m {
                    acc += self.a[(i, j)] * self.b[(j, obs[t + 1])] * beta_hat[t + 1][j];
                }
                beta_hat[t][i] = acc / scale[t];
            }
        }
        Ok(beta_hat)
    }

    /// Log-likelihood `ln Pr{O | λ}` of an observation sequence.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Hmm::forward`].
    pub fn log_likelihood(&self, obs: &[usize]) -> Result<f64> {
        Ok(self.forward(obs)?.log_likelihood())
    }

    /// [`Hmm::log_likelihood`] with caller-provided scratch buffers:
    /// after warm-up no allocation happens, which matters when scoring
    /// thousands of sliding windows against the same model. The result
    /// is bit-identical to the allocating path (same operation order).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Hmm::forward`].
    pub fn log_likelihood_into(&self, obs: &[usize], scratch: &mut ForwardScratch) -> Result<f64> {
        self.check_symbols(obs)?;
        let m = self.num_states();
        let alpha = &mut scratch.alpha;
        let next = &mut scratch.next;
        alpha.clear();
        alpha.extend((0..m).map(|i| self.pi[i] * self.b[(i, obs[0])]));
        let c0: f64 = alpha.iter().sum();
        if c0 <= 0.0 {
            return Err(HmmError::ImpossibleSequence { time: 0 });
        }
        alpha.iter_mut().for_each(|x| *x /= c0);
        let mut ll = c0.ln();
        for (t, &o) in obs.iter().enumerate().skip(1) {
            next.clear();
            next.resize(m, 0.0);
            for (j, nx) in next.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (i, &ai) in alpha.iter().enumerate() {
                    acc += ai * self.a[(i, j)];
                }
                *nx = acc * self.b[(j, o)];
            }
            let c: f64 = next.iter().sum();
            if c <= 0.0 {
                return Err(HmmError::ImpossibleSequence { time: t });
            }
            next.iter_mut().for_each(|x| *x /= c);
            ll += c.ln();
            std::mem::swap(alpha, next);
        }
        Ok(ll)
    }

    /// Posterior state marginals `γ[t][i] = Pr{s_t = S_i | O, λ}`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Hmm::forward`].
    pub fn posteriors(&self, obs: &[usize]) -> Result<Vec<Vec<f64>>> {
        let fwd = self.forward(obs)?;
        let beta_hat = self.backward(obs, &fwd.scale)?;
        let m = self.num_states();
        let mut gamma = vec![vec![0.0; m]; obs.len()];
        for t in 0..obs.len() {
            let mut norm = 0.0;
            for i in 0..m {
                gamma[t][i] = fwd.alpha_hat[t][i] * beta_hat[t][i];
                norm += gamma[t][i];
            }
            // alpha_hat * beta_hat is proportional to the posterior;
            // normalize to remove the residual scaling constant.
            for g in &mut gamma[t] {
                *g /= norm;
            }
        }
        Ok(gamma)
    }

    /// Viterbi decoding: the single most probable hidden state path.
    ///
    /// Works in log space so it cannot underflow.
    ///
    /// # Errors
    ///
    /// - Input-validation errors as for [`Hmm::forward`].
    /// - [`HmmError::ImpossibleSequence`] if no path has positive
    ///   probability.
    pub fn viterbi(&self, obs: &[usize]) -> Result<ViterbiPath> {
        self.check_symbols(obs)?;
        let m = self.num_states();
        let t_len = obs.len();
        let ln = |x: f64| if x > 0.0 { x.ln() } else { f64::NEG_INFINITY };

        let mut delta: Vec<f64> = (0..m)
            .map(|i| ln(self.pi[i]) + ln(self.b[(i, obs[0])]))
            .collect();
        let mut psi = vec![vec![0usize; m]; t_len];

        for t in 1..t_len {
            let mut next = vec![f64::NEG_INFINITY; m];
            for j in 0..m {
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0usize;
                for i in 0..m {
                    let v = delta[i] + ln(self.a[(i, j)]);
                    if v > best {
                        best = v;
                        arg = i;
                    }
                }
                next[j] = best + ln(self.b[(j, obs[t])]);
                psi[t][j] = arg;
            }
            delta = next;
        }
        let (mut state, &log_prob) = delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            // sentinet-allow(expect-used): models are constructed with at least one state
            .expect("model has at least one state");
        if log_prob == f64::NEG_INFINITY {
            return Err(HmmError::ImpossibleSequence { time: t_len - 1 });
        }
        let mut states = vec![0usize; t_len];
        states[t_len - 1] = state;
        for t in (1..t_len).rev() {
            state = psi[t][state];
            states[t - 1] = state;
        }
        Ok(ViterbiPath { states, log_prob })
    }

    /// Samples a `(states, observations)` trajectory of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::EmptySequence`] if `len == 0`.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        len: usize,
        rng: &mut R,
    ) -> Result<(Vec<usize>, Vec<usize>)> {
        if len == 0 {
            return Err(HmmError::EmptySequence);
        }
        fn draw<R: Rng + ?Sized>(dist: &[f64], rng: &mut R) -> usize {
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            for (i, &p) in dist.iter().enumerate() {
                acc += p;
                if u < acc {
                    return i;
                }
            }
            dist.len() - 1
        }
        let mut states = Vec::with_capacity(len);
        let mut obs = Vec::with_capacity(len);
        let mut s = draw(&self.pi, rng);
        for _ in 0..len {
            states.push(s);
            obs.push(draw(self.b.row(s), rng));
            s = draw(self.a.row(s), rng);
        }
        Ok((states, obs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Hmm {
        let a = StochasticMatrix::from_rows(vec![vec![0.7, 0.3], vec![0.4, 0.6]]).unwrap();
        let b = StochasticMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.2, 0.8]]).unwrap();
        Hmm::new(a, b, vec![0.6, 0.4]).unwrap()
    }

    /// Brute-force Pr{O|λ} by enumerating all state paths.
    fn brute_force_likelihood(h: &Hmm, obs: &[usize]) -> f64 {
        let m = h.num_states();
        let t = obs.len();
        let mut total = 0.0;
        let paths = m.pow(t as u32);
        for code in 0..paths {
            let mut c = code;
            let mut path = Vec::with_capacity(t);
            for _ in 0..t {
                path.push(c % m);
                c /= m;
            }
            let mut p = h.initial()[path[0]] * h.observation()[(path[0], obs[0])];
            for i in 1..t {
                p *= h.transition()[(path[i - 1], path[i])] * h.observation()[(path[i], obs[i])];
            }
            total += p;
        }
        total
    }

    #[test]
    fn forward_matches_brute_force() {
        let h = toy();
        for obs in [vec![0], vec![0, 1], vec![1, 1, 0], vec![0, 1, 0, 1, 1]] {
            let ll = h.log_likelihood(&obs).unwrap();
            let bf = brute_force_likelihood(&h, &obs).ln();
            assert!(
                (ll - bf).abs() < 1e-10,
                "obs {obs:?}: scaled {ll} vs brute {bf}"
            );
        }
    }

    #[test]
    fn scratch_forward_matches_allocating_forward() {
        let h = toy();
        let mut scratch = ForwardScratch::new();
        for obs in [vec![0], vec![0, 1], vec![1, 1, 0], vec![0, 1, 0, 1, 1]] {
            let alloc = h.log_likelihood(&obs).unwrap();
            let reused = h.log_likelihood_into(&obs, &mut scratch).unwrap();
            assert_eq!(alloc.to_bits(), reused.to_bits(), "obs {obs:?}");
        }
        // Error paths behave the same.
        assert!(matches!(
            h.log_likelihood_into(&[], &mut scratch),
            Err(HmmError::EmptySequence)
        ));
        assert!(matches!(
            h.log_likelihood_into(&[9], &mut scratch),
            Err(HmmError::SymbolOutOfRange { .. })
        ));
    }

    #[test]
    fn backward_consistency() {
        // Likelihood computed from beta at t=0 must match forward.
        let h = toy();
        let obs = vec![0, 1, 1, 0, 1];
        let fwd = h.forward(&obs).unwrap();
        let beta_hat = h.backward(&obs, &fwd.scale).unwrap();
        // Pr{O} = Σ_i π_i b_i(o_0) β_0(i); with scaling the identity
        // becomes Σ_i π_i b_i(o_0) β̂_0(i) = 1 / c_0 · ... — easier to
        // verify via posterior normalization below.
        let mut s = 0.0;
        for i in 0..h.num_states() {
            s += h.initial()[i] * h.observation()[(i, obs[0])] * beta_hat[0][i];
        }
        // With Rabiner scaling, this sum equals exactly 1.
        assert!((s - 1.0).abs() < 1e-10, "sum {s}");
    }

    #[test]
    fn posteriors_sum_to_one() {
        let h = toy();
        let obs = vec![0, 1, 0, 0, 1, 1];
        let gamma = h.posteriors(&obs).unwrap();
        for row in gamma {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn viterbi_path_is_most_likely() {
        let h = toy();
        let obs = vec![0, 0, 1];
        let vit = h.viterbi(&obs).unwrap();
        // Enumerate all paths, check Viterbi found the argmax.
        let m = h.num_states();
        let mut best = f64::NEG_INFINITY;
        let mut best_path = vec![];
        for code in 0..m.pow(3) {
            let mut c = code;
            let path: Vec<usize> = (0..3)
                .map(|_| {
                    let s = c % m;
                    c /= m;
                    s
                })
                .collect();
            let mut p = h.initial()[path[0]] * h.observation()[(path[0], obs[0])];
            for i in 1..3 {
                p *= h.transition()[(path[i - 1], path[i])] * h.observation()[(path[i], obs[i])];
            }
            if p.ln() > best {
                best = p.ln();
                best_path = path;
            }
        }
        assert_eq!(vit.states, best_path);
        assert!((vit.log_prob - best).abs() < 1e-10);
    }

    #[test]
    fn viterbi_log_prob_below_total() {
        let h = toy();
        let obs = vec![0, 1, 1, 0];
        let vit = h.viterbi(&obs).unwrap();
        let ll = h.log_likelihood(&obs).unwrap();
        assert!(vit.log_prob <= ll + 1e-12);
    }

    #[test]
    fn impossible_sequence_detected() {
        let a = StochasticMatrix::identity(2).unwrap();
        let b = StochasticMatrix::from_rows(vec![vec![1.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let h = Hmm::new(a, b, vec![0.5, 0.5]).unwrap();
        // Symbol 1 can never be emitted.
        assert!(matches!(
            h.log_likelihood(&[0, 1]),
            Err(HmmError::ImpossibleSequence { time: 1 })
        ));
        assert!(matches!(
            h.viterbi(&[1]),
            Err(HmmError::ImpossibleSequence { .. })
        ));
    }

    #[test]
    fn rejects_empty_and_out_of_range() {
        let h = toy();
        assert_eq!(h.log_likelihood(&[]).unwrap_err(), HmmError::EmptySequence);
        assert!(matches!(
            h.log_likelihood(&[5]),
            Err(HmmError::SymbolOutOfRange { .. })
        ));
    }

    #[test]
    fn new_rejects_mismatched_dims() {
        let a = StochasticMatrix::identity(2).unwrap();
        let b = StochasticMatrix::uniform(3, 2).unwrap();
        assert!(matches!(
            Hmm::new(a.clone(), b, vec![0.5, 0.5]),
            Err(HmmError::DimensionMismatch { .. })
        ));
        let b2 = StochasticMatrix::uniform(2, 2).unwrap();
        assert!(matches!(
            Hmm::new(a.clone(), b2.clone(), vec![1.0]),
            Err(HmmError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Hmm::new(a, b2, vec![0.7, 0.7]),
            Err(HmmError::NotStochastic { .. })
        ));
    }

    #[test]
    fn sample_respects_support() {
        let h = toy();
        let mut rng = StdRng::seed_from_u64(7);
        let (states, obs) = h.sample(500, &mut rng).unwrap();
        assert_eq!(states.len(), 500);
        assert!(states.iter().all(|&s| s < 2));
        assert!(obs.iter().all(|&o| o < 2));
        // State 0 emits symbol 0 with prob 0.9 — check gross statistics.
        let zeros = states
            .iter()
            .zip(&obs)
            .filter(|&(&s, &o)| s == 0 && o == 0)
            .count() as f64;
        let s0 = states.iter().filter(|&&s| s == 0).count() as f64;
        assert!(
            (zeros / s0 - 0.9).abs() < 0.08,
            "emission freq {}",
            zeros / s0
        );
    }

    #[test]
    fn sample_zero_len_is_error() {
        let h = toy();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(h.sample(0, &mut rng).unwrap_err(), HmmError::EmptySequence);
    }

    #[test]
    fn random_model_is_valid() {
        let mut rng = StdRng::seed_from_u64(42);
        let h = Hmm::random(4, 6, &mut rng).unwrap();
        h.transition().check(1e-9).unwrap();
        h.observation().check(1e-9).unwrap();
        assert_eq!(h.num_states(), 4);
        assert_eq!(h.num_symbols(), 6);
    }

    #[test]
    fn uniform_model_likelihood_is_uniform() {
        let h = Hmm::uniform(3, 4).unwrap();
        // Under uniform B, any sequence of length T has Pr = (1/4)^T.
        let ll = h.log_likelihood(&[0, 1, 2, 3]).unwrap();
        assert!((ll - 4.0 * (0.25f64).ln()).abs() < 1e-10);
    }
}
