//! The paper's on-line HMM estimator (§3.2).
//!
//! At the end of each observation window the collector node knows an
//! estimate of the current hidden state (the *correct* environment state
//! `c_i`) and the current observation symbol (either the observable
//! state `o_i` for `M_CO` or the error/attack state `e_i` for `M_CE`).
//! The estimator then performs exponential updates with learning factors
//! `β` (transitions) and `γ` (observations):
//!
//! - if the hidden state changed from `i` to `j`:
//!   `a_ik ← (1 − β)·a_ik + β·δ_kj` for all `k`;
//! - `b_jk ← (1 − γ)·b_jk + γ·δ_kl` for all `k`, where `l` is the
//!   current symbol and `j` the current hidden state.
//!
//! Both updates are convex combinations within the probability simplex,
//! so **A** and **B** remain stochastic — the property the paper points
//! out ("it is easy to show that if A and B are probability
//! distributions, then they remain so").
//!
//! Matrices are initialized to (rectangular) identities as the paper
//! recommends, and the estimator can *grow* when the online clustering
//! module spawns new model states.

use crate::error::{HmmError, Result};
use crate::hmm::Hmm;
use crate::matrix::StochasticMatrix;
use serde::{Deserialize, Serialize};

/// Online estimator for an HMM driven by (hidden state, symbol) pairs.
///
/// # Examples
///
/// ```
/// use sentinet_hmm::OnlineHmmEstimator;
///
/// # fn main() -> Result<(), sentinet_hmm::HmmError> {
/// let mut est = OnlineHmmEstimator::new(3, 3, 0.9, 0.9)?;
/// // Environment moves 0 → 1 and emits its own state each time.
/// est.observe(0, 0)?;
/// est.observe(1, 1)?;
/// est.observe(1, 1)?;
/// let b = est.observation();
/// assert!(b[(1, 1)] > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineHmmEstimator {
    a: StochasticMatrix,
    b: StochasticMatrix,
    beta: f64,
    gamma: f64,
    prev_state: Option<usize>,
    /// Visit counts per hidden state, used for the empirical initial
    /// distribution and for pruning rarely visited states downstream.
    state_counts: Vec<u64>,
    /// Emission counts per (state), used to know which rows of `B` have
    /// actually been updated (identity rows are priors, not evidence).
    obs_counts: Vec<u64>,
    steps: u64,
    /// Bumped on every update that can change `A`/`B`; see
    /// [`OnlineHmmEstimator::generation`].
    generation: u64,
}

impl OnlineHmmEstimator {
    /// Creates an estimator over `num_states` hidden states and
    /// `num_symbols` observation symbols with learning factors
    /// `beta` (transitions) and `gamma` (observations).
    ///
    /// `A` is initialized to the identity; `B` to a rectangular identity
    /// (`num_symbols` may exceed `num_states`, e.g. to host the ⊥ column
    /// of an error track).
    ///
    /// # Errors
    ///
    /// - [`HmmError::EmptyModel`] if either dimension is zero.
    /// - [`HmmError::InvalidParameter`] if `beta` or `gamma` is outside
    ///   the open interval `(0, 1)`.
    pub fn new(num_states: usize, num_symbols: usize, beta: f64, gamma: f64) -> Result<Self> {
        if !(beta > 0.0 && beta < 1.0) {
            return Err(HmmError::InvalidParameter {
                name: "beta",
                value: beta,
                range: "(0, 1)",
            });
        }
        if !(gamma > 0.0 && gamma < 1.0) {
            return Err(HmmError::InvalidParameter {
                name: "gamma",
                value: gamma,
                range: "(0, 1)",
            });
        }
        Ok(Self {
            a: StochasticMatrix::identity(num_states)?,
            b: StochasticMatrix::diagonal_like(num_states, num_symbols)?,
            beta,
            gamma,
            prev_state: None,
            state_counts: vec![0; num_states],
            obs_counts: vec![0; num_states],
            steps: 0,
            generation: 0,
        })
    }

    /// Creates an estimator from explicit initial matrices, e.g. when
    /// the observation symbols are offset from the hidden states (the
    /// pipeline's `M_CE` keeps its ⊥ symbol in column 0, so hidden
    /// state `i`'s identity prior lives in column `i + 1`).
    ///
    /// # Errors
    ///
    /// - [`HmmError::DimensionMismatch`] if `a` is not square or `b`'s
    ///   rows disagree with `a`.
    /// - [`HmmError::InvalidParameter`] for out-of-range learning
    ///   factors.
    pub fn with_initial(
        a: StochasticMatrix,
        b: StochasticMatrix,
        beta: f64,
        gamma: f64,
    ) -> Result<Self> {
        if !(beta > 0.0 && beta < 1.0) {
            return Err(HmmError::InvalidParameter {
                name: "beta",
                value: beta,
                range: "(0, 1)",
            });
        }
        if !(gamma > 0.0 && gamma < 1.0) {
            return Err(HmmError::InvalidParameter {
                name: "gamma",
                value: gamma,
                range: "(0, 1)",
            });
        }
        let m = a.num_rows();
        if a.num_cols() != m {
            return Err(HmmError::DimensionMismatch {
                what: "transition matrix columns".into(),
                expected: m,
                actual: a.num_cols(),
            });
        }
        if b.num_rows() != m {
            return Err(HmmError::DimensionMismatch {
                what: "observation matrix rows".into(),
                expected: m,
                actual: b.num_rows(),
            });
        }
        Ok(Self {
            state_counts: vec![0; m],
            obs_counts: vec![0; m],
            a,
            b,
            beta,
            gamma,
            prev_state: None,
            steps: 0,
            generation: 0,
        })
    }

    /// Update generation: incremented by every [`observe`] and by every
    /// [`grow`] that actually changes a dimension. Results derived from
    /// `A`/`B` (Gram matrices, structural tests) stay valid while the
    /// generation is unchanged, so it serves as a cheap cache key.
    ///
    /// [`observe`]: OnlineHmmEstimator::observe
    /// [`grow`]: OnlineHmmEstimator::grow
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of hidden states currently tracked.
    pub fn num_states(&self) -> usize {
        self.a.num_rows()
    }

    /// Number of observation symbols currently tracked.
    pub fn num_symbols(&self) -> usize {
        self.b.num_cols()
    }

    /// Total number of `observe` calls so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Visit counts per hidden state.
    pub fn state_counts(&self) -> &[u64] {
        &self.state_counts
    }

    /// Number of times row `i` of `B` received an update. Rows with a
    /// zero count still hold their identity prior and carry no evidence.
    pub fn observation_evidence(&self) -> &[u64] {
        &self.obs_counts
    }

    /// Feeds one time step: the estimated hidden state and the observed
    /// symbol for the current window.
    ///
    /// # Errors
    ///
    /// - [`HmmError::StateOutOfRange`] / [`HmmError::SymbolOutOfRange`]
    ///   for indices beyond the current dimensions.
    pub fn observe(&mut self, state: usize, symbol: usize) -> Result<()> {
        if state >= self.num_states() {
            return Err(HmmError::StateOutOfRange {
                state,
                num_states: self.num_states(),
            });
        }
        if symbol >= self.num_symbols() {
            return Err(HmmError::SymbolOutOfRange {
                symbol,
                num_symbols: self.num_symbols(),
            });
        }
        if let Some(prev) = self.prev_state {
            if prev != state {
                self.a.reinforce(prev, state, self.beta)?;
            }
        }
        self.b.reinforce(state, symbol, self.gamma)?;
        self.state_counts[state] += 1;
        self.obs_counts[state] += 1;
        self.prev_state = Some(state);
        self.steps += 1;
        self.generation += 1;
        Ok(())
    }

    /// Grows the estimator to `num_states`/`num_symbols` (monotone; a
    /// smaller request is a no-op in that dimension). New transition
    /// rows/columns start as identity; new observation rows emit the
    /// matching new symbol if one was added, otherwise uniformly.
    pub fn grow(&mut self, num_states: usize, num_symbols: usize) {
        let add_s = num_states.saturating_sub(self.num_states());
        let add_y = num_symbols.saturating_sub(self.num_symbols());
        if add_s > 0 {
            self.a.grow(add_s, add_s);
            self.state_counts.extend(std::iter::repeat_n(0, add_s));
            self.obs_counts.extend(std::iter::repeat_n(0, add_s));
        }
        if add_s > 0 || add_y > 0 {
            self.b.grow(add_s, add_y);
            self.generation += 1;
        }
    }

    /// The current transition matrix estimate **A**.
    pub fn transition(&self) -> &StochasticMatrix {
        &self.a
    }

    /// The current observation matrix estimate **B**.
    pub fn observation(&self) -> &StochasticMatrix {
        &self.b
    }

    /// Empirical initial/occupancy distribution over hidden states
    /// (uniform if nothing has been observed yet).
    pub fn occupancy(&self) -> Vec<f64> {
        let total: u64 = self.state_counts.iter().sum();
        if total == 0 {
            vec![1.0 / self.num_states() as f64; self.num_states()]
        } else {
            self.state_counts
                .iter()
                .map(|&c| c as f64 / total as f64)
                .collect()
        }
    }

    /// Builds a full [`Hmm`] snapshot from the current estimates, using
    /// the empirical occupancy as the initial distribution.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from [`Hmm::new`]; cannot occur for
    /// an estimator that has enforced its invariants.
    pub fn to_hmm(&self) -> Result<Hmm> {
        Hmm::new(self.a.clone(), self.b.clone(), self.occupancy())
    }

    /// Captures the complete estimator state as plain data for
    /// checkpointing. [`OnlineHmmEstimator::import_state`] rebuilds an
    /// estimator that is `==` to this one (all floats verbatim, the
    /// generation counter included, so memo caches keyed on
    /// [`OnlineHmmEstimator::generation`] stay coherent across a
    /// restore).
    pub fn export_state(&self) -> EstimatorState {
        EstimatorState {
            a: self.a.iter_rows().map(<[f64]>::to_vec).collect(),
            b: self.b.iter_rows().map(<[f64]>::to_vec).collect(),
            beta: self.beta,
            gamma: self.gamma,
            prev_state: self.prev_state,
            state_counts: self.state_counts.clone(),
            obs_counts: self.obs_counts.clone(),
            steps: self.steps,
            generation: self.generation,
        }
    }

    /// Rebuilds an estimator from an exported state, re-validating the
    /// matrix invariants (a corrupt checkpoint must fail loudly, not
    /// poison the estimates).
    ///
    /// # Errors
    ///
    /// - Matrix construction errors if the rows are not stochastic or
    ///   are ragged.
    /// - [`HmmError::DimensionMismatch`] if `b`/counts disagree with
    ///   `a`'s state count, or `prev_state` is out of range.
    /// - [`HmmError::InvalidParameter`] for out-of-range learning
    ///   factors.
    pub fn import_state(state: EstimatorState) -> Result<Self> {
        let a = StochasticMatrix::from_rows(state.a)?;
        let b = StochasticMatrix::from_rows(state.b)?;
        let mut est = Self::with_initial(a, b, state.beta, state.gamma)?;
        let m = est.num_states();
        if state.state_counts.len() != m || state.obs_counts.len() != m {
            return Err(HmmError::DimensionMismatch {
                what: "checkpoint count vectors".into(),
                expected: m,
                actual: state.state_counts.len(),
            });
        }
        if let Some(prev) = state.prev_state {
            if prev >= m {
                return Err(HmmError::StateOutOfRange {
                    state: prev,
                    num_states: m,
                });
            }
        }
        est.prev_state = state.prev_state;
        est.state_counts = state.state_counts;
        est.obs_counts = state.obs_counts;
        est.steps = state.steps;
        est.generation = state.generation;
        Ok(est)
    }
}

/// Plain-data image of an [`OnlineHmmEstimator`], produced by
/// [`OnlineHmmEstimator::export_state`] for checkpoint/restore. Matrix
/// rows are stored verbatim (row-major `Vec<Vec<f64>>`), so a
/// round-trip is bit-exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorState {
    /// Rows of the transition matrix **A** (square).
    pub a: Vec<Vec<f64>>,
    /// Rows of the observation matrix **B** (`a.len()` rows).
    pub b: Vec<Vec<f64>>,
    /// Transition learning factor β.
    pub beta: f64,
    /// Observation learning factor γ.
    pub gamma: f64,
    /// Hidden state seen at the previous step, if any.
    pub prev_state: Option<usize>,
    /// Visit counts per hidden state.
    pub state_counts: Vec<u64>,
    /// Update counts per observation row.
    pub obs_counts: Vec<u64>,
    /// Total `observe` calls.
    pub steps: u64,
    /// Update-generation counter at capture time.
    pub generation: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_factors() {
        assert!(matches!(
            OnlineHmmEstimator::new(2, 2, 0.0, 0.5),
            Err(HmmError::InvalidParameter { name: "beta", .. })
        ));
        assert!(matches!(
            OnlineHmmEstimator::new(2, 2, 0.5, 1.0),
            Err(HmmError::InvalidParameter { name: "gamma", .. })
        ));
        assert!(matches!(
            OnlineHmmEstimator::new(0, 2, 0.5, 0.5),
            Err(HmmError::EmptyModel)
        ));
    }

    #[test]
    fn starts_at_identity() {
        let est = OnlineHmmEstimator::new(3, 4, 0.9, 0.9).unwrap();
        assert_eq!(est.transition()[(1, 1)], 1.0);
        assert_eq!(est.observation()[(2, 2)], 1.0);
        assert_eq!(est.observation()[(2, 3)], 0.0);
    }

    #[test]
    fn transition_update_only_on_state_change() {
        let mut est = OnlineHmmEstimator::new(2, 2, 0.5, 0.5).unwrap();
        est.observe(0, 0).unwrap();
        est.observe(0, 0).unwrap(); // no state change: A untouched
        assert_eq!(est.transition()[(0, 0)], 1.0);
        est.observe(1, 1).unwrap(); // change 0 → 1
        assert!((est.transition()[(0, 1)] - 0.5).abs() < 1e-12);
        assert!((est.transition()[(0, 0)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn observation_update_row_is_current_state() {
        let mut est = OnlineHmmEstimator::new(2, 3, 0.9, 0.5).unwrap();
        est.observe(1, 2).unwrap();
        assert!((est.observation()[(1, 2)] - 0.5).abs() < 1e-12);
        // Row 0 untouched.
        assert_eq!(est.observation()[(0, 0)], 1.0);
    }

    #[test]
    fn repeated_observation_converges_to_one() {
        let mut est = OnlineHmmEstimator::new(2, 2, 0.9, 0.9).unwrap();
        for _ in 0..20 {
            est.observe(0, 1).unwrap();
        }
        assert!(est.observation()[(0, 1)] > 0.999);
        est.observation().check(1e-9).unwrap();
    }

    #[test]
    fn matrices_stay_stochastic_under_long_streams() {
        let mut est = OnlineHmmEstimator::new(4, 5, 0.9, 0.9).unwrap();
        for t in 0..10_000usize {
            est.observe(t % 4, (t * 7) % 5).unwrap();
        }
        est.transition().check(1e-6).unwrap();
        est.observation().check(1e-6).unwrap();
    }

    #[test]
    fn grow_preserves_and_extends() {
        let mut est = OnlineHmmEstimator::new(2, 3, 0.9, 0.9).unwrap();
        est.observe(0, 0).unwrap();
        est.observe(1, 2).unwrap();
        let b01 = est.observation()[(1, 2)];
        est.grow(3, 4);
        assert_eq!(est.num_states(), 3);
        assert_eq!(est.num_symbols(), 4);
        assert_eq!(est.observation()[(1, 2)], b01);
        // New state row emits the new symbol.
        assert_eq!(est.observation()[(2, 3)], 1.0);
        est.observe(2, 3).unwrap();
        est.transition().check(1e-9).unwrap();
        est.observation().check(1e-9).unwrap();
    }

    #[test]
    fn grow_is_monotone_noop_when_smaller() {
        let mut est = OnlineHmmEstimator::new(3, 3, 0.9, 0.9).unwrap();
        est.grow(2, 2);
        assert_eq!(est.num_states(), 3);
        assert_eq!(est.num_symbols(), 3);
    }

    #[test]
    fn occupancy_tracks_visits() {
        let mut est = OnlineHmmEstimator::new(2, 2, 0.9, 0.9).unwrap();
        assert_eq!(est.occupancy(), vec![0.5, 0.5]);
        est.observe(0, 0).unwrap();
        est.observe(0, 0).unwrap();
        est.observe(1, 1).unwrap();
        let occ = est.occupancy();
        assert!((occ[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(est.steps(), 3);
    }

    #[test]
    fn to_hmm_is_valid_model() {
        let mut est = OnlineHmmEstimator::new(2, 2, 0.9, 0.9).unwrap();
        est.observe(0, 0).unwrap();
        est.observe(1, 1).unwrap();
        let hmm = est.to_hmm().unwrap();
        assert!(hmm.log_likelihood(&[0, 1]).is_ok());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut est = OnlineHmmEstimator::new(2, 2, 0.9, 0.9).unwrap();
        assert!(matches!(
            est.observe(2, 0),
            Err(HmmError::StateOutOfRange { .. })
        ));
        assert!(matches!(
            est.observe(0, 2),
            Err(HmmError::SymbolOutOfRange { .. })
        ));
    }

    #[test]
    fn generation_tracks_updates() {
        let mut est = OnlineHmmEstimator::new(2, 2, 0.9, 0.9).unwrap();
        assert_eq!(est.generation(), 0);
        est.observe(0, 0).unwrap();
        assert_eq!(est.generation(), 1);
        est.grow(2, 2); // no-op: dimensions unchanged
        assert_eq!(est.generation(), 1);
        est.grow(3, 3);
        assert_eq!(est.generation(), 2);
    }

    #[test]
    fn evidence_counts_distinguish_prior_rows() {
        let mut est = OnlineHmmEstimator::new(3, 3, 0.9, 0.9).unwrap();
        est.observe(1, 1).unwrap();
        assert_eq!(est.observation_evidence(), &[0, 1, 0]);
    }

    #[test]
    fn export_import_round_trip_is_exact() {
        let mut est = OnlineHmmEstimator::new(3, 4, 0.9, 0.7).unwrap();
        for t in 0..37usize {
            est.observe(t % 3, (t * 5) % 4).unwrap();
        }
        est.grow(4, 5);
        let restored = OnlineHmmEstimator::import_state(est.export_state()).unwrap();
        assert_eq!(restored, est);
        assert_eq!(restored.generation(), est.generation());
        // Futures must stay identical, not just the snapshot instant.
        let mut a = est;
        let mut b = restored;
        for t in 0..11usize {
            a.observe(t % 4, t % 5).unwrap();
            b.observe(t % 4, t % 5).unwrap();
        }
        assert_eq!(a, b);
    }

    #[test]
    fn import_rejects_corrupt_checkpoints() {
        let est = OnlineHmmEstimator::new(2, 2, 0.9, 0.9).unwrap();
        let mut bad = est.export_state();
        bad.a[0][0] = 0.7; // row no longer sums to 1
        assert!(OnlineHmmEstimator::import_state(bad).is_err());

        let mut bad = est.export_state();
        bad.state_counts.push(0);
        assert!(matches!(
            OnlineHmmEstimator::import_state(bad),
            Err(HmmError::DimensionMismatch { .. })
        ));

        let mut bad = est.export_state();
        bad.prev_state = Some(9);
        assert!(matches!(
            OnlineHmmEstimator::import_state(bad),
            Err(HmmError::StateOutOfRange { .. })
        ));
    }
}
