//! Error types for the `sentinet-hmm` crate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by HMM and Markov-chain construction and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum HmmError {
    /// A probability vector or matrix row does not sum to one (within
    /// tolerance) or contains entries outside `[0, 1]`.
    NotStochastic {
        /// Human-readable location of the offending distribution, e.g.
        /// `"transition row 3"`.
        what: String,
        /// The actual sum of the distribution.
        sum: f64,
    },
    /// Two objects that must agree in dimension do not.
    DimensionMismatch {
        /// What was being checked.
        what: String,
        /// Dimension expected by the receiver.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// An observation symbol index is out of range for the model.
    SymbolOutOfRange {
        /// The offending symbol.
        symbol: usize,
        /// Number of symbols in the model.
        num_symbols: usize,
    },
    /// A state index is out of range for the model.
    StateOutOfRange {
        /// The offending state.
        state: usize,
        /// Number of states in the model.
        num_states: usize,
    },
    /// An operation that requires a non-empty observation sequence was
    /// given an empty one.
    EmptySequence,
    /// A model with zero states or zero symbols was requested.
    EmptyModel,
    /// The forward pass underflowed: the observation sequence has zero
    /// probability under the model (even with scaling).
    ImpossibleSequence {
        /// Time step at which all forward mass vanished.
        time: usize,
    },
    /// A learning factor or tolerance parameter is outside its valid
    /// open interval.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Supplied value.
        value: f64,
        /// Description of the valid range, e.g. `"(0, 1)"`.
        range: &'static str,
    },
}

impl fmt::Display for HmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmmError::NotStochastic { what, sum } => {
                write!(f, "{what} is not a probability distribution (sum = {sum})")
            }
            HmmError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {what}: expected {expected}, got {actual}"
            ),
            HmmError::SymbolOutOfRange {
                symbol,
                num_symbols,
            } => write!(
                f,
                "observation symbol {symbol} out of range for model with {num_symbols} symbols"
            ),
            HmmError::StateOutOfRange { state, num_states } => {
                write!(
                    f,
                    "state {state} out of range for model with {num_states} states"
                )
            }
            HmmError::EmptySequence => write!(f, "observation sequence is empty"),
            HmmError::EmptyModel => write!(f, "model must have at least one state and one symbol"),
            HmmError::ImpossibleSequence { time } => {
                write!(
                    f,
                    "observation sequence has zero probability under the model at time {time}"
                )
            }
            HmmError::InvalidParameter { name, value, range } => {
                write!(f, "parameter {name} = {value} outside valid range {range}")
            }
        }
    }
}

impl StdError for HmmError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, HmmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_not_stochastic() {
        let e = HmmError::NotStochastic {
            what: "transition row 2".into(),
            sum: 0.5,
        };
        assert_eq!(
            e.to_string(),
            "transition row 2 is not a probability distribution (sum = 0.5)"
        );
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = HmmError::DimensionMismatch {
            what: "observation row".into(),
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 4, got 3"));
    }

    #[test]
    fn display_symbol_out_of_range() {
        let e = HmmError::SymbolOutOfRange {
            symbol: 7,
            num_symbols: 5,
        };
        assert!(e.to_string().contains("symbol 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HmmError>();
    }

    #[test]
    fn display_invalid_parameter() {
        let e = HmmError::InvalidParameter {
            name: "alpha",
            value: 1.5,
            range: "(0, 1)",
        };
        assert!(e.to_string().contains("alpha = 1.5"));
    }
}
