//! Model selection: choosing the number of hidden states.
//!
//! §2 criticizes the Warrender–Forrest baseline because "the choice of
//! the hidden states of the HMM is arbitrary, difficult to justify".
//! Where no redundancy side-channel fixes the state set (as the paper's
//! clustering does), the principled fallback is information-criterion
//! selection: train candidates with [`baum_welch`] and pick the one
//! minimizing the Bayesian Information Criterion
//!
//! `BIC(k) = −2·ln L + p(k)·ln n`,  with
//! `p(k) = k(k−1) + k(N−1) + (k−1)` free parameters
//! (transition rows, emission rows, initial distribution).

use crate::baum_welch::{baum_welch, BaumWelchConfig, TrainedHmm};
use crate::error::{HmmError, Result};
use crate::hmm::Hmm;
use rand::Rng;

/// Score sheet for one candidate state count.
#[derive(Debug, Clone)]
pub struct CandidateScore {
    /// Number of hidden states.
    pub num_states: usize,
    /// Total training log-likelihood of the best restart.
    pub log_likelihood: f64,
    /// Bayesian Information Criterion (lower is better).
    pub bic: f64,
}

/// Result of [`select_num_states`].
#[derive(Debug, Clone)]
pub struct ModelSelection {
    /// The winning trained model.
    pub best: TrainedHmm,
    /// Its state count.
    pub best_num_states: usize,
    /// All candidate scores, in the order given.
    pub scores: Vec<CandidateScore>,
}

/// Number of free parameters of a `k`-state, `n`-symbol discrete HMM.
pub fn num_free_parameters(num_states: usize, num_symbols: usize) -> usize {
    num_states * (num_states - 1) + num_states * (num_symbols - 1) + (num_states - 1)
}

/// Trains each candidate state count (`restarts` random initializations
/// each, keeping the best) and returns the BIC winner.
///
/// # Errors
///
/// - [`HmmError::EmptyModel`] if `candidates` is empty or contains 0,
///   or if `num_symbols` is 0 or `restarts` is 0.
/// - Propagates [`baum_welch`] errors (empty sequences, bad symbols).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sentinet_hmm::selection::select_num_states;
/// use sentinet_hmm::BaumWelchConfig;
///
/// # fn main() -> Result<(), sentinet_hmm::HmmError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// // Strongly 2-phase data.
/// let seq: Vec<usize> = (0..240).map(|t| (t / 40) % 2).collect();
/// let sel = select_num_states(&[seq], 2, &[1, 2, 3], 2, &BaumWelchConfig::default(), &mut rng)?;
/// assert_eq!(sel.best_num_states, 2);
/// # Ok(())
/// # }
/// ```
pub fn select_num_states<R: Rng + ?Sized>(
    sequences: &[Vec<usize>],
    num_symbols: usize,
    candidates: &[usize],
    restarts: usize,
    config: &BaumWelchConfig,
    rng: &mut R,
) -> Result<ModelSelection> {
    if candidates.is_empty() || candidates.contains(&0) || num_symbols == 0 || restarts == 0 {
        return Err(HmmError::EmptyModel);
    }
    let n_obs: usize = sequences.iter().map(Vec::len).sum();
    if n_obs == 0 {
        return Err(HmmError::EmptySequence);
    }

    let mut scores = Vec::with_capacity(candidates.len());
    let mut best: Option<(f64, usize, TrainedHmm)> = None;
    for &k in candidates {
        let mut best_k: Option<(f64, TrainedHmm)> = None;
        for _ in 0..restarts {
            let init = Hmm::random(k, num_symbols, rng)?;
            let trained = baum_welch(&init, sequences, config)?;
            let ll: f64 = sequences
                .iter()
                .map(|s| trained.hmm.log_likelihood(s).unwrap_or(f64::NEG_INFINITY))
                .sum();
            if best_k.as_ref().map(|(b, _)| ll > *b).unwrap_or(true) {
                best_k = Some((ll, trained));
            }
        }
        // sentinet-allow(expect-used): restarts >= 1 is validated at entry
        let (ll, trained) = best_k.expect("restarts >= 1");
        let p = num_free_parameters(k, num_symbols) as f64;
        let bic = -2.0 * ll + p * (n_obs as f64).ln();
        scores.push(CandidateScore {
            num_states: k,
            log_likelihood: ll,
            bic,
        });
        if best.as_ref().map(|(b, _, _)| bic < *b).unwrap_or(true) {
            best = Some((bic, k, trained));
        }
    }
    // sentinet-allow(expect-used): at least one candidate is trained per restart
    let (_, best_num_states, best) = best.expect("candidates non-empty");
    Ok(ModelSelection {
        best,
        best_num_states,
        scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::StochasticMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn free_parameter_count() {
        // 2 states, 3 symbols: 2·1 + 2·2 + 1 = 7.
        assert_eq!(num_free_parameters(2, 3), 7);
        assert_eq!(num_free_parameters(1, 4), 3);
    }

    #[test]
    fn picks_two_states_for_two_phase_data() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = StochasticMatrix::from_rows(vec![vec![0.95, 0.05], vec![0.05, 0.95]]).unwrap();
        let b = StochasticMatrix::from_rows(vec![vec![0.95, 0.05], vec![0.05, 0.95]]).unwrap();
        let truth = Hmm::new(a, b, vec![0.5, 0.5]).unwrap();
        let seqs: Vec<Vec<usize>> = (0..3)
            .map(|_| truth.sample(300, &mut rng).unwrap().1)
            .collect();
        let sel = select_num_states(
            &seqs,
            2,
            &[1, 2, 4],
            3,
            &BaumWelchConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel.best_num_states, 2, "{:?}", sel.scores);
        // BIC must actually penalize the 4-state model relative to 2.
        let bic = |k: usize| sel.scores.iter().find(|s| s.num_states == k).unwrap().bic;
        assert!(bic(2) < bic(1));
        assert!(bic(2) < bic(4));
    }

    #[test]
    fn picks_one_state_for_iid_data() {
        let mut rng = StdRng::seed_from_u64(9);
        // Uniform iid symbols: no hidden structure at all.
        let seqs: Vec<Vec<usize>> = (0..3)
            .map(|_| (0..200).map(|_| rng.gen_range(0..3usize)).collect())
            .collect();
        let sel = select_num_states(
            &seqs,
            3,
            &[1, 2, 3],
            3,
            &BaumWelchConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel.best_num_states, 1, "{:?}", sel.scores);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = BaumWelchConfig::default();
        assert!(select_num_states(&[vec![0, 1]], 2, &[], 1, &cfg, &mut rng).is_err());
        assert!(select_num_states(&[vec![0, 1]], 2, &[0, 1], 1, &cfg, &mut rng).is_err());
        assert!(select_num_states(&[vec![0, 1]], 2, &[1], 0, &cfg, &mut rng).is_err());
        assert!(select_num_states(&[], 2, &[1], 1, &cfg, &mut rng).is_err());
    }

    #[test]
    fn scores_cover_every_candidate() {
        let mut rng = StdRng::seed_from_u64(2);
        let seq: Vec<usize> = (0..100).map(|t| (t / 10) % 2).collect();
        let sel = select_num_states(
            &[seq],
            2,
            &[1, 2, 3],
            1,
            &BaumWelchConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(sel.scores.len(), 3);
        assert!(sel.scores.iter().all(|s| s.bic.is_finite()));
    }
}
