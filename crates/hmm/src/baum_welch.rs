//! Hand-rolled Baum–Welch (EM) training for discrete HMMs.
//!
//! Supports multiple observation sequences, Rabiner-style scaling, and
//! Laplace smoothing to keep re-estimated parameters strictly positive.
//! Used by the [Warrender–Forrest baseline](https://doi.org/10.1109/SECPRI.1999.766910)
//! detector in `sentinet-baselines`; the paper's own pipeline instead
//! uses the cheap online estimator in [`crate::online`], which is the
//! whole point of the paper's redundancy-based approach.

use crate::error::{HmmError, Result};
use crate::hmm::Hmm;
use crate::matrix::StochasticMatrix;

/// Configuration for [`baum_welch`] training.
#[derive(Debug, Clone, PartialEq)]
pub struct BaumWelchConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Stop when the total log-likelihood improves by less than this.
    pub tol: f64,
    /// Laplace smoothing pseudo-count added to every accumulator, keeping
    /// parameters strictly positive (required for held-out scoring).
    pub smoothing: f64,
}

impl Default for BaumWelchConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-6,
            smoothing: 1e-6,
        }
    }
}

/// Outcome of a [`baum_welch`] run.
#[derive(Debug, Clone)]
pub struct TrainedHmm {
    /// The re-estimated model.
    pub hmm: Hmm,
    /// Total log-likelihood of the training set after each iteration
    /// (monotone non-decreasing up to smoothing effects).
    pub log_likelihoods: Vec<f64>,
    /// Number of EM iterations performed.
    pub iterations: usize,
    /// Whether the tolerance criterion was met before `max_iters`.
    pub converged: bool,
}

/// Trains `init` on `sequences` with the Baum–Welch algorithm.
///
/// Each element of `sequences` is an independent observation sequence;
/// the E-step accumulates expected counts across all of them.
///
/// # Errors
///
/// - [`HmmError::EmptySequence`] if `sequences` is empty or contains an
///   empty sequence.
/// - [`HmmError::SymbolOutOfRange`] if any symbol exceeds the model.
/// - [`HmmError::ImpossibleSequence`] if a sequence has zero probability
///   under the current model and smoothing is zero.
///
/// # Examples
///
/// ```
/// use sentinet_hmm::{baum_welch, BaumWelchConfig, Hmm};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sentinet_hmm::HmmError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let truth = Hmm::random(2, 3, &mut rng)?;
/// let (_, obs) = truth.sample(200, &mut rng)?;
/// let init = Hmm::random(2, 3, &mut rng)?;
/// let trained = baum_welch(&init, std::slice::from_ref(&obs), &BaumWelchConfig::default())?;
/// assert!(trained.hmm.log_likelihood(&obs)? >= init.log_likelihood(&obs)?);
/// # Ok(())
/// # }
/// ```
pub fn baum_welch(
    init: &Hmm,
    sequences: &[Vec<usize>],
    config: &BaumWelchConfig,
) -> Result<TrainedHmm> {
    if sequences.is_empty() || sequences.iter().any(|s| s.is_empty()) {
        return Err(HmmError::EmptySequence);
    }
    let m = init.num_states();
    let n = init.num_symbols();
    let mut hmm = init.clone();
    let mut lls: Vec<f64> = Vec::new();
    let mut converged = false;
    let mut iters = 0;

    for _ in 0..config.max_iters {
        iters += 1;
        // Accumulators for expected counts.
        let mut a_num = vec![vec![config.smoothing; m]; m];
        let mut b_num = vec![vec![config.smoothing; n]; m];
        let mut pi_acc = vec![config.smoothing; m];
        let mut total_ll = 0.0;

        for obs in sequences {
            let fwd = hmm.forward(obs)?;
            let beta_hat = hmm.backward(obs, &fwd.scale)?;
            total_ll += fwd.log_likelihood();
            let t_len = obs.len();

            // gamma[t][i] ∝ alpha_hat[t][i] * beta_hat[t][i]
            let mut gamma = vec![vec![0.0; m]; t_len];
            for t in 0..t_len {
                let mut norm = 0.0;
                for i in 0..m {
                    gamma[t][i] = fwd.alpha_hat[t][i] * beta_hat[t][i];
                    norm += gamma[t][i];
                }
                // A zero norm means the model assigns the suffix from t
                // zero probability; dividing would poison gamma with
                // NaNs that smoothing cannot repair.
                if norm <= 0.0 || !norm.is_finite() {
                    return Err(HmmError::ImpossibleSequence { time: t });
                }
                for g in &mut gamma[t] {
                    *g /= norm;
                }
            }

            for i in 0..m {
                pi_acc[i] += gamma[0][i];
            }
            for t in 0..t_len {
                for i in 0..m {
                    b_num[i][obs[t]] += gamma[t][i];
                }
            }
            // xi[t][i][j] ∝ alpha_hat[t][i] a_ij b_j(o_{t+1}) beta_hat[t+1][j]
            for t in 0..t_len - 1 {
                let mut norm = 0.0;
                let mut xi = vec![vec![0.0; m]; m];
                for (i, xrow) in xi.iter_mut().enumerate() {
                    for (j, x) in xrow.iter_mut().enumerate() {
                        *x = fwd.alpha_hat[t][i]
                            * hmm.transition()[(i, j)]
                            * hmm.observation()[(j, obs[t + 1])]
                            * beta_hat[t + 1][j];
                        norm += *x;
                    }
                }
                if norm > 0.0 {
                    for i in 0..m {
                        for j in 0..m {
                            a_num[i][j] += xi[i][j] / norm;
                        }
                    }
                }
            }
        }

        // M-step: normalize the accumulators.
        let normalize = |rows: Vec<Vec<f64>>| -> Result<StochasticMatrix> {
            let rows = rows
                .into_iter()
                .map(|r| {
                    let s: f64 = r.iter().sum();
                    r.into_iter().map(|x| x / s).collect()
                })
                .collect();
            StochasticMatrix::from_rows(rows)
        };
        let a = normalize(a_num)?;
        let b = normalize(b_num)?;
        let pi_sum: f64 = pi_acc.iter().sum();
        let pi: Vec<f64> = pi_acc.into_iter().map(|x| x / pi_sum).collect();
        hmm = Hmm::new(a, b, pi)?;

        if let Some(&prev) = lls.last() {
            if (total_ll - prev).abs() < config.tol {
                lls.push(total_ll);
                converged = true;
                break;
            }
        }
        lls.push(total_ll);
    }

    Ok(TrainedHmm {
        hmm,
        log_likelihoods: lls,
        iterations: iters,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth() -> Hmm {
        let a = StochasticMatrix::from_rows(vec![vec![0.85, 0.15], vec![0.1, 0.9]]).unwrap();
        let b = StochasticMatrix::from_rows(vec![vec![0.95, 0.05], vec![0.1, 0.9]]).unwrap();
        Hmm::new(a, b, vec![0.5, 0.5]).unwrap()
    }

    #[test]
    fn likelihood_is_monotone_nondecreasing() {
        let mut rng = StdRng::seed_from_u64(11);
        let (_, obs) = truth().sample(300, &mut rng).unwrap();
        let init = Hmm::random(2, 2, &mut rng).unwrap();
        let trained = baum_welch(
            &init,
            &[obs],
            &BaumWelchConfig {
                max_iters: 30,
                tol: 0.0,
                smoothing: 1e-9,
            },
        )
        .unwrap();
        for w in trained.log_likelihoods.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-7,
                "likelihood decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn recovers_emission_structure() {
        let mut rng = StdRng::seed_from_u64(5);
        let (_, obs) = truth().sample(2000, &mut rng).unwrap();
        // EM is sensitive to initialization; standard practice is random
        // restarts keeping the best final likelihood.
        let trained = (0..5)
            .map(|_| {
                let init = Hmm::random(2, 2, &mut rng).unwrap();
                baum_welch(
                    &init,
                    std::slice::from_ref(&obs),
                    &BaumWelchConfig::default(),
                )
                .unwrap()
            })
            .max_by(|x, y| {
                let lx = x.hmm.log_likelihood(&obs).unwrap();
                let ly = y.hmm.log_likelihood(&obs).unwrap();
                lx.partial_cmp(&ly).unwrap()
            })
            .unwrap();
        // Up to state relabeling, one state should emit symbol 0 heavily
        // and the other symbol 1.
        let b = trained.hmm.observation();
        let modes = b.row_argmax();
        assert_ne!(modes[0], modes[1], "states should specialize: B = {b}");
        let peak0 = b.row(0)[modes[0]];
        let peak1 = b.row(1)[modes[1]];
        assert!(peak0 > 0.8 && peak1 > 0.8, "peaks {peak0} {peak1}");
    }

    #[test]
    fn multi_sequence_training_works() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = truth();
        let seqs: Vec<Vec<usize>> = (0..5).map(|_| t.sample(100, &mut rng).unwrap().1).collect();
        let init = Hmm::random(2, 2, &mut rng).unwrap();
        let trained = baum_welch(&init, &seqs, &BaumWelchConfig::default()).unwrap();
        let before: f64 = seqs.iter().map(|s| init.log_likelihood(s).unwrap()).sum();
        let after: f64 = seqs
            .iter()
            .map(|s| trained.hmm.log_likelihood(s).unwrap())
            .sum();
        assert!(after > before);
    }

    #[test]
    fn converges_and_reports_it() {
        let mut rng = StdRng::seed_from_u64(2);
        let (_, obs) = truth().sample(200, &mut rng).unwrap();
        let init = Hmm::random(2, 2, &mut rng).unwrap();
        let trained = baum_welch(
            &init,
            &[obs],
            &BaumWelchConfig {
                max_iters: 500,
                tol: 1e-4,
                smoothing: 1e-6,
            },
        )
        .unwrap();
        assert!(trained.converged);
        assert!(trained.iterations < 500);
    }

    #[test]
    fn empty_input_is_error() {
        let init = Hmm::uniform(2, 2).unwrap();
        assert_eq!(
            baum_welch(&init, &[], &BaumWelchConfig::default()).unwrap_err(),
            HmmError::EmptySequence
        );
        assert_eq!(
            baum_welch(&init, &[vec![]], &BaumWelchConfig::default()).unwrap_err(),
            HmmError::EmptySequence
        );
    }

    #[test]
    fn out_of_range_symbol_is_error() {
        let init = Hmm::uniform(2, 2).unwrap();
        assert!(matches!(
            baum_welch(&init, &[vec![0, 3]], &BaumWelchConfig::default()),
            Err(HmmError::SymbolOutOfRange { .. })
        ));
    }

    #[test]
    fn smoothing_keeps_parameters_positive() {
        let mut rng = StdRng::seed_from_u64(13);
        // Train on a constant sequence: without smoothing many entries
        // would collapse to exactly zero.
        let init = Hmm::random(2, 3, &mut rng).unwrap();
        let trained = baum_welch(
            &init,
            &[vec![1; 50]],
            &BaumWelchConfig {
                smoothing: 1e-3,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..2 {
            for k in 0..3 {
                assert!(trained.hmm.observation()[(i, k)] > 0.0);
            }
        }
        // A held-out symbol still has positive probability.
        assert!(trained.hmm.log_likelihood(&[0, 2]).is_ok());
    }
}
