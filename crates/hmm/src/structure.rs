//! Structural analysis of observation matrices (paper §3.4).
//!
//! The classification methodology never compares raw traces; it inspects
//! the *structure* of the observation symbol distribution **B** of the
//! two HMMs `M_CO` and `M_CE`:
//!
//! - **row/column orthogonality** of `B^CO` separates errors from
//!   attacks (`Σ_k b_ik·b_jk = δ_ij` and `Σ_k b_ki·b_kj = δ_ij`);
//! - a **single all-ones column** of `B^CE` (Eq. 7) identifies a
//!   stuck-at error;
//! - orthogonal `B^CE` rows/columns (Eq. 8) indicate a one-to-one
//!   correct↔error state mapping (calibration or additive errors),
//!   disambiguated by ratio/difference constancy over the associated
//!   state attributes.
//!
//! Tolerances: the paper *states* "< 0.1 for i ≠ j and > 0.8 for i = j",
//! but its own Table 2 matrix (sensor 6, declared orthogonal) contains
//! an off-diagonal Gram entry of 0.89·0.17 ≈ 0.151 and a diagonal entry
//! of 0.17² + 0.83² ≈ 0.718 — the authors were reading "approximately".
//! Our defaults (`max_offdiag = 0.21`, `min_diag = 0.6`) are the loosest
//! thresholds that still separate every matrix the paper publishes:
//! Tables 2 and 4 classify as orthogonal, Table 6's deletion mass
//! (0.999) and Table 7's creation mass (0.229, weak row 0.542) classify
//! as violations.

use crate::matrix::StochasticMatrix;
use serde::{Deserialize, Serialize};

/// Tolerances for the orthogonality tests.
///
/// Defaults (`0.21` / `0.6`) are calibrated so that every matrix the
/// paper publishes classifies the way the paper classifies it; see the
/// module docs for why the paper's stated `0.1`/`0.8` don't satisfy its
/// own data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrthoTolerance {
    /// Maximum allowed off-diagonal Gram entry.
    pub max_offdiag: f64,
    /// Minimum required diagonal Gram entry.
    pub min_diag: f64,
}

impl Default for OrthoTolerance {
    fn default() -> Self {
        Self {
            max_offdiag: 0.21,
            min_diag: 0.6,
        }
    }
}

/// A pair of rows or columns that violate orthogonality, with the Gram
/// mass they share.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NonOrthogonalPair {
    /// First index of the pair (row or column depending on context).
    pub first: usize,
    /// Second index of the pair.
    pub second: usize,
    /// The off-diagonal Gram entry `Σ_k b_{first,k}·b_{second,k}` (rows)
    /// or the column analogue.
    pub mass: f64,
}

/// Result of the row/column orthogonality analysis of a **B** matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrthogonalityReport {
    /// Whether all row pairs are orthogonal and all row norms ≈ 1.
    pub rows_orthogonal: bool,
    /// Whether all column pairs are orthogonal.
    pub cols_orthogonal: bool,
    /// Row pairs violating orthogonality (deletion-attack signature).
    pub row_violations: Vec<NonOrthogonalPair>,
    /// Column pairs violating orthogonality (creation-attack signature).
    pub col_violations: Vec<NonOrthogonalPair>,
    /// Rows whose diagonal Gram entry falls below the tolerance, i.e.
    /// rows spread over several symbols.
    pub weak_rows: Vec<usize>,
}

impl OrthogonalityReport {
    /// Analyzes `b` under tolerance `tol`, optionally restricted to
    /// `active_rows` (rows with actual evidence; identity-prior rows of
    /// an online estimator otherwise masquerade as perfect).
    pub fn analyze(
        b: &StochasticMatrix,
        tol: OrthoTolerance,
        active_rows: Option<&[usize]>,
    ) -> Self {
        let rows: Vec<usize> = match active_rows {
            Some(r) => r.to_vec(),
            None => (0..b.num_rows()).collect(),
        };
        let rg = b.row_gram();
        let mut row_violations = Vec::new();
        let mut weak_rows = Vec::new();
        for (ai, &i) in rows.iter().enumerate() {
            if rg[i][i] < tol.min_diag {
                weak_rows.push(i);
            }
            for &j in rows.iter().skip(ai + 1) {
                if rg[i][j] > tol.max_offdiag {
                    row_violations.push(NonOrthogonalPair {
                        first: i,
                        second: j,
                        mass: rg[i][j],
                    });
                }
            }
        }

        // Columns: only columns receiving mass from active rows matter.
        let cg = {
            // Build a reduced matrix of the active rows to compute the
            // column Gram restricted to evidence-bearing rows.
            let reduced: Vec<Vec<f64>> = rows.iter().map(|&i| b.row(i).to_vec()).collect();
            let ncols = b.num_cols();
            let mut g = vec![vec![0.0; ncols]; ncols];
            for r in &reduced {
                for i in 0..ncols {
                    for j in i..ncols {
                        g[i][j] += r[i] * r[j];
                    }
                }
            }
            for i in 0..ncols {
                for j in 0..i {
                    g[i][j] = g[j][i];
                }
            }
            g
        };
        let mut col_violations = Vec::new();
        for i in 0..b.num_cols() {
            for j in i + 1..b.num_cols() {
                if cg[i][j] > tol.max_offdiag {
                    col_violations.push(NonOrthogonalPair {
                        first: i,
                        second: j,
                        mass: cg[i][j],
                    });
                }
            }
        }

        Self {
            rows_orthogonal: row_violations.is_empty() && weak_rows.is_empty(),
            cols_orthogonal: col_violations.is_empty(),
            row_violations,
            col_violations,
            weak_rows,
        }
    }

    /// True when both rows and columns pass: the error signature (or a
    /// dynamic-change attack, which preserves orthogonality).
    pub fn is_orthogonal(&self) -> bool {
        self.rows_orthogonal && self.cols_orthogonal
    }
}

/// Memoized one-to-one association result (`None` = no association).
type CachedAssociation = Option<Vec<(usize, usize)>>;

/// Cache key for the parameterized structural tests: an estimator's
/// update generation plus the query parameters.
#[derive(Debug, Clone, PartialEq)]
struct CacheKey {
    generation: u64,
    max_offdiag: f64,
    min_diag: f64,
    threshold: f64,
    active_rows: Option<Vec<usize>>,
}

impl CacheKey {
    fn new(generation: u64, active_rows: Option<&[usize]>) -> Self {
        Self {
            generation,
            max_offdiag: 0.0,
            min_diag: 0.0,
            threshold: 0.0,
            active_rows: active_rows.map(<[usize]>::to_vec),
        }
    }
}

/// Memoized structural analysis of one evolving observation matrix.
///
/// The Gram-matrix orthogonality analysis is `O(m²·n)` and the pipeline
/// consults it on every `classify`/`network_attack`/confidence query —
/// typically many times between matrix updates. Keying each result on
/// the estimator's *update generation* (see
/// `OnlineHmmEstimator::generation`) makes repeated queries after
/// unchanged windows O(1): the caller passes the current generation and
/// the cache recomputes only when it, or a query parameter, changed.
#[derive(Debug, Clone, Default)]
pub struct StructureCache {
    ortho: Option<(CacheKey, OrthogonalityReport)>,
    stuck: Option<(CacheKey, Option<usize>)>,
    assoc: Option<(CacheKey, CachedAssociation)>,
    recomputes: u64,
}

impl StructureCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized [`OrthogonalityReport::analyze`]. `generation` must
    /// uniquely identify the current contents of `b`.
    pub fn orthogonality(
        &mut self,
        generation: u64,
        b: &StochasticMatrix,
        tol: OrthoTolerance,
        active_rows: Option<&[usize]>,
    ) -> &OrthogonalityReport {
        let mut key = CacheKey::new(generation, active_rows);
        key.max_offdiag = tol.max_offdiag;
        key.min_diag = tol.min_diag;
        if !matches!(&self.ortho, Some((k, _)) if *k == key) {
            self.recomputes += 1;
            let report = OrthogonalityReport::analyze(b, tol, active_rows);
            self.ortho = Some((key, report));
        }
        // sentinet-allow(expect-used): the memo entry is filled on the line above
        &self.ortho.as_ref().expect("just filled").1
    }

    /// Memoized [`stuck_at_column`].
    pub fn stuck_at(
        &mut self,
        generation: u64,
        b: &StochasticMatrix,
        threshold: f64,
        active_rows: Option<&[usize]>,
    ) -> Option<usize> {
        let mut key = CacheKey::new(generation, active_rows);
        key.threshold = threshold;
        if !matches!(&self.stuck, Some((k, _)) if *k == key) {
            self.recomputes += 1;
            let column = stuck_at_column(b, threshold, active_rows);
            self.stuck = Some((key, column));
        }
        // sentinet-allow(expect-used): the memo entry is filled on the line above
        self.stuck.as_ref().expect("just filled").1
    }

    /// Memoized [`one_to_one_association`].
    pub fn association(
        &mut self,
        generation: u64,
        b: &StochasticMatrix,
        threshold: f64,
        active_rows: Option<&[usize]>,
    ) -> Option<&[(usize, usize)]> {
        let mut key = CacheKey::new(generation, active_rows);
        key.threshold = threshold;
        if !matches!(&self.assoc, Some((k, _)) if *k == key) {
            self.recomputes += 1;
            let pairs = one_to_one_association(b, threshold, active_rows);
            self.assoc = Some((key, pairs));
        }
        // sentinet-allow(expect-used): the memo entry is filled on the line above
        self.assoc.as_ref().expect("just filled").1.as_deref()
    }

    /// How many underlying analyses have actually run — the observable
    /// that memoization works (stays flat across repeated queries).
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }
}

/// Tests Eq. 7: does `b` have a single column that holds (approximately)
/// all the mass of every row? Returns that column's index if so.
///
/// `threshold` is the minimum per-row mass the column must hold
/// (paper's sensor 6: column (15,1) holds 0.67–1.0 per row; we default
/// callers to 0.5, i.e. the column is every active row's majority).
pub fn stuck_at_column(
    b: &StochasticMatrix,
    threshold: f64,
    active_rows: Option<&[usize]>,
) -> Option<usize> {
    let rows: Vec<usize> = match active_rows {
        Some(r) => r.to_vec(),
        None => (0..b.num_rows()).collect(),
    };
    if rows.is_empty() {
        return None;
    }
    (0..b.num_cols()).find(|&k| rows.iter().all(|&i| b[(i, k)] >= threshold))
}

/// Extracts the correct-state → symbol association implied by `b`: for
/// each active row, the column holding at least `threshold` of its mass.
///
/// Returns `None` for the whole association if any active row lacks a
/// dominant column, or if two rows share one (not one-to-one) — the
/// precondition for the paper's ratio/difference tests.
pub fn one_to_one_association(
    b: &StochasticMatrix,
    threshold: f64,
    active_rows: Option<&[usize]>,
) -> Option<Vec<(usize, usize)>> {
    let rows: Vec<usize> = match active_rows {
        Some(r) => r.to_vec(),
        None => (0..b.num_rows()).collect(),
    };
    let mut pairs = Vec::with_capacity(rows.len());
    let mut used = vec![false; b.num_cols()];
    for &i in &rows {
        let row = b.row(i);
        let (k, &mass) = row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        if mass < threshold || used[k] {
            return None;
        }
        used[k] = true;
        pairs.push((i, k));
    }
    Some(pairs)
}

/// Summary statistics (mean, variance) of a slice — used for the
/// ratio/difference constancy tests on associated state attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanVar {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub var: f64,
}

/// Mean row-wise L1 distance between two equally shaped observation
/// matrices under the best *hidden-state* (row) permutation. Hidden
/// states are anonymous in unsupervised estimation, but observation
/// symbols are observed and keep their identity, so only rows permute.
///
/// Exhaustive over permutations — intended for the small state counts
/// of this domain (≤ 8; `8! = 40320` candidates).
///
/// # Panics
///
/// Panics if the shapes differ or the row count exceeds 8.
pub fn aligned_b_distance(estimate: &StochasticMatrix, truth: &StochasticMatrix) -> f64 {
    assert_eq!(estimate.num_rows(), truth.num_rows(), "row shape");
    assert_eq!(estimate.num_cols(), truth.num_cols(), "col shape");
    let m = truth.num_rows();
    assert!(m <= 8, "exhaustive alignment is limited to 8 states");
    let n = truth.num_cols();
    let mut best = f64::INFINITY;
    permutations(m, &mut |p| {
        let mut err = 0.0;
        for i in 0..m {
            for k in 0..n {
                err += (estimate[(p[i], k)] - truth[(i, k)]).abs();
            }
        }
        best = best.min(err / m as f64);
    });
    best
}

/// Calls `f` with every permutation of `0..n` (Heap's algorithm).
fn permutations(n: usize, f: &mut impl FnMut(&[usize])) {
    fn heaps(k: usize, arr: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
        if k <= 1 {
            f(arr);
            return;
        }
        for i in 0..k {
            heaps(k - 1, arr, f);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    let mut arr: Vec<usize> = (0..n).collect();
    heaps(n, &mut arr, f);
}

/// Computes mean and population variance of `xs`; `None` when empty.
pub fn mean_var(xs: &[f64]) -> Option<MeanVar> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    Some(MeanVar { mean, var })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b_identityish() -> StochasticMatrix {
        // Overlap pattern mirroring the paper's Table 2: adjacent states
        // share mass in a single column only.
        StochasticMatrix::from_rows(vec![
            vec![1.0, 0.0, 0.0],
            vec![0.11, 0.89, 0.0],
            vec![0.0, 0.17, 0.83],
        ])
        .unwrap()
    }

    #[test]
    fn near_identity_is_orthogonal() {
        let r = OrthogonalityReport::analyze(&b_identityish(), OrthoTolerance::default(), None);
        assert!(r.is_orthogonal(), "{r:?}");
    }

    #[test]
    fn deletion_signature_breaks_row_orthogonality() {
        // Two hidden states mapped to the same observable state (paper
        // Table 6: rows (29,56) and (20,71)).
        let b = StochasticMatrix::from_rows(vec![
            vec![0.001, 0.999, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let r = OrthogonalityReport::analyze(&b, OrthoTolerance::default(), None);
        assert!(!r.rows_orthogonal);
        assert!(r
            .row_violations
            .iter()
            .any(|v| v.first == 0 && v.second == 1));
        // Columns remain orthogonal in this scenario... col 1 receives
        // mass from two rows but its *pairwise* products with other
        // columns stay ~0.
        assert!(r.cols_orthogonal);
    }

    #[test]
    fn creation_signature_breaks_col_orthogonality() {
        // One hidden state split over two observables (paper Table 7:
        // row (12,95) splits 0.35/0.65 over columns (12,95) and (25,69)).
        let b = StochasticMatrix::from_rows(vec![vec![1.0, 0.0, 0.0], vec![0.0, 0.3546, 0.6454]])
            .unwrap();
        let r = OrthogonalityReport::analyze(&b, OrthoTolerance::default(), None);
        assert!(!r.cols_orthogonal);
        assert!(r
            .col_violations
            .iter()
            .any(|v| v.first == 1 && v.second == 2));
        // The split row is also weak (0.3546² + 0.6454² ≈ 0.54 < 0.8).
        assert!(!r.rows_orthogonal);
        assert!(r.weak_rows.contains(&1));
    }

    #[test]
    fn active_rows_mask_ignores_prior_rows() {
        // Row 2 is an untouched identity prior sharing its column with
        // row 0 — with the mask it must not trigger a violation.
        let b = StochasticMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0]])
            .unwrap();
        let all = OrthogonalityReport::analyze(&b, OrthoTolerance::default(), None);
        assert!(!all.rows_orthogonal);
        let masked = OrthogonalityReport::analyze(&b, OrthoTolerance::default(), Some(&[0, 1]));
        assert!(masked.is_orthogonal());
    }

    #[test]
    fn stuck_at_detects_all_ones_column() {
        // Paper Table 3 shape: column 1 ≈ all ones.
        let b = StochasticMatrix::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.9, 0.1],
            vec![0.33, 0.67, 0.0],
            vec![0.01, 0.99, 0.0],
        ])
        .unwrap();
        assert_eq!(stuck_at_column(&b, 0.5, None), Some(1));
    }

    #[test]
    fn stuck_at_rejects_orthogonal_matrix() {
        assert_eq!(stuck_at_column(&b_identityish(), 0.5, None), None);
    }

    #[test]
    fn stuck_at_respects_active_rows() {
        let b = StochasticMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(stuck_at_column(&b, 0.9, Some(&[0])), Some(0));
        assert_eq!(stuck_at_column(&b, 0.9, None), None);
        assert_eq!(stuck_at_column(&b, 0.9, Some(&[])), None);
    }

    #[test]
    fn association_one_to_one() {
        // Paper Table 5 shape: shifted one-to-one mapping.
        let b = StochasticMatrix::from_rows(vec![
            vec![0.0, 0.86, 0.0, 0.14],
            vec![0.0, 0.0, 0.85, 0.15],
            vec![0.87, 0.0, 0.0, 0.13],
        ])
        .unwrap();
        let assoc = one_to_one_association(&b, 0.5, None).unwrap();
        assert_eq!(assoc, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn association_fails_on_shared_column() {
        let b = StochasticMatrix::from_rows(vec![vec![1.0, 0.0], vec![1.0, 0.0]]).unwrap();
        assert_eq!(one_to_one_association(&b, 0.5, None), None);
    }

    #[test]
    fn association_fails_on_weak_row() {
        let b = StochasticMatrix::from_rows(vec![vec![0.4, 0.3, 0.3]]).unwrap();
        assert_eq!(one_to_one_association(&b, 0.5, None), None);
    }

    #[test]
    fn mean_var_basics() {
        let mv = mean_var(&[1.0, 2.0, 3.0]).unwrap();
        assert!((mv.mean - 2.0).abs() < 1e-12);
        assert!((mv.var - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean_var(&[]), None);
        let constant = mean_var(&[5.0; 10]).unwrap();
        assert_eq!(constant.var, 0.0);
    }

    #[test]
    fn aligned_distance_zero_for_row_permuted_self() {
        let b = StochasticMatrix::from_rows(vec![
            vec![0.9, 0.1, 0.0],
            vec![0.0, 0.8, 0.2],
            vec![0.3, 0.0, 0.7],
        ])
        .unwrap();
        assert!(aligned_b_distance(&b, &b) < 1e-12);
        // Relabel hidden states (rows) only: distance stays 0.
        let p = [2usize, 0, 1];
        let mut rows = vec![vec![0.0; 3]; 3];
        for i in 0..3 {
            for k in 0..3 {
                rows[p[i]][k] = b[(i, k)];
            }
        }
        let perm_b = StochasticMatrix::from_rows(rows).unwrap();
        assert!(aligned_b_distance(&perm_b, &b) < 1e-12);
    }

    #[test]
    fn aligned_distance_detects_real_difference() {
        let i3 = StochasticMatrix::identity(3).unwrap();
        let u3 = StochasticMatrix::uniform(3, 3).unwrap();
        // Each row differs by |1-1/3| + 2·(1/3) = 4/3 under any perm.
        let d = aligned_b_distance(&u3, &i3);
        assert!((d - 4.0 / 3.0).abs() < 1e-9, "d {d}");
    }

    #[test]
    fn aligned_distance_works_on_rectangular() {
        let a = StochasticMatrix::uniform(2, 3).unwrap();
        let b = StochasticMatrix::uniform(2, 3).unwrap();
        assert!(aligned_b_distance(&a, &b) < 1e-12);
    }

    #[test]
    fn structure_cache_hits_on_same_generation() {
        let b = b_identityish();
        let mut cache = StructureCache::new();
        let tol = OrthoTolerance::default();
        let first = cache.orthogonality(1, &b, tol, None).clone();
        assert_eq!(cache.recomputes(), 1);
        for _ in 0..10 {
            let again = cache.orthogonality(1, &b, tol, None);
            assert_eq!(*again, first);
        }
        assert_eq!(cache.recomputes(), 1, "repeated queries must be cached");
        // A new generation forces exactly one recomputation.
        cache.orthogonality(2, &b, tol, None);
        assert_eq!(cache.recomputes(), 2);
    }

    #[test]
    fn structure_cache_distinguishes_parameters() {
        let b = StochasticMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.4, 0.6]]).unwrap();
        let mut cache = StructureCache::new();
        assert_eq!(cache.stuck_at(1, &b, 0.5, None), Some(1));
        assert_eq!(cache.stuck_at(1, &b, 0.5, None), Some(1));
        assert_eq!(cache.recomputes(), 1);
        // Different threshold is a different query, not a cache hit.
        assert_eq!(cache.stuck_at(1, &b, 0.9, None), None);
        assert_eq!(cache.recomputes(), 2);
        // Different active mask likewise.
        assert_eq!(cache.stuck_at(1, &b, 0.9, Some(&[0])), Some(1));
        assert_eq!(cache.recomputes(), 3);
    }

    #[test]
    fn structure_cache_association_matches_uncached() {
        let b = StochasticMatrix::from_rows(vec![
            vec![0.0, 0.86, 0.0, 0.14],
            vec![0.0, 0.0, 0.85, 0.15],
            vec![0.87, 0.0, 0.0, 0.13],
        ])
        .unwrap();
        let mut cache = StructureCache::new();
        let direct = one_to_one_association(&b, 0.5, None);
        assert_eq!(
            cache.association(7, &b, 0.5, None).map(<[_]>::to_vec),
            direct
        );
        cache.association(7, &b, 0.5, None);
        assert_eq!(cache.recomputes(), 1);
    }

    #[test]
    fn paper_table2_bco_is_orthogonal() {
        // Exact matrix from paper Table 2 (sensor 6, B^CO).
        let b = StochasticMatrix::from_rows(vec![
            vec![1.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.11, 0.0, 0.89, 0.0],
            vec![0.0, 0.0, 0.0, 0.17, 0.83],
        ])
        .unwrap();
        let r = OrthogonalityReport::analyze(&b, OrthoTolerance::default(), None);
        assert!(r.is_orthogonal(), "{r:?}");
    }

    #[test]
    fn paper_table3_bce_is_stuck_at() {
        // Exact matrix from paper Table 3 (sensor 6, B^CE), with the ⊥
        // column dropped as the paper prescribes.
        let b = StochasticMatrix::from_rows(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.9, 0.1],
            vec![0.33, 0.67, 0.0],
            vec![0.01, 0.99, 0.0],
        ])
        .unwrap();
        let no_bot = b.drop_columns(&[2]).unwrap();
        assert_eq!(stuck_at_column(&no_bot, 0.5, None), Some(1));
    }

    #[test]
    fn paper_table6_deletion_rows_non_orthogonal() {
        // Exact matrix from paper Table 6 (Dynamic Deletion).
        let b = StochasticMatrix::from_rows(vec![
            vec![0.001, 0.999, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.999, 0.0, 0.0, 0.001],
            vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        let r = OrthogonalityReport::analyze(&b, OrthoTolerance::default(), None);
        assert!(!r.rows_orthogonal);
        assert!(r.cols_orthogonal);
    }

    #[test]
    fn paper_table7_creation_cols_non_orthogonal() {
        // Exact matrix from paper Table 7 (Dynamic Creation).
        let b = StochasticMatrix::from_rows(vec![
            vec![1.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.3546, 0.6454],
        ])
        .unwrap();
        let r = OrthogonalityReport::analyze(&b, OrthoTolerance::default(), None);
        assert!(!r.cols_orthogonal);
    }
}
