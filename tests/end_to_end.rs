//! End-to-end reproduction tests: simulate the paper's GDI workloads,
//! inject each fault/attack model, run the full pipeline, and assert the
//! detection *and* classification outcomes of §4.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sentinet_core::{AttackType, Diagnosis, ErrorType, Pipeline, PipelineConfig};
use sentinet_inject::{
    first_k_sensors, inject_attacks, inject_faults, AttackInjection, AttackModel, FaultInjection,
    FaultModel,
};
use sentinet_sim::{gdi, simulate, SensorId, Trace, DAY_S};

fn clean_trace(days: u64, seed: u64) -> (Trace, sentinet_sim::SimConfig) {
    let mut cfg = gdi::month_config();
    cfg.duration = days * DAY_S;
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(seed));
    (trace, cfg)
}

fn run(trace: &Trace, sample_period: u64) -> Pipeline {
    let mut p = Pipeline::new(PipelineConfig::default(), sample_period);
    p.process_trace(trace);
    p
}

#[test]
fn clean_month_is_error_free() {
    let (trace, cfg) = clean_trace(30, 1);
    let mut p = Pipeline::new(PipelineConfig::default(), cfg.sample_period);
    let outcomes = p.process_trace(&trace);
    assert!(outcomes.len() >= 700, "windows {}", outcomes.len());
    // No sensor should carry a filtered alarm on clean data.
    for id in p.sensor_ids() {
        assert_eq!(p.classify(id), Diagnosis::ErrorFree, "{id}");
    }
    assert_eq!(p.network_attack(), None);
    // Raw false-alarm rate stays in the paper's ballpark (≈ 1.5 %).
    let total: usize = p
        .sensor_ids()
        .iter()
        .map(|&id| p.raw_alarm_history(id).unwrap().len())
        .sum();
    let raw: usize = p
        .sensor_ids()
        .iter()
        .map(|&id| {
            p.raw_alarm_history(id)
                .unwrap()
                .iter()
                .filter(|(_, r)| *r)
                .count()
        })
        .sum();
    let rate = raw as f64 / total as f64;
    assert!(rate < 0.05, "raw false alarm rate {rate}");
}

#[test]
fn stuck_at_sensor_is_detected_and_classified() {
    let (clean, cfg) = clean_trace(14, 2);
    let mut rng = StdRng::seed_from_u64(20);
    // Paper sensor 6: stuck at (15, 1) from early in the trace.
    let faulty = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(6),
            FaultModel::StuckAt {
                value: vec![15.0, 1.0],
            },
            DAY_S, // healthy first day
        )],
        &cfg.ranges,
        &mut rng,
    );
    let p = run(&faulty, cfg.sample_period);
    assert!(p.ever_alarmed(SensorId(6)), "sensor 6 never alarmed");
    match p.classify(SensorId(6)) {
        Diagnosis::Error(ErrorType::StuckAt { state }) => {
            // The stuck state's centroid must be near (15, 1).
            let c = p
                .model_states()
                .unwrap()
                .centroid_any(state)
                .unwrap()
                .to_vec();
            assert!(
                (c[0] - 15.0).abs() < 3.0 && c[1] < 6.0,
                "stuck state centroid {c:?}"
            );
        }
        other => panic!("expected stuck-at, got {other}"),
    }
    // Healthy sensors stay clean.
    for s in [0u16, 1, 2, 3, 4, 5, 8, 9] {
        assert_eq!(p.classify(SensorId(s)), Diagnosis::ErrorFree, "sensor {s}");
    }
    assert_eq!(p.network_attack(), None, "no attack signature expected");
}

#[test]
fn drift_to_stuck_matches_paper_sensor6_story() {
    let (clean, cfg) = clean_trace(14, 3);
    let mut rng = StdRng::seed_from_u64(30);
    let faulty = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(6),
            FaultModel::DriftToStuck {
                target: vec![15.0, 1.0],
                drift_duration: 2 * DAY_S,
            },
            DAY_S,
        )],
        &cfg.ranges,
        &mut rng,
    );
    let p = run(&faulty, cfg.sample_period);
    assert!(p.ever_alarmed(SensorId(6)));
    // After drifting, the sensor parks at (15, 1): stuck-at must win.
    match p.classify(SensorId(6)) {
        Diagnosis::Error(ErrorType::StuckAt { .. }) => {}
        other => panic!("expected stuck-at after drift, got {other}"),
    }
}

#[test]
fn calibration_sensor_is_detected_and_classified() {
    let (clean, cfg) = clean_trace(14, 4);
    let mut rng = StdRng::seed_from_u64(40);
    // Paper sensor 7: humidity reads high by a constant factor.
    let faulty = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(7),
            FaultModel::Calibration {
                gain: vec![1.15, 1.15],
            },
            0,
        )],
        &cfg.ranges,
        &mut rng,
    );
    let p = run(&faulty, cfg.sample_period);
    assert!(p.ever_alarmed(SensorId(7)), "sensor 7 never alarmed");
    match p.classify(SensorId(7)) {
        Diagnosis::Error(ErrorType::Calibration { gains }) => {
            assert!((gains[0] - 1.15).abs() < 0.1, "estimated gains {gains:?}");
        }
        other => panic!("expected calibration, got {other}"),
    }
}

#[test]
fn additive_sensor_is_detected_and_classified() {
    let (clean, cfg) = clean_trace(14, 5);
    let mut rng = StdRng::seed_from_u64(50);
    let faulty = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(3),
            FaultModel::Additive {
                offset: vec![9.0, 9.0],
            },
            0,
        )],
        &cfg.ranges,
        &mut rng,
    );
    let p = run(&faulty, cfg.sample_period);
    assert!(p.ever_alarmed(SensorId(3)), "sensor 3 never alarmed");
    match p.classify(SensorId(3)) {
        Diagnosis::Error(ErrorType::Additive { offsets }) => {
            assert!(
                (offsets[0] - 9.0).abs() < 3.0,
                "estimated offsets {offsets:?}"
            );
        }
        other => panic!("expected additive, got {other}"),
    }
}

#[test]
fn deletion_attack_is_detected_and_classified() {
    let (clean, cfg) = clean_trace(10, 6);
    // One third of sensors pin the observed state at the night values
    // for the back half of the trace (runs to the end so the exponential
    // estimator still holds the signature at classification time).
    let attack = AttackInjection::from_onset(
        first_k_sensors(3),
        AttackModel::DynamicDeletion {
            freeze_at: vec![12.0, 94.0],
        },
        5 * DAY_S,
    );
    let attacked = inject_attacks(&clean, &[attack], &cfg.ranges);
    let p = run(&attacked, cfg.sample_period);
    match p.network_attack() {
        Some(AttackType::DynamicDeletion { deleted }) => {
            assert!(!deleted.is_empty());
        }
        other => panic!("expected deletion, got {other:?}"),
    }
}

#[test]
fn creation_attack_is_detected_and_classified() {
    // The paper's Fig. 11: correct environment ≈ constant while the
    // adversary fabricates a new state.
    let mut cfg = gdi::month_config();
    cfg.duration = 6 * DAY_S;
    cfg.environment = sentinet_sim::EnvironmentModel::Constant(vec![12.0, 95.0]);
    let clean = simulate(&cfg, &mut StdRng::seed_from_u64(7));
    // The paper's creation injection is periodic (Fig. 11): the row of
    // the true state must split between its own column and the created
    // one, which requires both behaviours inside the estimator memory.
    let attacks: Vec<AttackInjection> = (0..6)
        .map(|i| AttackInjection {
            sensors: first_k_sensors(3),
            model: AttackModel::DynamicCreation {
                target: vec![25.0, 69.0],
            },
            start: 3 * DAY_S + i * 12 * 3600,
            end: Some(3 * DAY_S + i * 12 * 3600 + 6 * 3600),
        })
        .collect();
    let attacked = inject_attacks(&clean, &attacks, &cfg.ranges);
    let p = run(&attacked, cfg.sample_period);
    match p.network_attack() {
        Some(AttackType::DynamicCreation { created }) => {
            assert!(!created.is_empty());
        }
        other => panic!("expected creation, got {other:?}"),
    }
}

#[test]
fn change_attack_is_detected_and_classified() {
    // The paper's Dynamic Change is a discrete alias ("each time
    // correct sensors report 50 ... the overall temperature equals
    // 10"): model it with a plateaued environment so each state's
    // shifted image is a single point. (Under a continuously drifting
    // environment the shifted image smears over two adjacent spawned
    // states and the structural signature degrades to Creation — a
    // quantization limitation shared with the paper.)
    let mut cfg = gdi::month_config();
    cfg.duration = 8 * DAY_S;
    let plateau = |d: u64, v: Vec<f64>| (d * 6 * 3600, v);
    let mut schedule = Vec::new();
    for day in 0..32u64 {
        schedule.push(plateau(day * 4, vec![12.0, 94.0]));
        schedule.push(plateau(day * 4 + 1, vec![22.0, 74.0]));
        schedule.push(plateau(day * 4 + 2, vec![31.0, 56.0]));
        schedule.push(plateau(day * 4 + 3, vec![22.0, 74.0]));
    }
    cfg.environment = sentinet_sim::EnvironmentModel::Piecewise(schedule);
    let clean = simulate(&cfg, &mut StdRng::seed_from_u64(8));
    let attack = AttackInjection::from_onset(
        first_k_sensors(3),
        AttackModel::DynamicChange {
            offset: vec![-15.0, 0.0],
        },
        0,
    );
    let attacked = inject_attacks(&clean, &[attack], &cfg.ranges);
    let p = run(&attacked, cfg.sample_period);
    match p.network_attack() {
        Some(AttackType::DynamicChange { pairs }) => {
            assert!(!pairs.is_empty());
        }
        other => panic!("expected change, got {other:?}"),
    }
}

#[test]
fn attacked_sensors_classify_as_attack() {
    let (clean, cfg) = clean_trace(10, 9);
    let attack = AttackInjection::from_onset(
        first_k_sensors(3),
        AttackModel::DynamicDeletion {
            freeze_at: vec![12.0, 94.0],
        },
        5 * DAY_S,
    );
    let attacked = inject_attacks(&clean, &[attack], &cfg.ranges);
    let p = run(&attacked, cfg.sample_period);
    // At least one compromised sensor must alarm and classify as attack.
    let attacked_diagnoses: Vec<Diagnosis> = (0..3).map(|s| p.classify(SensorId(s))).collect();
    assert!(
        attacked_diagnoses
            .iter()
            .any(|d| matches!(d, Diagnosis::Attack(_))),
        "diagnoses {attacked_diagnoses:?}"
    );
}

#[test]
fn random_noise_fault_detected_without_misattribution() {
    let (clean, cfg) = clean_trace(10, 10);
    let mut rng = StdRng::seed_from_u64(100);
    let faulty = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(5),
            FaultModel::RandomNoise {
                std: vec![10.0, 10.0],
            },
            0,
        )],
        &cfg.ranges,
        &mut rng,
    );
    let p = run(&faulty, cfg.sample_period);
    // The paper concedes random noise is hard to classify: it must not
    // be mistaken for an attack, and must not frame healthy sensors.
    assert_eq!(p.network_attack(), None);
    match p.classify(SensorId(5)) {
        Diagnosis::Error(_) | Diagnosis::ErrorFree => {}
        other => panic!("random noise misclassified as {other}"),
    }
    for s in [0u16, 1, 2, 3, 4, 6, 7, 8, 9] {
        assert_eq!(p.classify(SensorId(s)), Diagnosis::ErrorFree, "sensor {s}");
    }
}

#[test]
fn mixed_attack_classifies_as_mixed_or_component() {
    let (clean, cfg) = clean_trace(10, 11);
    let attack = AttackInjection::from_onset(
        first_k_sensors(3),
        AttackModel::Mixed {
            creation_target: vec![40.0, 20.0],
            freeze_at: vec![12.0, 94.0],
            phase_period: DAY_S,
        },
        4 * DAY_S,
    );
    let attacked = inject_attacks(&clean, &[attack], &cfg.ranges);
    let p = run(&attacked, cfg.sample_period);
    match p.network_attack() {
        Some(AttackType::Mixed)
        | Some(AttackType::DynamicCreation { .. })
        | Some(AttackType::DynamicDeletion { .. }) => {}
        other => panic!("expected an attack signature, got {other:?}"),
    }
}

#[test]
fn two_simultaneous_faults_are_separated() {
    let (clean, cfg) = clean_trace(14, 12);
    let mut rng = StdRng::seed_from_u64(120);
    // The paper's §4.1 finds sensors 6 *and* 7 faulty in the same month.
    let faulty = inject_faults(
        &clean,
        &[
            FaultInjection::from_onset(
                SensorId(6),
                FaultModel::StuckAt {
                    value: vec![15.0, 1.0],
                },
                DAY_S,
            ),
            FaultInjection::from_onset(
                SensorId(7),
                FaultModel::Calibration {
                    gain: vec![1.15, 1.15],
                },
                0,
            ),
        ],
        &cfg.ranges,
        &mut rng,
    );
    let p = run(&faulty, cfg.sample_period);
    assert!(matches!(
        p.classify(SensorId(6)),
        Diagnosis::Error(ErrorType::StuckAt { .. })
    ));
    assert!(matches!(
        p.classify(SensorId(7)),
        Diagnosis::Error(ErrorType::Calibration { .. })
    ));
    for s in [0u16, 1, 2, 3, 4, 5, 8, 9] {
        assert_eq!(p.classify(SensorId(s)), Diagnosis::ErrorFree, "sensor {s}");
    }
}

#[test]
fn recovery_plan_rehabilitates_calibrated_sensor() {
    use sentinet_core::{RecoveryAction, RecoveryPlan};

    // Same scenario as calibration_sensor_is_detected_and_classified.
    let (clean, cfg) = clean_trace(14, 4);
    let mut rng = StdRng::seed_from_u64(40);
    let faulty = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(7),
            FaultModel::Calibration {
                gain: vec![1.15, 1.15],
            },
            0,
        )],
        &cfg.ranges,
        &mut rng,
    );
    let p = run(&faulty, cfg.sample_period);
    let plan = RecoveryPlan::from_pipeline(&p);

    // Healthy sensors: no action. Faulty sensor: recalibrate, not mask.
    assert_eq!(*plan.action(SensorId(0)), RecoveryAction::None);
    assert!(
        plan.masked_sensors().is_empty(),
        "unexpected masked sensors: {:?} (plan: {plan:?})",
        plan.masked_sensors()
    );
    let action = plan.action(SensorId(7)).clone();
    assert!(
        matches!(action, RecoveryAction::Recalibrate { .. }),
        "{action:?}"
    );

    // Rehabilitated readings must track the clean ground truth far
    // better than the corrupted ones (clamped readings can't be fully
    // inverted, so compare average absolute temperature error).
    let corrupted = faulty.sensor_series(SensorId(7));
    let truth = clean.sensor_series(SensorId(7));
    let mut err_raw = 0.0;
    let mut err_fixed = 0.0;
    let mut n = 0.0;
    for ((_, bad), (_, good)) in corrupted.iter().zip(&truth) {
        let fixed = action.rehabilitate(bad).expect("recoverable");
        err_raw += (bad.values()[0] - good.values()[0]).abs();
        err_fixed += (fixed.values()[0] - good.values()[0]).abs();
        n += 1.0;
    }
    err_raw /= n;
    err_fixed /= n;
    assert!(
        err_fixed < err_raw / 2.0,
        "rehabilitation must at least halve the error: raw {err_raw:.2}, fixed {err_fixed:.2}"
    );
}

#[test]
fn attack_signature_fades_after_attack_ends() {
    // The exponential estimators forget: once the adversary stops, the
    // B^CO structure re-converges to identity and the network verdict
    // clears — the flip side of needing no training phase.
    let (clean, cfg) = clean_trace(14, 14);
    let attack = AttackInjection {
        sensors: first_k_sensors(3),
        model: AttackModel::DynamicDeletion {
            freeze_at: vec![12.0, 94.0],
        },
        start: 4 * DAY_S,
        end: Some(7 * DAY_S), // attack stops at day 7 of 14
    };
    let attacked = inject_attacks(&clean, &[attack], &cfg.ranges);

    // Mid-attack verdict (truncate the trace at day 7).
    let mid: Trace = attacked
        .records()
        .iter()
        .filter(|r| r.time < 7 * DAY_S)
        .cloned()
        .collect();
    let p_mid = run(&mid, cfg.sample_period);
    assert!(
        p_mid.network_attack().is_some(),
        "attack must be visible while in progress"
    );

    // After a week of clean data the signature has decayed.
    let p_end = run(&attacked, cfg.sample_period);
    assert_eq!(
        p_end.network_attack(),
        None,
        "signature must fade a week after the attack ends"
    );
}

#[test]
fn clustering_tracks_slow_climate_trend() {
    // A +0.4 °C/day heat trend over a month moves every state ~12 °C;
    // the EWMA clustering must follow without fabricating alarms.
    let mut cfg = gdi::month_config();
    cfg.duration = 30 * DAY_S;
    if let sentinet_sim::EnvironmentModel::Diurnal(p) = &mut cfg.environment {
        p.trend_per_day = 0.4;
    } else {
        panic!("gdi config is diurnal");
    }
    let trace = simulate(&cfg, &mut StdRng::seed_from_u64(15));
    let p = run(&trace, cfg.sample_period);
    assert_eq!(p.network_attack(), None, "a climate trend is not an attack");
    for id in p.sensor_ids() {
        assert_eq!(p.classify(id), Diagnosis::ErrorFree, "{id}");
    }
    // The hottest tracked state must exceed the untrended maximum.
    let states = p.model_states().unwrap();
    let hottest = states
        .active_states()
        .into_iter()
        .filter_map(|s| states.centroid(s).map(|c| c[0]))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        hottest > 33.0,
        "hottest state {hottest} did not track the trend"
    );
}

#[test]
fn sequential_fault_then_attack_soak() {
    // A month-long soak: sensor 6 sticks during week 2 and recovers
    // (serviced); ⅓ of sensors mount a deletion attack in week 4.
    // Diagnoses must follow the timeline.
    let (clean, cfg) = clean_trace(28, 16);
    let mut rng = StdRng::seed_from_u64(160);
    let with_fault = inject_faults(
        &clean,
        &[FaultInjection {
            sensor: SensorId(6),
            model: FaultModel::StuckAt {
                value: vec![15.0, 1.0],
            },
            start: 7 * DAY_S,
            end: Some(14 * DAY_S),
        }],
        &cfg.ranges,
        &mut rng,
    );
    let trace = inject_attacks(
        &with_fault,
        &[AttackInjection::from_onset(
            first_k_sensors(3),
            AttackModel::DynamicDeletion {
                freeze_at: vec![12.0, 94.0],
            },
            21 * DAY_S,
        )],
        &cfg.ranges,
    );

    // End of week 2: the stuck fault dominates, no attack yet.
    let week2: Trace = trace
        .records()
        .iter()
        .filter(|r| r.time < 14 * DAY_S)
        .cloned()
        .collect();
    let p2 = run(&week2, cfg.sample_period);
    assert_eq!(p2.network_attack(), None);
    assert!(matches!(
        p2.classify(SensorId(6)),
        Diagnosis::Error(ErrorType::StuckAt { .. })
    ));

    // End of month: the attack signature dominates the network verdict,
    // the serviced sensor's old fault has aged out of the estimators.
    let p4 = run(&trace, cfg.sample_period);
    assert!(
        matches!(
            p4.network_attack(),
            Some(AttackType::DynamicDeletion { .. })
        ),
        "{:?}",
        p4.network_attack()
    );
    // Sensor 6's track closed after servicing (its filtered alarm
    // cleared once the fault ended).
    let tracks = p4.tracks(SensorId(6)).unwrap();
    assert!(tracks.iter().all(|t| t.closed.is_some()), "{tracks:?}");
}

#[test]
fn coordination_grouping_separates_attackers_from_fault() {
    // Three coordinated attackers and one independently stuck sensor:
    // the Fig. 5 tree gives all four the attack verdict, but the
    // coordination grouping isolates the loner.
    let (clean, cfg) = clean_trace(12, 17);
    let mut rng = StdRng::seed_from_u64(170);
    let with_fault = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(6),
            FaultModel::StuckAt {
                value: vec![15.0, 1.0],
            },
            DAY_S,
        )],
        &cfg.ranges,
        &mut rng,
    );
    let trace = inject_attacks(
        &with_fault,
        &[AttackInjection::from_onset(
            first_k_sensors(3),
            AttackModel::DynamicDeletion {
                freeze_at: vec![12.0, 94.0],
            },
            6 * DAY_S,
        )],
        &cfg.ranges,
    );
    // A concurrent fault plus 3 attackers leaves only 6 of 10 honest
    // sensors; relax the decisiveness bar accordingly (cf. server_farm).
    let mut p = Pipeline::new(
        PipelineConfig {
            majority_fraction: 0.55,
            ..Default::default()
        },
        cfg.sample_period,
    );
    p.process_trace(&trace);
    let groups = p.coordinated_groups();
    // The three attackers share a signature; sensor 6 stands alone.
    let attacker_group = groups
        .iter()
        .find(|g| g.contains(&SensorId(0)))
        .expect("attackers alarmed");
    assert!(
        attacker_group.contains(&SensorId(1)) && attacker_group.contains(&SensorId(2)),
        "attackers must group together: {groups:?}"
    );
    assert!(
        !attacker_group.contains(&SensorId(6)),
        "the stuck sensor must not join the attacker group: {groups:?}"
    );
    let loner = groups
        .iter()
        .find(|g| g.contains(&SensorId(6)))
        .expect("stuck sensor alarmed");
    assert_eq!(loner.len(), 1, "{groups:?}");
}

#[test]
fn confidence_separates_strong_verdicts_from_weak() {
    let (clean, cfg) = clean_trace(14, 2);
    let mut rng = StdRng::seed_from_u64(20);
    let faulty = inject_faults(
        &clean,
        &[FaultInjection::from_onset(
            SensorId(6),
            FaultModel::StuckAt {
                value: vec![15.0, 1.0],
            },
            DAY_S,
        )],
        &cfg.ranges,
        &mut rng,
    );
    let p = run(&faulty, cfg.sample_period);

    let (d6, c6) = p.classify_with_confidence(SensorId(6));
    assert!(matches!(d6, Diagnosis::Error(ErrorType::StuckAt { .. })));
    assert!(
        c6 > 0.8,
        "two weeks of stuck data must be high confidence: {c6}"
    );

    let (d9, c9) = p.classify_with_confidence(SensorId(9));
    assert_eq!(d9, Diagnosis::ErrorFree);
    assert!(c9 > 0.5, "a mature clean verdict carries confidence: {c9}");

    // A pipeline that has barely seen data must not be confident.
    let short: Trace = faulty
        .records()
        .iter()
        .filter(|r| r.time < 4 * 3600)
        .cloned()
        .collect();
    let p_short = run(&short, cfg.sample_period);
    let (_, c_short) = p_short.classify_with_confidence(SensorId(9));
    assert!(
        c_short < c9,
        "immature verdict must score lower: {c_short} vs {c9}"
    );
}
