//! Offline stand-in for the subset of `proptest 1` this workspace's
//! property tests use.
//!
//! Supported surface: the `proptest!` macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! range/tuple/`Just`/`any::<bool>()` strategies,
//! `prop::collection::vec`, `prop::sample::select`, string-pattern
//! strategies (approximated), `.prop_map`, and the `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!` macros.
//!
//! Unlike the real crate there is no shrinking and no persisted
//! failure seeds: each test runs a fixed number of deterministic cases
//! seeded from the test's name.

/// Deterministic SplitMix64 generator driving the case inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// A generator seeded from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[lo, hi)` (`hi > lo`).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

/// Per-test configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Always-the-same-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64() * 2e3 - 1e3
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Approximate string strategy: `&str` patterns generate random
/// printable-ASCII strings. A trailing `{lo,hi}` repetition bound is
/// honored; the pattern body itself is not interpreted.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 32));
        let len = if hi > lo {
            rng.usize_in(lo, hi + 1)
        } else {
            lo
        };
        (0..len)
            .map(|_| (32 + (rng.next_u64() % 95) as u8) as char)
            .collect()
    }
}

fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    let body = pattern.get(open + 1..close)?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi > self.size.lo + 1 {
                rng.usize_in(self.size.lo, self.size.hi)
            } else {
                self.size.lo
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy picking one of a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// A strategy drawing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.usize_in(0, self.0.len())].clone()
        }
    }
}

/// Everything tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy, TestCaseError};

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Mirrors `proptest::proptest!` without shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_and_tuples((a, b) in (0u16..4, -1.0f64..1.0), k in 1usize..6) {
            prop_assert!(a < 4);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!((1..6).contains(&k));
        }

        fn vec_and_map(xs in prop::collection::vec(0usize..3, 2..30).prop_map(|v| v.len())) {
            prop_assert!((2..30).contains(&xs));
        }

        fn select_and_just(
            s in prop::sample::select(vec![-5.0f64, 2.0]),
            j in Just(7u8),
            flag in any::<bool>(),
        ) {
            prop_assert!(s == -5.0 || s == 2.0);
            prop_assert_eq!(j, 7u8);
            prop_assume!(flag || !flag);
        }

        fn string_pattern(lines in prop::collection::vec(".{0,40}", 0..20)) {
            for l in &lines {
                prop_assert!(l.len() <= 40);
            }
        }
    }
}
