//! Offline stand-in for the subset of `criterion 0.5` this workspace
//! uses: `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Timing is a simple warm-up-then-sample loop reporting min/mean wall
//! time per iteration — adequate for relative comparisons on one
//! machine, with none of the real crate's statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted, not interpreted).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Collects timing samples for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over several iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        while self.samples.len() < 3 || (start.elapsed() < budget && self.samples.len() < 200) {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        while self.samples.len() < 3 || (start.elapsed() < budget && self.samples.len() < 200) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

/// Registry of benchmarks; prints one line per benchmark.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` with a [`Bencher`] and reports the timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        let n = bencher.samples.len().max(1) as u32;
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / n;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{id:<40} time: [min {} mean {}] ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            n
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
