//! Offline stand-in for the subset of `crossbeam 0.8` this workspace
//! uses: `thread::scope` with crossbeam's closure signature (the spawn
//! closure receives a `&Scope`), and MPMC-ish channels.
//!
//! Scoped threads delegate to `std::thread::scope`; channels wrap
//! `std::sync::mpsc` with an `Arc<Mutex<_>>` receiver so both halves
//! are cloneable like crossbeam's.

/// Scoped threads mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// A scope handle whose `spawn` closures receive the scope again,
    /// matching crossbeam's `scope.spawn(|scope| ...)` signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle joining a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which threads can borrow from the
    /// enclosing environment. Panics of unjoined children propagate as
    /// panics (the real crate returns them as `Err`); joined-child
    /// errors surface through [`ScopedJoinHandle::join`] as usual.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Channels mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned when the receiving side is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Cloneable sending half.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if all receivers are dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Cloneable receiving half (receives are serialized internally).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, failing once the channel is
        /// empty and all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("channel receiver poisoned")
                .recv()
                .map_err(|mpsc::RecvError| RecvError)
        }

        /// Drains messages until the channel closes.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// A "bounded" channel (backpressure is not emulated).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }
}
