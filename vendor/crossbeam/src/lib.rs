//! Offline stand-in for the subset of `crossbeam 0.8` this workspace
//! uses: `thread::scope` with crossbeam's closure signature (the spawn
//! closure receives a `&Scope`), and MPMC-ish channels.
//!
//! Scoped threads delegate to `std::thread::scope`; channels wrap
//! `std::sync::mpsc` with an `Arc<Mutex<_>>` receiver so both halves
//! are cloneable like crossbeam's.

/// Scoped threads mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// A scope handle whose `spawn` closures receive the scope again,
    /// matching crossbeam's `scope.spawn(|scope| ...)` signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle joining a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which threads can borrow from the
    /// enclosing environment. Panics of unjoined children propagate as
    /// panics (the real crate returns them as `Err`); joined-child
    /// errors surface through [`ScopedJoinHandle::join`] as usual.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Channels mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned when the receiving side is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline; senders may still
        /// be alive.
        Timeout,
        /// The channel is empty and every sender is dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is momentarily empty; senders may still be
        /// alive.
        Empty,
        /// The channel is empty and every sender is dropped.
        Disconnected,
    }

    /// Sending half: either an unbounded `mpsc::Sender` or a
    /// backpressured `mpsc::SyncSender`, so `bounded` channels really
    /// block producers like crossbeam's do.
    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
            }
        }
    }

    /// Cloneable sending half.
    pub struct Sender<T> {
        inner: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if all receivers are dropped.
        /// On a bounded channel this blocks while the buffer is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Tx::Unbounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// Cloneable receiving half (receives are serialized internally).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, failing once the channel is
        /// empty and all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("channel receiver poisoned")
                .recv()
                .map_err(|mpsc::RecvError| RecvError)
        }

        /// Blocks until a message arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner
                .lock()
                .expect("channel receiver poisoned")
                .recv_timeout(timeout)
                .map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                    mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
                })
        }

        /// Returns a buffered message if one is ready, without
        /// blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner
                .lock()
                .expect("channel receiver poisoned")
                .try_recv()
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
        }

        /// Drains messages until the channel closes.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Tx::Unbounded(tx),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// A bounded FIFO channel with real backpressure: `send` blocks
    /// once `cap` messages are buffered. A capacity of zero is bumped
    /// to one (rendezvous channels deadlock single-threaded callers).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (
            Sender {
                inner: Tx::Bounded(tx),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = super::channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // Buffer full: a third send must block until the consumer
        // drains, which we prove by sending from another thread.
        let handle = std::thread::spawn(move || {
            tx.send(3).unwrap();
            "sent"
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(handle.join().unwrap(), "sent");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnect() {
        use super::channel::TryRecvError;
        let (tx, rx) = super::channel::bounded::<i32>(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = super::channel::bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
