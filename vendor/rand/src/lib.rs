//! Offline stand-in for the subset of `rand 0.8` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of APIs it actually calls: `Rng::{gen,
//! gen_range, gen_bool}`, `SeedableRng::seed_from_u64`, and a
//! deterministic [`rngs::StdRng`]. The generator is SplitMix64 rather
//! than the real crate's ChaCha-based `StdRng`; streams are stable
//! across runs and platforms, which is all the workspace relies on.

/// Source of random 64-bit words.
pub trait RngCore {
    /// The next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw of `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for the real
    /// crate's ChaCha-based `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x3 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&f));
            let s = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
