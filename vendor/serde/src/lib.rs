//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types
//! but never invokes an actual (de)serializer, so marker traits are
//! enough to satisfy every bound. The derive macros re-exported here
//! emit empty impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
