//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` crate defines `Serialize`/`Deserialize` as
//! marker traits with no methods, so the derives only need to emit an
//! empty `impl` for the annotated type. No `syn`/`quote`: the input is
//! token-scanned for the `struct`/`enum` keyword and the following
//! identifier.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stub: could not find type name in derive input");
}

/// Emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
