//! Seeded-bad fixture: with a lib-root context registering `hot` as a
//! hot-path function, every one of the eighteen lints fires exactly
//! once. (This file is test data — it is never compiled.)

pub fn violations(maybe: Option<u32>, x: f64) -> u32 {
    let a = maybe.unwrap();
    let b = maybe.expect("present");
    if x == 1.0 {
        panic!("boom");
    }
    dbg!(a);
    let _rng = thread_rng();
    std::thread::spawn(|| {});
    a + b
}

pub fn crashy(payload: Box<dyn std::any::Any + Send>) {
    let (_tx, _rx) = unbounded::<u32>();
    std::panic::resume_unwind(payload);
}

pub fn hot(buf: &mut Vec<f64>, other: &[f64]) {
    *buf = other.to_vec();
}

pub fn leaky_socket(stream: &mut std::net::TcpStream, buf: &mut [u8]) {
    let _ = stream.read(buf);
}

pub fn sneaky_write(dir: &std::path::Path) {
    let _ = std::fs::write(dir.join("out"), b"x");
}

pub fn leaky_ack(w: &mut impl std::io::Write, sensor: u16, seq: u64) {
    let frame = encode(Message::AckUpTo { sensor, seq });
    let _ = w.write_all(&frame);
}

pub fn rogue_reassign(map: &mut PartitionMap) {
    map.commit_owner(0, 2);
}

// sentinet-allow(float-eq): stale — the comparison this excused was rewritten
pub fn formerly_fuzzy(x: f64) -> f64 {
    x.max(0.0)
}
