//! A well-formed crate root: headers present, no panics, no prints.
//! (This file is test data — it is never compiled.)

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Adds one, fallibly.
pub fn add_one(x: u32) -> Option<u32> {
    x.checked_add(1)
}
