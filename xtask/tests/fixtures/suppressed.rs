//! The same violations as `bad_lib.rs`, each silenced by an inline
//! `sentinet-allow` with a reason. The lint engine must report nothing.
//! (This file is test data — it is never compiled.)

pub fn suppressed(maybe: Option<u32>, x: f64) -> u32 {
    // sentinet-allow(unwrap-used): fixture exercises suppression
    let a = maybe.unwrap();
    // sentinet-allow(expect-used): fixture exercises suppression
    let b = maybe.expect("present");
    // sentinet-allow(float-eq): fixture exercises suppression
    if x == 1.0 {
        // sentinet-allow(panic-used): fixture exercises suppression
        panic!("boom");
    }
    // sentinet-allow(dbg-used): fixture exercises suppression
    dbg!(a);
    // sentinet-allow(unseeded-rng): fixture exercises suppression
    let _rng = thread_rng();
    // sentinet-allow(thread-spawn): fixture exercises suppression
    std::thread::spawn(|| {});
    a + b
}

pub fn hot(buf: &mut Vec<f64>, other: &[f64]) {
    // sentinet-allow(hot-path-alloc): fixture exercises suppression
    *buf = other.to_vec();
}

pub fn crashy(payload: Box<dyn std::any::Any + Send>) {
    // sentinet-allow(unbounded-channel): fixture exercises suppression
    let (_tx, _rx) = unbounded::<u32>();
    // sentinet-allow(resume-unwind): fixture exercises suppression
    std::panic::resume_unwind(payload);
}

// sentinet-allow(net-outside-gateway): fixture exercises suppression
pub fn leaky_socket(stream: &mut std::net::TcpStream, buf: &mut [u8]) {
    // sentinet-allow(socket-read-timeout): fixture exercises suppression
    let _ = stream.read(buf);
}

pub fn sneaky_write(dir: &std::path::Path) {
    // sentinet-allow(io-outside-vfs): fixture exercises suppression
    let _ = std::fs::write(dir.join("out"), b"x");
}

pub fn leaky_ack(w: &mut impl std::io::Write, sensor: u16, seq: u64) {
    // sentinet-allow(ack-ordering): fixture exercises suppression
    let frame = encode(Message::AckUpTo { sensor, seq });
    let _ = w.write_all(&frame);
}

pub fn rogue_reassign(map: &mut PartitionMap) {
    // sentinet-allow(partition-map-mutation): fixture exercises suppression
    map.commit_owner(0, 2);
}

// sentinet-allow(stale-suppression): fixture exercises suppression
// sentinet-allow(float-eq): intentionally stale for the fixture
pub fn formerly_fuzzy(x: f64) -> f64 {
    x.max(0.0)
}
