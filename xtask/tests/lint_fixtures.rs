//! Fixture tests for the lint engine and the bench-report validator.
//!
//! The `.rs` files under `tests/fixtures/` are test data, never
//! compiled: `bad_lib.rs` makes every lint fire exactly once,
//! `suppressed.rs` silences the same violations with `sentinet-allow`,
//! and `clean_lib.rs` is a well-formed crate root. The exit-code tests
//! drive the compiled `xtask` binary so the CI contract (non-zero on
//! findings, zero when clean) is pinned directly.

use std::path::{Path, PathBuf};
use std::process::Command;
use xtask::bench_check;
use xtask::lint::{self, FileContext, LINTS};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read(name: &str) -> String {
    std::fs::read_to_string(fixture(name)).expect("fixture readable")
}

/// Lib-root context with `hot` registered as a hot-path function, so
/// the header and hot-path lints participate alongside the rest.
fn full_ctx() -> FileContext {
    FileContext {
        exempt_crate: false,
        is_lib_root: true,
        engine_crate: false,
        gateway_crate: false,
        controller_crate: false,
        controller_commit_file: false,
        supervisor_file: false,
        vfs_file: false,
        hot_functions: vec!["hot".into()],
    }
}

#[test]
fn bad_fixture_fires_every_lint_exactly_once() {
    let findings = lint::lint_source(&fixture("bad_lib.rs"), &read("bad_lib.rs"), &full_ctx());
    for lint in LINTS {
        let count = findings.iter().filter(|f| f.lint == *lint).count();
        assert_eq!(count, 1, "lint `{lint}` fired {count} times: {findings:?}");
    }
    assert_eq!(findings.len(), LINTS.len(), "{findings:?}");
}

#[test]
fn suppressed_fixture_is_silent() {
    let ctx = FileContext {
        hot_functions: vec!["hot".into()],
        ..FileContext::default()
    };
    let findings = lint::lint_source(&fixture("suppressed.rs"), &read("suppressed.rs"), &ctx);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn clean_fixture_passes_as_lib_root() {
    let findings = lint::lint_source(&fixture("clean_lib.rs"), &read("clean_lib.rs"), &full_ctx());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn bad_bench_fixture_reports_each_schema_violation() {
    let problems = bench_check::validate(&read("bad_bench.json"));
    let has = |needle: &str| problems.iter().any(|p| p.contains(needle));
    assert!(has("host_cpus"), "{problems:?}");
    assert!(has("monotone"), "{problems:?}");
    assert!(has("mode"), "{problems:?}");
    assert!(has("`windows_per_sec`"), "{problems:?}");
    assert!(has("`speedup_vs_serial`"), "{problems:?}");
    assert!(has("`fsync`"), "{problems:?}");
    assert!(has("`retention`"), "{problems:?}");
}

#[test]
fn lint_binary_exits_nonzero_on_seeded_bad_fixture() {
    let status = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg(fixture("bad_lib.rs"))
        .output()
        .expect("xtask binary runs");
    assert!(!status.status.success());
    let stderr = String::from_utf8_lossy(&status.stderr);
    assert!(stderr.contains("unwrap-used"), "{stderr}");
}

/// Pins the lint output contract shared by `xtask lint` and `xtask
/// analyze`: every finding is one stderr line of the form
/// `file:line: [lint] message`, followed by a `lint: N finding(s)`
/// summary whose count matches the number of finding lines.
#[test]
fn lint_binary_output_format_is_pinned() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg(fixture("bad_lib.rs"))
        .output()
        .expect("xtask binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    let lines: Vec<&str> = stderr.lines().filter(|l| !l.is_empty()).collect();
    let (summary, findings) = lines.split_last().expect("at least a summary line");
    assert!(!findings.is_empty(), "{stderr}");
    for line in findings {
        // `file:line: [lint] message` — path prefix, a numeric line, a
        // bracketed lint name, then the message.
        let rest = line
            .strip_prefix(&*fixture("bad_lib.rs").to_string_lossy())
            .unwrap_or_else(|| panic!("finding does not start with the file path: {line}"));
        let rest = rest.strip_prefix(':').expect("colon after path");
        let (line_no, rest) = rest.split_once(": [").expect("`: [` after line number");
        assert!(
            line_no.chars().all(|c| c.is_ascii_digit()) && !line_no.is_empty(),
            "non-numeric line number in: {line}"
        );
        let (lint_name, message) = rest.split_once("] ").expect("`] ` after lint name");
        assert!(
            lint::LINTS.contains(&lint_name),
            "unknown lint `{lint_name}` in: {line}"
        );
        assert!(!message.is_empty(), "empty message in: {line}");
    }
    assert_eq!(
        *summary,
        format!("lint: {} finding(s)", findings.len()),
        "summary count must match the finding lines\n{stderr}"
    );
}

#[test]
fn lint_binary_exits_zero_on_clean_fixture() {
    let status = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg(fixture("clean_lib.rs"))
        .status()
        .expect("xtask binary runs");
    assert!(status.success());
}

#[test]
fn bench_check_binary_exits_nonzero_on_bad_report() {
    let status = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("bench-check")
        .arg(fixture("bad_bench.json"))
        .status()
        .expect("xtask binary runs");
    assert!(!status.success());
}
