//! `cargo run -p xtask -- <command>` — workspace automation CLI.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xtask::{bench_check, lint, model_check, protocol_check};

const USAGE: &str = "\
Usage: cargo run -p xtask -- <command>

Commands:
  analyze [--skip-invariants]  run lints, the shard-schedule model checker,
                               the protocol/durability checker and (unless
                               skipped) the test suite under the
                               check-invariants feature
  lint [PATH...]               run the lint engine over the workspace, or
                               over the given files only
  model-check                  exhaustively explore shard schedules and
                               fault (crash/drop) schedules and assert
                               serial equivalence after recovery
  protocol-check               exhaustively explore v2 uplink interleavings
                               (loss, reorder, reconnect, crash, poisoned
                               WAL) against the durability invariants
  bench-check [FILE]           validate BENCH_engine.json (default) or FILE
  nemesis [--seed S] [--episodes N]
                               run the seeded nemesis campaign (default
                               seed 12648430, 200 episodes) composing
                               network, process and disk faults against
                               the in-process federation, then the
                               migration campaign (a live split and a
                               rebalance-back inside every episode, cut
                               probes against fenced former owners),
                               then prove the fence-check and cut-check
                               Skip mutations are caught
";

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level under the repo root")
        .to_path_buf()
}

/// Single reporting path for lint results: every finding goes to stderr
/// as `file:line: [lint] message`, then either `lint: clean` on stdout or
/// an Err carrying the `lint: N finding(s)` summary. Both the `lint`
/// subcommand and the `analyze` umbrella flow through here so their
/// output is identical; the format is pinned by the fixture tests.
fn report_findings(findings: &[lint::Finding]) -> Result<(), String> {
    for f in findings {
        eprintln!("{f}");
    }
    if findings.is_empty() {
        println!("lint: clean");
        Ok(())
    } else {
        Err(format!("lint: {} finding(s)", findings.len()))
    }
}

fn run_lint(paths: &[String]) -> Result<(), String> {
    let findings = if paths.is_empty() {
        lint::lint_workspace(&repo_root()).map_err(|e| format!("lint walk failed: {e}"))?
    } else {
        let mut findings = Vec::new();
        for p in paths {
            let path = PathBuf::from(p);
            let source =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let ctx = lint::FileContext::for_path(&path);
            findings.extend(lint::lint_source(&path, &source, &ctx));
        }
        findings
    };
    report_findings(&findings)
}

fn run_model_check() -> Result<(), String> {
    let report = model_check::explore().map_err(|e| format!("model-check: {e}"))?;
    println!(
        "model-check: {} schedules explored over {} windows × {} sensors, all bit-identical to serial",
        report.schedules, report.windows, report.sensors
    );
    if report.schedules < 24 {
        return Err(format!(
            "model-check: only {} schedules explored (expected ≥ 24); scenario too small",
            report.schedules
        ));
    }
    let faults = model_check::explore_faults().map_err(|e| format!("model-check: {e}"))?;
    println!(
        "model-check: {} fault schedules recovered bit-identically ({} quarantine check(s))",
        faults.schedules, faults.quarantines
    );
    Ok(())
}

fn run_protocol_check() -> Result<(), String> {
    match protocol_check::check(protocol_check::Scale::Full) {
        Ok(report) => {
            for (name, space) in &report.spaces {
                println!(
                    "protocol-check: space `{name}`: {} episodes, {} transitions",
                    space.episodes, space.transitions
                );
            }
            println!(
                "protocol-check: {} episodes, {} transitions across {} spaces, all invariants held",
                report.episodes(),
                report.transitions(),
                report.spaces.len()
            );
            if report.transitions() <= 10_000 {
                return Err(format!(
                    "protocol-check: only {} transitions explored (expected > 10000); \
                     the configured space is too small to be meaningful",
                    report.transitions()
                ));
            }
        }
        Err(v) => return Err(format!("protocol-check: invariant violated\n{v}")),
    }
    // Self-test: the checker must catch a deliberately broken ack
    // discipline (acks released before the WAL is synced). If the
    // mutation survives, the checker is blind and its green run above
    // proves nothing.
    match protocol_check::check_mutation(protocol_check::Scale::Quick) {
        Err(v) => {
            println!(
                "protocol-check: eager-ack mutation caught as expected ({} in space `{}`)",
                v.invariant, v.space
            );
            Ok(())
        }
        Ok(_) => {
            Err("protocol-check: eager-ack mutation survived undetected; checker is blind".into())
        }
    }
}

fn run_bench_check(file: Option<&str>) -> Result<(), String> {
    let path = match file {
        Some(f) => PathBuf::from(f),
        None => repo_root().join("BENCH_engine.json"),
    };
    let input = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let problems = bench_check::validate(&input);
    for p in &problems {
        eprintln!("{}: {p}", path.display());
    }
    if problems.is_empty() {
        println!("bench-check: {} valid", path.display());
        Ok(())
    } else {
        Err(format!("bench-check: {} problem(s)", problems.len()))
    }
}

/// The nemesis campaign runner: a pinned-seed randomized campaign over
/// the in-process federation, then the migration campaign (the same
/// fault families landing on live split/rebalance handoffs), followed
/// by the mutation self-tests — re-running short campaigns with the
/// deliver-path fence check ([`FenceCheck::Skip`]) and the migration
/// cut check ([`CutCheck::Skip`]) compiled out and requiring both to
/// FAIL. A checker that stays green under its own mutation proves
/// nothing.
fn run_nemesis(args: &[String]) -> Result<(), String> {
    use sentinet_controller::{run_campaign, NemesisConfig};
    use sentinet_gateway::{CutCheck, FenceCheck};

    let mut seed: u64 = 0xC0_FFEE;
    let mut episodes: u32 = 200;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("nemesis: {flag} needs a value"))
        };
        match flag.as_str() {
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("nemesis: bad --seed: {e}"))?
            }
            "--episodes" => {
                episodes = value("--episodes")?
                    .parse()
                    .map_err(|e| format!("nemesis: bad --episodes: {e}"))?
            }
            other => return Err(format!("nemesis: unknown flag {other:?}")),
        }
    }
    if episodes == 0 {
        return Err("nemesis: --episodes must be at least 1".into());
    }

    let scratch = std::env::temp_dir().join(format!("sentinet-nemesis-{}", std::process::id()));
    let summary = run_campaign(&NemesisConfig::new(
        seed,
        episodes,
        scratch.join("enforced"),
    ))
    .map_err(|f| format!("nemesis: {f}"))?;
    println!("nemesis: {summary}");
    if summary.failovers == 0 || summary.zombie_probes == 0 || summary.disk_episodes == 0 {
        return Err(format!(
            "nemesis: degenerate campaign (failovers {}, zombie probes {}, disk episodes {}); \
             a run that forces nothing proves nothing",
            summary.failovers, summary.zombie_probes, summary.disk_episodes
        ));
    }

    // The migration campaign: the same seed, with a live split and a
    // rebalance-back scheduled inside every episode so the fault plan
    // lands on the handoff ladder itself, plus cut probes against
    // fenced former owners of migrated ranges.
    let migration = run_campaign(
        &NemesisConfig::new(seed, episodes, scratch.join("migration")).with_migration(),
    )
    .map_err(|f| format!("nemesis: migration campaign: {f}"))?;
    println!("nemesis: migration campaign: {migration}");
    if migration.migrations != 2 * u64::from(migration.episodes) || migration.cut_probes == 0 {
        return Err(format!(
            "nemesis: degenerate migration campaign ({} migration(s) over {} episodes, \
             {} cut probe(s)); a run that moves nothing proves nothing",
            migration.migrations, migration.episodes, migration.cut_probes
        ));
    }

    let mut mutated = NemesisConfig::new(seed, episodes.min(12), scratch.join("fence-skip"));
    mutated.fence = FenceCheck::Skip;
    let fence_verdict: Result<(), String> = match run_campaign(&mutated) {
        Err(failure) => {
            println!("nemesis: fence-skip mutation caught as expected ({failure})");
            Ok(())
        }
        Ok(_) => {
            Err("nemesis: fence-skip mutation survived undetected; the campaign is blind".into())
        }
    };

    // The cut-check mutation ships an empty snapshot for the moved
    // range while still retiring it on the source; the migration
    // campaign must catch the loss.
    let mut cut =
        NemesisConfig::new(seed, episodes.min(8), scratch.join("cut-skip")).with_migration();
    cut.cut = CutCheck::Skip;
    let cut_verdict: Result<(), String> = match run_campaign(&cut) {
        Err(failure) => {
            println!("nemesis: cut-skip mutation caught as expected ({failure})");
            Ok(())
        }
        Ok(_) => Err(
            "nemesis: cut-skip mutation survived undetected; the migration campaign is blind"
                .into(),
        ),
    };
    // The mutated runs fail by design; their debris is not a debugging
    // artifact worth keeping.
    let _ = std::fs::remove_dir_all(&scratch);
    fence_verdict.and(cut_verdict)
}

fn run_invariant_tests() -> Result<(), String> {
    println!("invariants: running numeric test suites with --features check-invariants");
    let status = std::process::Command::new(env!("CARGO"))
        .current_dir(repo_root())
        .args([
            "test",
            "-q",
            "-p",
            "sentinet-hmm",
            "-p",
            "sentinet-cluster",
            "-p",
            "sentinet-core",
            "-p",
            "sentinet-engine",
            "--features",
            "sentinet-core/check-invariants,sentinet-engine/check-invariants",
        ])
        .status()
        .map_err(|e| format!("invariants: failed to spawn cargo: {e}"))?;
    if status.success() {
        println!("invariants: test suite green under check-invariants");
        Ok(())
    } else {
        Err("invariants: test suite failed under check-invariants".into())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("analyze") => {
            let skip_invariants = args.iter().any(|a| a == "--skip-invariants");
            let mut failures = Vec::new();
            for step in [
                run_lint(&[]),
                run_model_check(),
                run_protocol_check(),
                run_bench_check(None),
                if skip_invariants {
                    Ok(())
                } else {
                    run_invariant_tests()
                },
            ] {
                if let Err(e) = step {
                    eprintln!("{e}");
                    failures.push(e);
                }
            }
            if failures.is_empty() {
                println!("analyze: all checks passed");
                Ok(())
            } else {
                Err(format!("analyze: {} check(s) failed", failures.len()))
            }
        }
        Some("lint") => run_lint(&args[1..]),
        Some("model-check") => run_model_check(),
        Some("protocol-check") => run_protocol_check(),
        Some("bench-check") => run_bench_check(args.get(1).map(String::as_str)),
        Some("nemesis") => run_nemesis(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
