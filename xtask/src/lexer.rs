//! A small hand-rolled Rust lexer for the project lint engine.
//!
//! The lints in [`crate::lint`] are textual, so before matching they
//! need a view of the source where comments and literal contents
//! cannot produce false positives. [`SourceMap::new`] produces that
//! view:
//!
//! - `masked` is the source with every comment and every string/char
//!   literal body replaced by spaces (newlines kept, so byte offsets
//!   and line numbers are unchanged);
//! - `suppressions` lists every `// sentinet-allow(lint): reason`
//!   comment with its line;
//! - `test_regions` covers `#[cfg(test)] mod … { … }` blocks and
//!   `#[test] fn … { … }` bodies, which most lints exempt.
//!
//! This is deliberately not a full parser: it understands exactly the
//! token classes needed to blank out non-code text (line and nested
//! block comments, plain/raw/byte strings, char literals vs.
//! lifetimes) and to match braces.

/// One `// sentinet-allow(lint-name): reason` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line of the comment.
    pub line: usize,
    /// The lint name inside the parentheses.
    pub lint: String,
    /// Whether a non-empty reason follows the `):`.
    pub has_reason: bool,
}

/// Masked view of one source file plus the lint-relevant side tables.
#[derive(Debug)]
pub struct SourceMap {
    /// Source with comments and literal bodies blanked (same length).
    pub masked: String,
    /// Every `sentinet-allow` comment found, in line order.
    pub suppressions: Vec<Suppression>,
    /// Byte ranges (in `masked`) of test-only code.
    pub test_regions: Vec<(usize, usize)>,
    /// For each 0-based line: byte offset of its first character.
    pub line_starts: Vec<usize>,
    /// For each 0-based line: true if it holds no code (blank, or only
    /// comments). Used to let a suppression cover the statement that
    /// follows a run of comment lines.
    pub comment_only: Vec<bool>,
}

impl SourceMap {
    /// Lexes `source` into a masked view.
    pub fn new(source: &str) -> Self {
        let bytes = source.as_bytes();
        let mut masked: Vec<u8> = Vec::with_capacity(bytes.len());
        let mut suppressions = Vec::new();
        let mut line = 1usize;
        let mut i = 0usize;

        // Blank a byte (newlines survive so offsets/lines are stable).
        fn blank(out: &mut Vec<u8>, b: u8) {
            out.push(if b == b'\n' { b'\n' } else { b' ' });
        }

        while i < bytes.len() {
            let b = bytes[i];
            match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    let end = bytes[i..]
                        .iter()
                        .position(|&c| c == b'\n')
                        .map(|p| i + p)
                        .unwrap_or(bytes.len());
                    let text = &source[i..end];
                    if let Some(s) = parse_allow(text, line) {
                        suppressions.push(s);
                    }
                    for &c in &bytes[i..end] {
                        blank(&mut masked, c);
                    }
                    i = end;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    let mut depth = 1usize;
                    blank(&mut masked, b'/');
                    blank(&mut masked, b'*');
                    i += 2;
                    while i < bytes.len() && depth > 0 {
                        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                            depth += 1;
                            blank(&mut masked, bytes[i]);
                            blank(&mut masked, bytes[i + 1]);
                            i += 2;
                        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                            depth -= 1;
                            blank(&mut masked, bytes[i]);
                            blank(&mut masked, bytes[i + 1]);
                            i += 2;
                        } else {
                            if bytes[i] == b'\n' {
                                line += 1;
                            }
                            blank(&mut masked, bytes[i]);
                            i += 1;
                        }
                    }
                }
                b'"' => i = mask_string(bytes, i, &mut masked, &mut line),
                b'r' | b'b'
                    if is_raw_or_byte_string(bytes, i) && !prev_is_ident(bytes, i, &masked) =>
                {
                    i = mask_raw_or_byte(bytes, i, &mut masked, &mut line);
                }
                b'\'' => {
                    if is_char_literal(bytes, i) {
                        i = mask_char(bytes, i, &mut masked);
                    } else {
                        // A lifetime: keep it.
                        masked.push(b'\'');
                        i += 1;
                    }
                }
                _ => {
                    if b == b'\n' {
                        line += 1;
                    }
                    masked.push(b);
                    i += 1;
                }
            }
        }

        let masked = String::from_utf8(masked).unwrap_or_default();
        let line_starts = compute_line_starts(&masked);
        let comment_only = compute_comment_only(source, &masked, &line_starts);
        let test_regions = find_test_regions(&masked);
        Self {
            masked,
            suppressions,
            test_regions,
            line_starts,
            comment_only,
        }
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether byte `offset` falls inside test-only code.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Whether a finding of `lint` on 1-based `line` is suppressed: a
    /// `sentinet-allow(lint)` comment sits on the same line, or on the
    /// run of comment-only lines directly above it.
    pub fn is_suppressed(&self, lint: &str, line: usize) -> bool {
        self.covering_suppression(lint, line).is_some()
    }

    /// The line of the `sentinet-allow(lint)` comment that suppresses a
    /// finding of `lint` on 1-based `line`, if any — same coverage rule
    /// as [`SourceMap::is_suppressed`]. The lint engine records which
    /// suppression lines were actually consumed so the
    /// `stale-suppression` lint can flag the rest.
    pub fn covering_suppression(&self, lint: &str, line: usize) -> Option<usize> {
        let covers = |sup: &&Suppression| sup.lint == lint && sup.has_reason;
        if let Some(sup) = self
            .suppressions
            .iter()
            .find(|s| s.line == line && covers(s))
        {
            return Some(sup.line);
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let idx = l - 1;
            if idx >= self.comment_only.len() || !self.comment_only[idx] {
                return None;
            }
            if let Some(sup) = self.suppressions.iter().find(|s| s.line == l && covers(s)) {
                return Some(sup.line);
            }
        }
        None
    }
}

fn parse_allow(comment: &str, line: usize) -> Option<Suppression> {
    let rest = comment.split("sentinet-allow(").nth(1)?;
    let close = rest.find(')')?;
    let lint = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
    Some(Suppression {
        line,
        lint,
        has_reason,
    })
}

fn prev_is_ident(bytes: &[u8], i: usize, _masked: &[u8]) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    match bytes.get(j) {
        Some(b'"') => true,
        Some(b'\'') => bytes[i] == b'b', // byte char b'x'
        Some(b'r') => {
            let mut k = j + 1;
            while bytes.get(k) == Some(&b'#') {
                k += 1;
            }
            bytes.get(k) == Some(&b'"')
        }
        _ => false,
    }
}

fn mask_string(bytes: &[u8], start: usize, out: &mut Vec<u8>, line: &mut usize) -> usize {
    out.push(b' ');
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                out.push(b' ');
                if bytes[i + 1] == b'\n' {
                    *line += 1;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 2;
            }
            b'"' => {
                out.push(b' ');
                return i + 1;
            }
            b'\n' => {
                *line += 1;
                out.push(b'\n');
                i += 1;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

fn mask_raw_or_byte(bytes: &[u8], start: usize, out: &mut Vec<u8>, line: &mut usize) -> usize {
    let mut i = start;
    if bytes[i] == b'b' {
        out.push(b' ');
        i += 1;
    }
    if bytes.get(i) == Some(&b'\'') {
        // Byte char literal b'x'.
        return mask_char(bytes, i, out);
    }
    if bytes.get(i) == Some(&b'"') {
        return mask_string(bytes, i, out, line);
    }
    // Raw string r#*"..."#*.
    out.push(b' '); // the 'r'
    i += 1;
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        out.push(b' ');
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i;
    }
    out.push(b' ');
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                for _ in 0..=hashes {
                    out.push(b' ');
                }
                return i + 1 + hashes;
            }
        }
        if bytes[i] == b'\n' {
            *line += 1;
            out.push(b'\n');
        } else {
            out.push(b' ');
        }
        i += 1;
    }
    i
}

fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

fn mask_char(bytes: &[u8], start: usize, out: &mut Vec<u8>) -> usize {
    out.push(b' ');
    let mut i = start + 1;
    if bytes.get(i) == Some(&b'\\') {
        out.push(b' ');
        out.push(b' ');
        i += 2;
    } else if i < bytes.len() {
        out.push(b' ');
        i += 1;
    }
    // Consume up to the closing quote (unicode escapes span bytes).
    while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
        out.push(b' ');
        i += 1;
    }
    if bytes.get(i) == Some(&b'\'') {
        out.push(b' ');
        i += 1;
    }
    i
}

fn compute_line_starts(s: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in s.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn compute_comment_only(source: &str, masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let n = line_starts.len();
    let mut flags = Vec::with_capacity(n);
    for (idx, &start) in line_starts.iter().enumerate() {
        let end = line_starts
            .get(idx + 1)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(masked.len());
        let masked_line = masked.get(start..end).unwrap_or("");
        let source_line = source.get(start..end).unwrap_or("");
        let no_code = masked_line.trim().is_empty();
        let has_comment = source_line.contains("//") || source_line.contains("/*");
        flags.push(no_code && (has_comment || source_line.trim().is_empty()));
    }
    flags
}

/// Finds `#[cfg(test)] mod … { … }` and `#[test] fn … { … }` spans in
/// the masked source.
fn find_test_regions(masked: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for marker in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0usize;
        while let Some(pos) = masked[from..].find(marker) {
            let at = from + pos;
            from = at + marker.len();
            if let Some((open, close)) = item_body_after(masked, at + marker.len()) {
                regions.push((open, close));
            }
        }
    }
    regions
}

/// From `start`, skips whitespace and further attributes, then finds
/// the brace-matched body of the next item. Returns `(open, close)`
/// byte offsets, `close` exclusive.
fn item_body_after(masked: &str, start: usize) -> Option<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut i = start;
    // Skip whitespace and stacked attributes like #[allow(...)].
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if bytes.get(i) == Some(&b'#') && bytes.get(i + 1) == Some(&b'[') {
            let mut depth = 0usize;
            while i < bytes.len() {
                match bytes[i] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            break;
        }
    }
    let open = masked[i..].find('{').map(|p| i + p)?;
    // An item signature never legitimately spans a `}` before its body
    // opens; bail out if one appears (attribute on a non-block item).
    if masked[i..open].contains('}') || masked[i..open].contains(';') {
        return None;
    }
    let close = match_brace(masked, open)?;
    Some((open, close + 1))
}

/// Offset of the `}` matching the `{` at `open` (masked text).
pub fn match_brace(masked: &str, open: usize) -> Option<usize> {
    let bytes = masked.as_bytes();
    debug_assert_eq!(bytes.get(open), Some(&b'{'));
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"panic!()\"; // panic!()\nlet y = 1;";
        let map = SourceMap::new(src);
        assert!(!map.masked.contains("panic"));
        assert!(map.masked.contains("let y = 1;"));
        assert_eq!(map.masked.len(), src.len());
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let s = r#\"unwrap()\"#; let c = '\\n'; let l: &'static str = \"x\";";
        let map = SourceMap::new(src);
        assert!(!map.masked.contains("unwrap"));
        assert!(map.masked.contains("&'static str"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ c */ let z = 2;";
        let map = SourceMap::new(src);
        assert!(!map.masked.contains('a'));
        assert!(map.masked.contains("let z = 2;"));
    }

    #[test]
    fn finds_suppressions_and_coverage() {
        let src = "// sentinet-allow(float-eq): exact sentinel\n// more words\nif x == 0.0 {}\nif y == 0.0 {}\n";
        let map = SourceMap::new(src);
        assert_eq!(map.suppressions.len(), 1);
        assert!(map.is_suppressed("float-eq", 3));
        assert!(!map.is_suppressed("float-eq", 4));
        assert!(!map.is_suppressed("unwrap-used", 3));
    }

    #[test]
    fn reasonless_suppression_does_not_apply() {
        let src = "// sentinet-allow(unwrap-used)\nlet v = o.unwrap();\n";
        let map = SourceMap::new(src);
        assert_eq!(map.suppressions.len(), 1);
        assert!(!map.suppressions[0].has_reason);
        assert!(!map.is_suppressed("unwrap-used", 2));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod_and_test_fn() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n#[test]\nfn t() { y.unwrap(); }\n";
        let map = SourceMap::new(src);
        assert_eq!(map.test_regions.len(), 2);
        let helper_at = src.find("helper").unwrap();
        assert!(map.in_test_region(helper_at));
        let y_at = src.find("y.unwrap").unwrap();
        assert!(map.in_test_region(y_at));
        let x_at = src.find("x.unwrap").unwrap();
        assert!(!map.in_test_region(x_at));
    }

    #[test]
    fn line_of_maps_offsets() {
        let map = SourceMap::new("a\nbb\nccc\n");
        assert_eq!(map.line_of(0), 1);
        assert_eq!(map.line_of(2), 2);
        assert_eq!(map.line_of(5), 3);
    }
}
