//! The project lint engine.
//!
//! Eighteen textual lints over the workspace's library crates, built
//! on the masked source view of [`crate::lexer`] — no rustc plugin,
//! fully offline. Findings are suppressed inline with
//! `// sentinet-allow(lint-name): reason` on the same line or on the
//! comment block directly above; the reason is mandatory.
//!
//! | lint | fires on |
//! |---|---|
//! | `unwrap-used` | `.unwrap()` in library code |
//! | `expect-used` | `.expect(…)` in library code |
//! | `panic-used` | `panic!` / `unreachable!` / `todo!` / `unimplemented!` |
//! | `dbg-used` | `dbg!` / `println!` / `print!` / `eprintln!` / `eprint!` |
//! | `float-eq` | `==` / `!=` with a float-literal operand |
//! | `unseeded-rng` | `thread_rng` / `from_entropy` / `rand::random` |
//! | `missing-forbid-unsafe` | `lib.rs` without `#![forbid(unsafe_code)]` |
//! | `missing-deny-docs` | `lib.rs` without `#![deny(missing_docs)]` |
//! | `hot-path-alloc` | allocation markers in registered hot functions |
//! | `thread-spawn` | `thread::spawn` outside `crates/engine` / `crates/gateway` |
//! | `resume-unwind` | `resume_unwind` outside the engine supervisor |
//! | `unbounded-channel` | `unbounded` channels outside the engine supervisor |
//! | `net-outside-gateway` | `std::net` / `std::os::unix::net` outside `crates/gateway` |
//! | `socket-read-timeout` | socket reads in a file that never sets a read timeout |
//! | `io-outside-vfs` | raw filesystem mutation outside `gateway/src/vfs.rs` |
//! | `ack-ordering` | fn writing an `Ack`/`AckUpTo` to the wire with no durability check first |
//! | `partition-map-mutation` | `.commit_owner(` / `.commit_health(` / `.split_at(` / `.transfer(` outside the federation commit path |
//! | `stale-suppression` | `sentinet-allow` comment that no longer suppresses any finding |
//!
//! Test code (`#[cfg(test)] mod`s and `#[test]` fns) is exempt from
//! all except the header lints, and the `cli`/`bench` crates are
//! exempt from the panic-family, `dbg-used` and header lints (they are
//! terminal programs where aborting and printing are the interface).
//! `assert!`/`debug_assert!` are deliberately allowed: validated
//! preconditions are part of the API contract. Crash recovery is the
//! engine supervisor's monopoly: everywhere else, a worker panic must
//! surface as a typed `ShardError` (never be re-raised) and channels
//! must be bounded so a stuck consumer back-pressures instead of
//! buffering without limit. Live network I/O is likewise the gateway's
//! monopoly: raw sockets elsewhere would bypass its framing, dedup,
//! WAL, and backpressure, and any file naming a socket stream type
//! that reads from it must configure a read timeout so a dead peer
//! cannot wedge a thread forever. Durable file mutation is the storage
//! layer's monopoly (`io-outside-vfs`): a raw `File::create`,
//! `OpenOptions`, or `std::fs` write outside `gateway::vfs` would
//! bypass the injectable `Vfs` seam, so disk-fault chaos could never
//! reach it and its fsync/crash semantics would go untested.
//!
//! The ack-after-durable rule of the pipelined protocol gets its own
//! dataflow pass (`ack-ordering`): a function body that constructs a
//! `Message::Ack` or `Message::AckUpTo` and also writes to the wire
//! (`write_all`) must check durability first — an earlier
//! `synced_cursor`/`sync_wal` consultation or a v1 `.deliver(` call
//! (which is durable-before-return by contract) on the same path.
//! Anything else is the eager-ack bug the protocol model checker
//! (`xtask protocol-check`) exists to catch. And suppression hygiene
//! is enforced by `stale-suppression`: a well-formed `sentinet-allow`
//! comment that no longer silences any actual finding is itself a
//! finding, so fixed code sheds its stale annotations instead of
//! carrying holes a future regression could slip through.

use crate::lexer::{match_brace, SourceMap};
use std::fmt;
use std::path::{Path, PathBuf};

/// Every lint name, for suppression validation.
pub const LINTS: &[&str] = &[
    "unwrap-used",
    "expect-used",
    "panic-used",
    "dbg-used",
    "float-eq",
    "unseeded-rng",
    "missing-forbid-unsafe",
    "missing-deny-docs",
    "hot-path-alloc",
    "thread-spawn",
    "resume-unwind",
    "unbounded-channel",
    "net-outside-gateway",
    "socket-read-timeout",
    "io-outside-vfs",
    "ack-ordering",
    "partition-map-mutation",
    "stale-suppression",
];

/// Needles whose word-bounded occurrence in a fn body marks an ack
/// construction (or pattern) the `ack-ordering` lint anchors on.
const ACK_NEEDLES: &[&str] = &["Message::Ack", "Message::AckUpTo"];

/// Occurrences that dominate an ack release: consulting the fsync
/// watermark, forcing it, or the v1 `.deliver(` path (durable before
/// it returns, by contract).
const ACK_DOMINATORS: &[&str] = &["synced_cursor", "sync_wal", ".deliver("];

/// Functions that must stay lexically allocation-free, keyed by a path
/// suffix of the file that defines them. These are the PR-1 hot paths:
/// the steady-state ingest/window/update code the benches measure.
pub const HOT_PATHS: &[(&str, &[&str])] = &[
    ("core/src/window.rs", &["push", "trimmed_mean_with"]),
    ("core/src/pipeline.rs", &["push_values"]),
    ("hmm/src/matrix.rs", &["reinforce"]),
    ("hmm/src/online.rs", &["observe"]),
];

/// Allocation markers searched inside hot-path function bodies.
/// `Vec::new()`/`.collect()` into pre-sized scratch are not markers:
/// the hot bodies reuse recycled buffers, and an empty `Vec::new` does
/// not touch the allocator.
const ALLOC_MARKERS: &[&str] = &[
    "vec![",
    ".to_vec()",
    ".to_owned()",
    ".to_string()",
    "String::from(",
    "format!",
    "Box::new(",
    "with_capacity(",
    ".clone()",
];

/// Crates whose code is a terminal program rather than a library.
const EXEMPT_CRATES: &[&str] = &["cli", "bench"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Lint name.
    pub lint: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// What the lint engine knows about the file being checked.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// The file belongs to an exempt (terminal-program) crate.
    pub exempt_crate: bool,
    /// The file is a crate root (`lib.rs`) subject to header lints.
    pub is_lib_root: bool,
    /// The file belongs to `crates/engine` (may spawn threads).
    pub engine_crate: bool,
    /// The file belongs to `crates/gateway` (may spawn threads and
    /// open sockets — live I/O is its monopoly).
    pub gateway_crate: bool,
    /// The file belongs to `crates/controller` (drives collectors over
    /// the gateway's live transports, so it shares the socket grant).
    pub controller_crate: bool,
    /// The file is the federation commit path
    /// (`controller/src/federation.rs`), the one place allowed to
    /// mutate partition-map ownership or health.
    pub controller_commit_file: bool,
    /// The file is the engine supervisor (may resume unwinds and own
    /// unbounded channels as part of crash recovery).
    pub supervisor_file: bool,
    /// The file is the storage abstraction (`gateway/src/vfs.rs`),
    /// the one place allowed to touch the real filesystem.
    pub vfs_file: bool,
    /// Hot-path function names registered for this file.
    pub hot_functions: Vec<String>,
}

impl FileContext {
    /// Builds the context for a workspace file at `path` (used by the
    /// directory walker; tests construct contexts directly).
    pub fn for_path(path: &Path) -> Self {
        let p = path.to_string_lossy().replace('\\', "/");
        let crate_name = p
            .split("crates/")
            .nth(1)
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("");
        let hot_functions = HOT_PATHS
            .iter()
            .find(|(suffix, _)| p.ends_with(suffix))
            .map(|(_, fns)| fns.iter().map(|s| s.to_string()).collect())
            .unwrap_or_default();
        Self {
            exempt_crate: EXEMPT_CRATES.contains(&crate_name),
            is_lib_root: p.ends_with("src/lib.rs"),
            engine_crate: crate_name == "engine",
            gateway_crate: crate_name == "gateway",
            controller_crate: crate_name == "controller",
            controller_commit_file: p.ends_with("controller/src/federation.rs"),
            supervisor_file: p.ends_with("engine/src/supervisor.rs"),
            vfs_file: p.ends_with("gateway/src/vfs.rs"),
            hot_functions,
        }
    }
}

/// Runs every lint over one file.
pub fn lint_source(path: &Path, source: &str, ctx: &FileContext) -> Vec<Finding> {
    let map = SourceMap::new(source);
    let mut findings = Vec::new();
    // Suppression lines that actually silenced a finding; whatever is
    // left over at the end is stale.
    let mut used_suppressions: std::collections::BTreeSet<usize> =
        std::collections::BTreeSet::new();
    let mut push = |map: &SourceMap, offset: usize, lint: &str, message: String| {
        let line = map.line_of(offset);
        match map.covering_suppression(lint, line) {
            Some(sup_line) => {
                used_suppressions.insert(sup_line);
            }
            None => findings.push(Finding {
                file: path.to_path_buf(),
                line,
                lint: lint.to_string(),
                message,
            }),
        }
    };

    // Panic-family, dbg and rng lints: library code only, tests exempt.
    if !ctx.exempt_crate {
        for offset in find_all(&map.masked, ".unwrap()") {
            if !map.in_test_region(offset) {
                push(
                    &map,
                    offset,
                    "unwrap-used",
                    "`.unwrap()` in library code; return a typed error or justify with sentinet-allow".into(),
                );
            }
        }
        for offset in find_all(&map.masked, ".expect(") {
            if !map.in_test_region(offset) {
                push(
                    &map,
                    offset,
                    "expect-used",
                    "`.expect(…)` in library code; return a typed error or justify with sentinet-allow".into(),
                );
            }
        }
        for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
            for offset in find_macro(&map.masked, mac) {
                if !map.in_test_region(offset) {
                    push(
                        &map,
                        offset,
                        "panic-used",
                        format!("`{mac}` in library code; prefer a typed error (assert!/debug_assert! are fine)"),
                    );
                }
            }
        }
        for mac in ["dbg!", "println!", "print!", "eprintln!", "eprint!"] {
            for offset in find_macro(&map.masked, mac) {
                if !map.in_test_region(offset) {
                    push(
                        &map,
                        offset,
                        "dbg-used",
                        format!("`{mac}` in library code; return data instead of printing"),
                    );
                }
            }
        }
    }

    // Float equality and unseeded RNG apply everywhere outside tests.
    for (offset, op, lhs, rhs) in find_float_eq(&map.masked) {
        if !map.in_test_region(offset) {
            push(
                &map,
                offset,
                "float-eq",
                format!("float literal compared with `{op}` (`{lhs} {op} {rhs}`); use an epsilon or total_cmp"),
            );
        }
    }
    for needle in ["thread_rng", "from_entropy", "rand::random"] {
        for offset in find_word(&map.masked, needle) {
            if !map.in_test_region(offset) {
                push(
                    &map,
                    offset,
                    "unseeded-rng",
                    format!("`{needle}` breaks reproducibility; seed a StdRng explicitly"),
                );
            }
        }
    }

    // Crate-root header lints (never suppressible by test regions).
    if ctx.is_lib_root && !ctx.exempt_crate {
        if !map.masked.contains("#![forbid(unsafe_code)]") {
            push(
                &map,
                0,
                "missing-forbid-unsafe",
                "crate root lacks `#![forbid(unsafe_code)]`".into(),
            );
        }
        if !map.masked.contains("#![deny(missing_docs)]") {
            push(
                &map,
                0,
                "missing-deny-docs",
                "crate root lacks `#![deny(missing_docs)]`".into(),
            );
        }
    }

    // Hot-path allocation lint: registered functions only.
    for func in &ctx.hot_functions {
        for (open, close) in function_bodies(&map.masked, func) {
            if map.in_test_region(open) {
                continue;
            }
            let body = &map.masked[open..close];
            for marker in ALLOC_MARKERS {
                for pos in find_all(body, marker) {
                    push(
                        &map,
                        open + pos,
                        "hot-path-alloc",
                        format!(
                            "`{marker}` inside hot-path fn `{func}` (registered allocation-free)"
                        ),
                    );
                }
            }
        }
    }

    // Thread spawning is shared between the engine (shard workers) and
    // the gateway (socket accept/reader threads).
    if !ctx.engine_crate && !ctx.gateway_crate {
        for offset in find_all(&map.masked, "thread::spawn") {
            if !map.in_test_region(offset) {
                push(
                    &map,
                    offset,
                    "thread-spawn",
                    "`thread::spawn` outside crates/engine or crates/gateway; route concurrency through them"
                        .into(),
                );
            }
        }
    }

    // Live network I/O is the gateway's monopoly: raw sockets anywhere
    // else would bypass its framing, dedup, WAL, and backpressure. The
    // controller tier is admitted — it federates collectors over the
    // gateway's own transports and needs the socket types in scope.
    if !ctx.gateway_crate && !ctx.controller_crate {
        for needle in ["std::net", "std::os::unix::net"] {
            for offset in find_all(&map.masked, needle) {
                if !map.in_test_region(offset) {
                    push(
                        &map,
                        offset,
                        "net-outside-gateway",
                        format!(
                            "`{needle}` outside crates/gateway; route live I/O through the gateway"
                        ),
                    );
                }
            }
        }
    }

    // Sockets must never block forever: a file that names a socket
    // stream type and reads from it must configure a read timeout,
    // otherwise a dead peer wedges the reading thread. One finding per
    // file, anchored at the first read call.
    let names_socket = ["TcpStream", "UnixStream"]
        .iter()
        .flat_map(|w| find_word(&map.masked, w))
        .any(|offset| !map.in_test_region(offset));
    if names_socket && !map.masked.contains("set_read_timeout") {
        let mut reads: Vec<usize> = [".read(", ".read_exact(", ".read_to_end("]
            .iter()
            .flat_map(|n| find_all(&map.masked, n))
            .filter(|&offset| !map.in_test_region(offset))
            .collect();
        reads.sort_unstable();
        if let Some(&first) = reads.first() {
            push(
                &map,
                first,
                "socket-read-timeout",
                "blocking socket read in a file that never calls `set_read_timeout`; a dead peer would wedge this thread".into(),
            );
        }
    }

    // Durable file mutation is the storage layer's monopoly: a raw
    // filesystem write outside `gateway::vfs` bypasses the injectable
    // seam, so disk-fault chaos (ENOSPC, failed fsync, torn writes)
    // could never reach it. Reads are deliberately not flagged — only
    // mutation needs fault coverage to protect durability.
    if !ctx.vfs_file {
        for needle in [
            "File::create(",
            "OpenOptions::new(",
            "fs::write(",
            "fs::rename(",
            "fs::remove_file(",
            "fs::create_dir_all(",
            "fs::remove_dir_all(",
        ] {
            for offset in find_macro(&map.masked, needle) {
                if !map.in_test_region(offset) {
                    push(
                        &map,
                        offset,
                        "io-outside-vfs",
                        format!(
                            "`{needle}…)` outside gateway::vfs; route durable writes through the Vfs trait so fault injection covers them"
                        ),
                    );
                }
            }
        }
    }

    // Crash recovery is the supervisor's monopoly: panics must surface
    // as typed errors (not be re-raised) and channels must be bounded
    // so a stuck consumer back-pressures instead of buffering forever.
    if !ctx.supervisor_file {
        for offset in find_word(&map.masked, "resume_unwind") {
            if !map.in_test_region(offset) {
                push(
                    &map,
                    offset,
                    "resume-unwind",
                    "`resume_unwind` outside the engine supervisor; surface the crash as a typed ShardError instead".into(),
                );
            }
        }
        for offset in find_word(&map.masked, "unbounded") {
            if !map.in_test_region(offset) {
                push(
                    &map,
                    offset,
                    "unbounded-channel",
                    "unbounded channel outside the engine supervisor; use `bounded` with an explicit capacity".into(),
                );
            }
        }
    }

    // Ack-ordering: a fn body that both constructs an Ack/AckUpTo and
    // writes to the wire must consult durability first on the same
    // path. One finding per body, anchored at the first ack needle;
    // nested fns are claimed innermost-first so an inner violation is
    // not double-counted through its enclosing body.
    let mut claimed_anchors: Vec<usize> = Vec::new();
    let mut bodies = all_function_bodies(&map.masked);
    bodies.sort_by_key(|&(open, close)| close - open);
    for (open, close) in bodies {
        if map.in_test_region(open) {
            continue;
        }
        let body = &map.masked[open..close];
        let anchor = ACK_NEEDLES.iter().flat_map(|n| find_word(body, n)).min();
        let Some(anchor) = anchor else {
            continue;
        };
        if claimed_anchors.contains(&(open + anchor)) {
            continue;
        }
        if find_all(body, "write_all(").is_empty() {
            continue;
        }
        let dominated = ACK_DOMINATORS
            .iter()
            .flat_map(|d| find_all(body, d))
            .any(|pos| pos < anchor);
        claimed_anchors.push(open + anchor);
        if !dominated {
            push(
                &map,
                open + anchor,
                "ack-ordering",
                "Ack/AckUpTo written to the wire with no dominating `synced_cursor`/`sync_wal` check; an unsynced crash would lose acked data".into(),
            );
        }
    }

    // Partition ownership, health and range transitions are the
    // federation commit path's monopoly: a `.commit_owner(`/
    // `.commit_health(` call anywhere else could re-assign a partition
    // without fencing the old owner or recording the epoch bump, and a
    // `.split_at(`/`.transfer(` could move a sensor range without the
    // two-phase cut/adopt handoff — either silently forks the fleet's
    // view of who may ack.
    if !ctx.controller_commit_file {
        for needle in [
            ".commit_owner(",
            ".commit_health(",
            ".split_at(",
            ".transfer(",
        ] {
            for offset in find_all(&map.masked, needle) {
                if !map.in_test_region(offset) {
                    push(
                        &map,
                        offset,
                        "partition-map-mutation",
                        format!(
                            "`{needle}…)` outside controller::federation; route ownership/health/range transitions through the federation commit path"
                        ),
                    );
                }
            }
        }
    }

    // Malformed or unknown suppressions are findings themselves, so a
    // typo cannot silently disable a lint.
    for sup in &map.suppressions {
        if !LINTS.contains(&sup.lint.as_str()) {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: sup.line,
                lint: "unknown-suppression".into(),
                message: format!("sentinet-allow names unknown lint `{}`", sup.lint),
            });
        } else if !sup.has_reason {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: sup.line,
                lint: "unknown-suppression".into(),
                message: format!(
                    "sentinet-allow({}) lacks a reason; write `// sentinet-allow({}): why`",
                    sup.lint, sup.lint
                ),
            });
        }
    }

    // Suppression hygiene: a well-formed sentinet-allow that silenced
    // nothing is stale — the code it excused was fixed or moved, and
    // leaving the annotation behind would mask a future regression.
    // (Malformed suppressions were already reported above.)
    for sup in &map.suppressions {
        if !LINTS.contains(&sup.lint.as_str()) || !sup.has_reason {
            continue;
        }
        if used_suppressions.contains(&sup.line) {
            continue;
        }
        if let Some(cover) = map.covering_suppression("stale-suppression", sup.line) {
            used_suppressions.insert(cover);
            continue;
        }
        findings.push(Finding {
            file: path.to_path_buf(),
            line: sup.line,
            lint: "stale-suppression".into(),
            message: format!(
                "sentinet-allow({}) no longer suppresses any finding; remove it",
                sup.lint
            ),
        });
    }

    findings.sort_by(|a, b| (a.line, &a.lint).cmp(&(b.line, &b.lint)));
    findings
}

/// Lints every `.rs` file under `crates/*/src` of `repo_root`.
pub fn lint_workspace(repo_root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates_dir = repo_root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for file in files {
        let source = std::fs::read_to_string(&file)?;
        let ctx = FileContext::for_path(&file);
        let rel = file.strip_prefix(repo_root).unwrap_or(&file).to_path_buf();
        findings.extend(lint_source(&rel, &source, &ctx));
    }
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Byte offsets of every occurrence of `needle` in `hay`.
fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}

/// Macro invocations: the name must start a token (not `.foo!` or part
/// of a longer identifier like `eprintln!` when searching `print!`).
fn find_macro(hay: &str, mac: &str) -> Vec<usize> {
    find_all(hay, mac)
        .into_iter()
        .filter(|&pos| {
            let before = hay[..pos].bytes().next_back();
            !matches!(before, Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
        })
        .collect()
}

/// Identifier-ish occurrences: not embedded in a longer identifier.
fn find_word(hay: &str, word: &str) -> Vec<usize> {
    find_all(hay, word)
        .into_iter()
        .filter(|&pos| {
            let before = hay[..pos].bytes().next_back();
            let after = hay.as_bytes().get(pos + word.len());
            let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
            !matches!(before, Some(b) if ident(b)) && !matches!(after, Some(&b) if ident(b))
        })
        .collect()
}

/// `==`/`!=` comparisons where either operand is a float literal.
/// Returns `(offset, operator, lhs, rhs)`.
fn find_float_eq(masked: &str) -> Vec<(usize, &'static str, String, String)> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for op in ["==", "!="] {
        for pos in find_all(masked, op) {
            // Exclude `<=`, `>=`, `===`-like runs and `!=` inside `=!=`.
            let before = pos.checked_sub(1).map(|i| bytes[i]);
            let after = bytes.get(pos + 2).copied();
            if matches!(before, Some(b'=') | Some(b'<') | Some(b'>') | Some(b'!'))
                || after == Some(b'=')
            {
                continue;
            }
            let lhs = token_before(masked, pos);
            let rhs = token_after(masked, pos + 2);
            if is_float_literal(&lhs) || is_float_literal(&rhs) {
                out.push((pos, if op == "==" { "==" } else { "!=" }, lhs, rhs));
            }
        }
    }
    out.sort_by_key(|&(pos, ..)| pos);
    out
}

fn token_before(hay: &str, end: usize) -> String {
    let bytes = hay.as_bytes();
    let mut i = end;
    while i > 0 && bytes[i - 1] == b' ' {
        i -= 1;
    }
    let stop = i;
    while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || matches!(bytes[i - 1], b'_' | b'.')) {
        i -= 1;
    }
    hay[i..stop].to_string()
}

fn token_after(hay: &str, start: usize) -> String {
    let bytes = hay.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i] == b' ' {
        i += 1;
    }
    let begin = i;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || matches!(bytes[i], b'_' | b'.')) {
        i += 1;
    }
    hay[begin..i].to_string()
}

/// A numeric token that is a float: starts with a digit and has a
/// decimal point, a pure-digit exponent, or an f32/f64 suffix.
fn is_float_literal(token: &str) -> bool {
    let Some(first) = token.bytes().next() else {
        return false;
    };
    if !first.is_ascii_digit() {
        return false;
    }
    if token.contains('.') {
        return true;
    }
    let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit() || b == b'_');
    if let Some(mantissa) = token
        .strip_suffix("f32")
        .or_else(|| token.strip_suffix("f64"))
    {
        if digits(mantissa) {
            return true;
        }
    }
    match token.split_once(['e', 'E']) {
        Some((mantissa, exponent)) => digits(mantissa) && digits(exponent),
        None => false,
    }
}

/// Brace-matched bodies of every `fn` in the masked source, named or
/// not (trait-method declarations without bodies are skipped).
fn all_function_bodies(masked: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for pos in find_word(masked, "fn") {
        let sig_start = pos + 2;
        let Some(open) = masked[sig_start..].find('{').map(|p| sig_start + p) else {
            continue;
        };
        if masked[sig_start..open].contains(';') {
            continue;
        }
        if let Some(close) = match_brace(masked, open) {
            out.push((open, close + 1));
        }
    }
    out
}

/// Brace-matched bodies of every `fn <name>` in the masked source.
fn function_bodies(masked: &str, name: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for pos in find_all(masked, &format!("fn {name}")) {
        // The name must end the identifier: `fn push(` but not `fn push_values(`.
        let after = masked.as_bytes().get(pos + 3 + name.len());
        if matches!(after, Some(&b) if b.is_ascii_alphanumeric() || b == b'_') {
            continue;
        }
        let sig_end = pos + 3 + name.len();
        if let Some(open) = masked[sig_end..].find('{').map(|p| sig_end + p) {
            if masked[sig_end..open].contains(';') {
                continue; // a trait method declaration, no body
            }
            if let Some(close) = match_brace(masked, open) {
                out.push((open, close + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileContext {
        FileContext::default()
    }

    fn run(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src, &ctx())
    }

    #[test]
    fn detects_unwrap_outside_tests_only() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn b() { y.unwrap(); } }\n";
        let f = run(src);
        assert_eq!(f.iter().filter(|f| f.lint == "unwrap-used").count(), 1);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = run("fn a() { x.unwrap_or(1); x.unwrap_or_default(); }\n");
        assert!(f.iter().all(|f| f.lint != "unwrap-used"));
    }

    #[test]
    fn string_contents_do_not_fire() {
        let f = run("fn a() { let s = \".unwrap() panic! 1.0 == 2.0\"; drop(s); }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn float_eq_needs_float_literal() {
        let f = run("fn a() { if x == 0.0 {} if a == b {} if n == 3 {} }\n");
        assert_eq!(f.iter().filter(|f| f.lint == "float-eq").count(), 1);
    }

    #[test]
    fn comparison_operators_do_not_fire_float_eq() {
        let f = run("fn a() { if x <= 0.0 {} if x >= 1.0 {} }\n");
        assert!(f.iter().all(|f| f.lint != "float-eq"));
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "fn a() {\n    // sentinet-allow(unwrap-used): invariant documented\n    x.unwrap();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unknown_suppression_is_reported() {
        let src = "// sentinet-allow(no-such-lint): whatever\nfn a() {}\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "unknown-suppression");
    }

    #[test]
    fn header_lints_fire_on_lib_root() {
        let mut c = ctx();
        c.is_lib_root = true;
        let f = lint_source(Path::new("crates/x/src/lib.rs"), "//! docs\n", &c);
        let lints: Vec<_> = f.iter().map(|f| f.lint.as_str()).collect();
        assert!(lints.contains(&"missing-forbid-unsafe"));
        assert!(lints.contains(&"missing-deny-docs"));
    }

    #[test]
    fn hot_path_alloc_checks_registered_fn_only() {
        let mut c = ctx();
        c.hot_functions = vec!["push".into()];
        let src =
            "fn push(&mut self) { let v = x.to_vec(); }\nfn other() { let w = y.to_vec(); }\n";
        let f = lint_source(Path::new("w.rs"), src, &c);
        assert_eq!(f.iter().filter(|f| f.lint == "hot-path-alloc").count(), 1);
    }

    #[test]
    fn exempt_crate_skips_panic_family() {
        let mut c = ctx();
        c.exempt_crate = true;
        let f = lint_source(
            Path::new("cli.rs"),
            "fn a() { panic!(); x.unwrap(); }\n",
            &c,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn supervisor_monopoly_lints_fire_elsewhere_only() {
        let src = "fn a(p: P) { let (tx, rx) = unbounded(); std::panic::resume_unwind(p); }\n";
        let f = run(src);
        assert_eq!(f.iter().filter(|f| f.lint == "resume-unwind").count(), 1);
        assert_eq!(
            f.iter().filter(|f| f.lint == "unbounded-channel").count(),
            1
        );
        let mut c = ctx();
        c.supervisor_file = true;
        let f = lint_source(Path::new("crates/engine/src/supervisor.rs"), src, &c);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn raw_fs_mutation_flagged_outside_vfs() {
        let src = "fn a(p: &Path) { std::fs::write(p, b\"x\").ok(); let f = File::create(p); }\n";
        let f = run(src);
        assert_eq!(f.iter().filter(|f| f.lint == "io-outside-vfs").count(), 2);
        let mut c = ctx();
        c.vfs_file = true;
        let f = lint_source(Path::new("crates/gateway/src/vfs.rs"), src, &c);
        assert!(f.is_empty(), "{f:?}");
        // Reads stay unflagged: only mutation needs fault coverage.
        let f = run("fn a(p: &Path) { let s = fs::read_to_string(p); let f = File::open(p); }\n");
        assert!(f.iter().all(|f| f.lint != "io-outside-vfs"), "{f:?}");
    }

    #[test]
    fn ack_ordering_requires_dominating_sync_check() {
        // An ack written to the wire with no durability check upstream fires.
        let bad = "fn reply(w: &mut W) {\n    let f = encode(Message::AckUpTo { sensor, seq });\n    w.write_all(&f).ok();\n}\n";
        let f = run(bad);
        assert_eq!(f.iter().filter(|f| f.lint == "ack-ordering").count(), 1);
        // A `synced_cursor` comparison before the ack dominates it: silent.
        let synced = "fn reply(w: &mut W) {\n    if cursor > self.synced_cursor() { return; }\n    let f = encode(Message::AckUpTo { sensor, seq });\n    w.write_all(&f).ok();\n}\n";
        assert!(run(synced).iter().all(|f| f.lint != "ack-ordering"));
        // `.deliver(` ahead of a per-reading Ack also dominates (the
        // collector syncs before reporting an ack cursor).
        let delivered = "fn reply(w: &mut W) {\n    let out = self.collector.deliver(&r);\n    let f = encode(Message::Ack { sensor, seq });\n    w.write_all(&f).ok();\n}\n";
        assert!(run(delivered).iter().all(|f| f.lint != "ack-ordering"));
        // Constructing the message without writing it is not a release.
        let no_write =
            "fn queue(&mut self) {\n    self.pending.push(Message::Ack { sensor, seq });\n}\n";
        assert!(run(no_write).iter().all(|f| f.lint != "ack-ordering"));
    }

    #[test]
    fn stale_suppression_reports_unused_allow() {
        // The allow excuses nothing: the body has no float comparison.
        let src = "// sentinet-allow(float-eq): excused code was rewritten\nfn a(x: f64) -> f64 { x.max(0.0) }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "stale-suppression");
        assert!(f[0].message.contains("sentinet-allow(float-eq)"));
        // A live suppression is not stale.
        let live = "fn a(x: f64) {\n    // sentinet-allow(float-eq): documented tolerance\n    if x == 1.0 {}\n}\n";
        assert!(run(live).is_empty());
        // A stale allow can itself be suppressed, one level deep.
        let excused = "// sentinet-allow(stale-suppression): kept for doc purposes\n// sentinet-allow(float-eq): intentionally stale\nfn a(x: f64) -> f64 { x.max(0.0) }\n";
        assert!(run(excused).is_empty());
        // Reasonless allows are already flagged by suppression-missing-reason;
        // the stale pass skips them rather than double-reporting.
        let reasonless = "// sentinet-allow(float-eq)\nfn a(x: f64) -> f64 { x.max(0.0) }\n";
        let f = run(reasonless);
        assert!(f.iter().all(|f| f.lint != "stale-suppression"), "{f:?}");
    }

    #[test]
    fn partition_map_mutation_flagged_outside_commit_path() {
        let src = "fn adopt(map: &mut PartitionMap) {\n    map.commit_owner(0, 2);\n    map.commit_health(0, PartitionHealth::Ok);\n    if let Ok(q) = map.split_at(0, SensorId(2)) {\n        let _ = map.transfer(q, 0);\n    }\n}\n";
        let f = run(src);
        assert_eq!(
            f.iter()
                .filter(|f| f.lint == "partition-map-mutation")
                .count(),
            4
        );
        // The federation commit path owns these transitions.
        let mut c = ctx();
        c.controller_commit_file = true;
        let f = lint_source(Path::new("crates/controller/src/federation.rs"), src, &c);
        assert!(f.is_empty(), "{f:?}");
        // The definitions themselves (no leading dot) are not calls.
        let defs = "impl PartitionMap {\n    pub fn commit_owner(&mut self, p: PartitionId, epoch: u64) {}\n}\n";
        assert!(run(defs).iter().all(|f| f.lint != "partition-map-mutation"));
    }

    #[test]
    fn thread_spawn_flagged_outside_engine() {
        let f = run("fn a() { std::thread::spawn(|| {}); }\n");
        assert_eq!(f.iter().filter(|f| f.lint == "thread-spawn").count(), 1);
        let mut c = ctx();
        c.engine_crate = true;
        let f = lint_source(
            Path::new("e.rs"),
            "fn a() { std::thread::spawn(|| {}); }\n",
            &c,
        );
        assert!(f.is_empty());
    }
}
