//! Schema validation for `BENCH_engine.json`.
//!
//! The bench binary (`crates/bench/src/bin/throughput.rs`) emits a
//! JSON report that downstream tooling (and the README tables) relies
//! on. `cargo run -p xtask -- bench-check` fails CI when that file is
//! malformed: missing keys, non-finite numbers, unknown modes, or
//! sensor counts that are not monotone non-decreasing across rows.
//! `ingest` rows (gateway loopback throughput) must also name their
//! `fsync` policy, `retention` setting (`off` or the WAL byte
//! budget), and `batch` shape (`off` for the stop-and-wait uplink or
//! `<batch>x<window>` for the pipelined one), and are exempt from the
//! sensors-monotone rule — they are appended after the shard sweep
//! rather than sorted into it. When any ingest rows are present the
//! document must also carry an `ingest_stages` object breaking one
//! pipelined run down into finite, non-negative per-stage seconds
//! (including the `other_s` uninstrumented remainder) that sum to
//! within 10% of the run's `total_s` — a breakdown that does not
//! account for the run it claims to describe is rejected.
//!
//! The vendored `serde` is a derive stub without a JSON backend, so
//! this module carries its own minimal recursive-descent JSON parser —
//! objects, arrays, strings (with escapes), numbers, booleans, null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A JSON syntax error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("bad string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Keys the per-stage ingest breakdown must carry, in wall seconds.
/// `other_s` is the uninstrumented remainder the bench emits so the
/// stages account for the whole run; together they must sum to within
/// 10% of `total_s`.
const STAGE_KEYS: &[&str] = &[
    "decode_s",
    "admission_s",
    "wal_append_s",
    "fsync_s",
    "ack_s",
    "other_s",
];

/// Relative tolerance between the stage sum and `total_s`.
const STAGE_SUM_TOLERANCE: f64 = 0.10;

/// Keys every result row must carry.
const ROW_KEYS: &[&str] = &[
    "sensors",
    "days",
    "mode",
    "shards",
    "readings",
    "windows",
    "seconds",
    "readings_per_sec",
    "windows_per_sec",
    "speedup_vs_serial",
];

/// Validates the bench report, returning every schema violation.
pub fn validate(input: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let doc = match parse(input) {
        Ok(doc) => doc,
        Err(e) => return vec![e.to_string()],
    };
    let Json::Obj(top) = &doc else {
        return vec![format!(
            "top level must be an object, got {}",
            doc.type_name()
        )];
    };

    match top.get("host_cpus") {
        Some(Json::Num(n)) if *n >= 1.0 && n.fract() == 0.0 => {}
        Some(v) => problems.push(format!(
            "`host_cpus` must be a positive integer, got {}",
            v.type_name()
        )),
        None => problems.push("missing required key `host_cpus`".into()),
    }
    match top.get("reps") {
        Some(Json::Num(n)) if *n >= 1.0 && n.fract() == 0.0 => {}
        Some(v) => problems.push(format!(
            "`reps` must be a positive integer, got {}",
            v.type_name()
        )),
        None => problems.push("missing required key `reps`".into()),
    }

    let rows = match top.get("results") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows.as_slice(),
        Some(Json::Arr(_)) => {
            problems.push("`results` must not be empty".into());
            &[]
        }
        Some(v) => {
            problems.push(format!("`results` must be an array, got {}", v.type_name()));
            &[]
        }
        None => {
            problems.push("missing required key `results`".into());
            &[]
        }
    };

    let mut prev_sensors: Option<f64> = None;
    let mut saw_ingest = false;
    for (i, row) in rows.iter().enumerate() {
        let Json::Obj(row) = row else {
            problems.push(format!("results[{i}] must be an object"));
            continue;
        };
        for key in ROW_KEYS {
            match row.get(*key) {
                None => problems.push(format!("results[{i}] missing key `{key}`")),
                Some(Json::Num(n)) if !n.is_finite() => {
                    problems.push(format!("results[{i}].{key} is not finite"));
                }
                Some(_) => {}
            }
        }
        let mode = match row.get("mode") {
            Some(Json::Str(mode)) if mode == "serial" || mode == "engine" || mode == "ingest" => {
                Some(mode.as_str())
            }
            Some(Json::Str(mode)) => {
                problems.push(format!(
                    "results[{i}].mode must be `serial`, `engine`, or `ingest`, got `{mode}`"
                ));
                None
            }
            Some(v) => {
                problems.push(format!(
                    "results[{i}].mode must be a string, got {}",
                    v.type_name()
                ));
                None
            }
            None => None, // already reported by the key loop
        };
        if mode == Some("ingest") {
            saw_ingest = true;
            match row.get("fsync") {
                Some(Json::Str(policy)) if !policy.is_empty() => {}
                Some(v) => problems.push(format!(
                    "results[{i}].fsync must be a non-empty string, got {}",
                    v.type_name()
                )),
                None => problems.push(format!(
                    "results[{i}] missing key `fsync` (required for ingest rows)"
                )),
            }
            match row.get("retention") {
                Some(Json::Str(setting)) if !setting.is_empty() => {}
                Some(v) => problems.push(format!(
                    "results[{i}].retention must be a non-empty string, got {}",
                    v.type_name()
                )),
                None => problems.push(format!(
                    "results[{i}] missing key `retention` (required for ingest rows)"
                )),
            }
            match row.get("batch") {
                Some(Json::Str(shape)) if !shape.is_empty() => {}
                Some(v) => problems.push(format!(
                    "results[{i}].batch must be a non-empty string, got {}",
                    v.type_name()
                )),
                None => problems.push(format!(
                    "results[{i}] missing key `batch` (required for ingest rows)"
                )),
            }
        } else if let Some(Json::Num(sensors)) = row.get("sensors") {
            // Ingest rows ride after the shard sweep; only the sweep
            // itself must keep sensors monotone.
            if let Some(prev) = prev_sensors {
                if *sensors < prev {
                    problems.push(format!(
                        "results[{i}].sensors = {sensors} breaks monotone ordering (previous {prev})"
                    ));
                }
            }
            prev_sensors = Some(*sensors);
        }
    }

    if saw_ingest {
        match top.get("ingest_stages") {
            Some(Json::Obj(stages)) => {
                let mut sum = Some(0.0f64);
                for key in STAGE_KEYS {
                    match stages.get(*key) {
                        Some(Json::Num(n)) if n.is_finite() && *n >= 0.0 => {
                            sum = sum.map(|s| s + n);
                        }
                        Some(v) => {
                            problems.push(format!(
                                "`ingest_stages.{key}` must be a finite non-negative number, got {}",
                                v.type_name()
                            ));
                            sum = None;
                        }
                        None => {
                            problems.push(format!("`ingest_stages` missing key `{key}`"));
                            sum = None;
                        }
                    }
                }
                let total = match stages.get("total_s") {
                    Some(Json::Num(n)) if n.is_finite() && *n > 0.0 => Some(*n),
                    Some(v) => {
                        problems.push(format!(
                            "`ingest_stages.total_s` must be a finite positive number, got {}",
                            v.type_name()
                        ));
                        None
                    }
                    None => {
                        problems.push("`ingest_stages` missing key `total_s`".into());
                        None
                    }
                };
                // Only meaningful when every stage and the total parsed:
                // the breakdown must account for the run it claims to
                // describe, within tolerance for clock skew/rounding.
                if let (Some(sum), Some(total)) = (sum, total) {
                    if (sum - total).abs() > STAGE_SUM_TOLERANCE * total {
                        problems.push(format!(
                            "`ingest_stages` stage times sum to {sum:.6}s but `total_s` is \
                             {total:.6}s (more than 10% apart)"
                        ));
                    }
                }
            }
            Some(v) => problems.push(format!(
                "`ingest_stages` must be an object, got {}",
                v.type_name()
            )),
            None => problems.push(
                "missing required key `ingest_stages` (required when ingest rows are present)"
                    .into(),
            ),
        }
    }

    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(sensors: u32, mode: &str) -> String {
        format!(
            "{{\"sensors\": {sensors}, \"days\": 1, \"mode\": \"{mode}\", \"shards\": 1, \
             \"readings\": 10, \"windows\": 2, \"seconds\": 0.5, \"readings_per_sec\": 20.0, \
             \"windows_per_sec\": 4.0, \"speedup_vs_serial\": 1.0}}"
        )
    }

    fn doc(rows: &[String]) -> String {
        format!(
            "{{\"host_cpus\": 1, \"reps\": 3, \"note\": \"x\", \"results\": [{}]}}",
            rows.join(", ")
        )
    }

    #[test]
    fn valid_document_passes() {
        let d = doc(&[row(10, "serial"), row(10, "engine"), row(100, "serial")]);
        assert!(validate(&d).is_empty());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse("{\"a\": [1, -2.5e3, \"x\\n\\u0041\"], \"b\": {\"c\": null}}").unwrap();
        let Json::Obj(o) = v else {
            panic!("not an object")
        };
        let Json::Arr(a) = &o["a"] else {
            panic!("not an array")
        };
        assert_eq!(a[1], Json::Num(-2500.0));
        assert_eq!(a[2], Json::Str("x\nA".into()));
    }

    #[test]
    fn missing_host_cpus_fails() {
        let d = doc(&[row(10, "serial")]).replace("\"host_cpus\": 1, ", "");
        let problems = validate(&d);
        assert!(
            problems.iter().any(|p| p.contains("host_cpus")),
            "{problems:?}"
        );
    }

    #[test]
    fn missing_row_key_fails() {
        let d = doc(&[row(10, "serial").replace("\"shards\": 1, ", "")]);
        let problems = validate(&d);
        assert!(
            problems.iter().any(|p| p.contains("`shards`")),
            "{problems:?}"
        );
    }

    #[test]
    fn non_monotone_sensors_fail() {
        let d = doc(&[row(100, "serial"), row(10, "serial")]);
        let problems = validate(&d);
        assert!(
            problems.iter().any(|p| p.contains("monotone")),
            "{problems:?}"
        );
    }

    #[test]
    fn unknown_mode_fails() {
        let d = doc(&[row(10, "warp")]);
        let problems = validate(&d);
        assert!(problems.iter().any(|p| p.contains("mode")), "{problems:?}");
    }

    /// An ingest row with the full `fsync`/`retention`/`batch` triple.
    fn ingest_row(sensors: u32) -> String {
        row(sensors, "ingest").replace(
            "\"mode\": \"ingest\"",
            "\"mode\": \"ingest\", \"fsync\": \"batch:64\", \"retention\": \"off\", \
             \"batch\": \"256x32\"",
        )
    }

    /// A document whose trailing ingest rows carry the stage object.
    /// The stages sum to 0.2 exactly, matching `total_s`.
    fn doc_with_stages(rows: &[String]) -> String {
        doc(rows).replace(
            "\"results\": [",
            "\"ingest_stages\": {\"decode_s\": 0.01, \"admission_s\": 0.02, \
             \"wal_append_s\": 0.003, \"fsync_s\": 0.1, \"ack_s\": 0.004, \
             \"other_s\": 0.063, \"total_s\": 0.2}, \"results\": [",
        )
    }

    #[test]
    fn ingest_row_requires_fsync_retention_batch_and_skips_monotone() {
        // A trailing ingest row with fewer sensors than the sweep is
        // fine — as long as it names its fsync policy, retention, and
        // batch shape, and the document carries the stage breakdown.
        let d = doc_with_stages(&[row(100, "serial"), ingest_row(10)]);
        assert!(validate(&d).is_empty(), "{:?}", validate(&d));

        let d = doc_with_stages(&[row(100, "serial"), row(10, "ingest")]);
        let problems = validate(&d);
        assert!(
            problems.iter().any(|p| p.contains("`fsync`")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("`retention`")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("`batch`")),
            "{problems:?}"
        );
        assert!(
            !problems.iter().any(|p| p.contains("monotone")),
            "{problems:?}"
        );
    }

    #[test]
    fn ingest_rows_require_stage_breakdown() {
        // Same rows, no `ingest_stages` object: one schema violation.
        let d = doc(&[row(100, "serial"), ingest_row(10)]);
        let problems = validate(&d);
        assert!(
            problems.iter().any(|p| p.contains("ingest_stages")),
            "{problems:?}"
        );
        // Serial-only documents don't need it.
        let d = doc(&[row(100, "serial")]);
        assert!(validate(&d).is_empty(), "{:?}", validate(&d));
    }

    #[test]
    fn stage_breakdown_rejects_missing_and_negative_stages() {
        let d = doc_with_stages(&[row(100, "serial"), ingest_row(10)])
            .replace("\"fsync_s\": 0.1", "\"fsync_s\": -0.1");
        let problems = validate(&d);
        assert!(
            problems.iter().any(|p| p.contains("ingest_stages.fsync_s")),
            "{problems:?}"
        );

        let d = doc_with_stages(&[row(100, "serial"), ingest_row(10)])
            .replace("\"ack_s\": 0.004, ", "");
        let problems = validate(&d);
        assert!(
            problems.iter().any(|p| p.contains("missing key `ack_s`")),
            "{problems:?}"
        );
    }

    #[test]
    fn stage_sum_must_match_total_within_tolerance() {
        // The fixture stages sum to exactly total_s = 0.2: valid.
        let d = doc_with_stages(&[row(100, "serial"), ingest_row(10)]);
        assert!(validate(&d).is_empty(), "{:?}", validate(&d));

        // Inflate the total so the stages only cover 2/3 of it.
        let d = doc_with_stages(&[row(100, "serial"), ingest_row(10)])
            .replace("\"total_s\": 0.2", "\"total_s\": 0.3");
        let problems = validate(&d);
        assert!(
            problems.iter().any(|p| p.contains("more than 10% apart")),
            "{problems:?}"
        );

        // A missing total is its own violation.
        let d = doc_with_stages(&[row(100, "serial"), ingest_row(10)])
            .replace(", \"total_s\": 0.2", "");
        let problems = validate(&d);
        assert!(
            problems.iter().any(|p| p.contains("missing key `total_s`")),
            "{problems:?}"
        );

        // Within-tolerance skew (≤ 10%) passes: clocks and rounding
        // are allowed to disagree a little.
        let d = doc_with_stages(&[row(100, "serial"), ingest_row(10)])
            .replace("\"total_s\": 0.2", "\"total_s\": 0.21");
        assert!(validate(&d).is_empty(), "{:?}", validate(&d));
    }

    #[test]
    fn syntax_error_is_one_problem() {
        assert_eq!(validate("{\"a\": }").len(), 1);
    }
}
