//! Workspace automation for sentinet: the project's static-analysis
//! suite, invoked as `cargo run -p xtask -- <command>`.
//!
//! - [`lint`] — a hand-rolled lint engine with ten project lints over
//!   the library crates (panic-family usage, float equality, unseeded
//!   RNG, crate-header hygiene, hot-path allocation, stray thread
//!   spawns), suppressible inline with
//!   `// sentinet-allow(lint-name): reason`;
//! - [`model_check`] — a loom-style exhaustive schedule explorer that
//!   replays the sharded engine's coordinator loop under every
//!   worker/coordinator interleaving and asserts bit-identical
//!   equivalence with the serial pipeline;
//! - [`bench_check`] — schema validation for `BENCH_engine.json`;
//! - the `analyze` command additionally re-runs the numeric test
//!   suites with the `check-invariants` feature, turning every HMM
//!   matrix mutation and cluster update into a checked invariant.
//!
//! See DESIGN.md § "Static analysis" for the lint catalogue and the
//! rules for adding a lint.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench_check;
pub mod lexer;
pub mod lint;
pub mod model_check;
pub mod protocol_check;
